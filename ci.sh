#!/usr/bin/env sh
# Local CI entry point — the same gate as .github/workflows/ci.yml, runnable
# offline. All dependencies are vendored (see vendor/README.md), so the
# whole pipeline works without network access.
#
# Usage: ./ci.sh
set -eu
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== test =="
cargo test --workspace --offline -q

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke =="
# Quick plan (2 small models, median of 3), written to a scratch path so
# the committed BENCH_results.json stays untouched. --check fails the
# gate on malformed output AND on any phase regressing more than 25%
# (and 0.1 ms) against the checked-in BENCH_baseline.json.
./target/release/bench --quick --out target/BENCH_results_smoke.json
./target/release/bench --check target/BENCH_results_smoke.json

echo "== scale smoke =="
# Partitioned-engine gate: the quick scale sweep must auto-select both
# engines across the threshold and the parallel engine must agree with
# the sequential oracle on the makespan (asserted inside the runner).
# TICTAC_THREADS is pinned for stable wall numbers on small CI boxes.
TICTAC_THREADS=2 ./target/release/repro --exp scale --quick --out target/ci-results
grep -q "engine" target/ci-results/scale.txt
grep -q "speedup" target/ci-results/scale.txt

echo "== golden traces =="
# Fingerprint gate: any change to simulated behavior (including the
# pinned Perfetto export bytes) fails here, not in review.
cargo test --offline -q --test golden_traces
cargo test --offline -q --test perfetto_snapshot

echo "== threaded backend smoke =="
# Real-OS-thread runtime gate (DESIGN.md §9): time the threaded backend
# through the micro-bench pipeline, then run the quick sim-vs-wall-clock
# comparison, which fails unless enforced TAC shows zero priority
# inversions on the wall clock. TICTAC_THREADS is pinned so the wall
# clock is not polluted by experiment-level fan-out on small CI boxes.
./target/release/bench --quick --backend threaded --out target/BENCH_results_threaded.json
./target/release/bench --check target/BENCH_results_threaded.json
TICTAC_THREADS=2 ./target/release/repro --exp exec --quick --out target/ci-results
grep -q "priority inversions under enforced TAC (threaded): 0" target/ci-results/exec.txt

echo "== chaos smoke =="
# Seeded fault injection on the threaded backend (DESIGN.md §11): the
# quick chaos sweep must recover from the reference fault spec with zero
# priority inversions under enforced TAC, inside a hard timeout so a
# wedged supervisor fails the gate instead of hanging it. The exported
# fault-event trace is the CI artifact for post-mortems.
TICTAC_THREADS=2 timeout 600 ./target/release/repro --exp faults --backend threaded --quick --out target/ci-results
grep -q "priority inversions under enforced TAC with faults (threaded): 0" target/ci-results/chaos.txt
./target/release/repro --export-chaos-trace target/chaos_trace_smoke.json
./target/release/repro --validate-trace target/chaos_trace_smoke.json

echo "== trace export =="
# Export one TAC AlexNet iteration and re-validate it from disk; the
# validator requires at least one slice in every device/channel lane.
./target/release/repro --export-trace target/trace_smoke.json
./target/release/repro --validate-trace target/trace_smoke.json

echo "== run store smoke =="
# Observability gate (DESIGN.md §13): replay the committed run-store
# corpus, append one fresh seeded session and one repro report on top of
# it, then let `runs regress` judge the new records against the stored
# history — any drift in the deterministic sim payloads fails the gate.
# target/ci-runs.jsonl is the uploaded artifact.
cp results/runs.jsonl target/ci-runs.jsonl
./target/release/tictac run alexnet_v2 --workers 2 --ps 1 --scheduler tac \
    --iterations 4 --env g --store target/ci-runs.jsonl > /dev/null
TICTAC_RUN_STORE=target/ci-runs.jsonl ./target/release/repro --exp table1 --quick > /dev/null
./target/release/tictac runs list --store target/ci-runs.jsonl
./target/release/tictac runs diff --store target/ci-runs.jsonl --kind session | grep -q "zero drift"
./target/release/tictac runs diff --store target/ci-runs.jsonl --kind report | grep -q "zero drift"
./target/release/tictac runs regress --store target/ci-runs.jsonl

echo "== scenario smoke =="
# Scenario DSL gate (DESIGN.md §14): every committed example scenario
# must parse and validate, and the heterogeneous VGG-19 scenario must
# run end-to-end into a fresh store whose record carries the exact
# scenario fingerprint announced by --dry-run.
for scn in examples/scenarios/*.yml; do
    ./target/release/tictac run "$scn" --dry-run
done
scn_fp=$(./target/release/tictac run examples/scenarios/vgg19_hetero.yml --dry-run | awk 'NR==2 {print $1}')
./target/release/tictac run examples/scenarios/vgg19_hetero.yml --store target/ci-scenario.jsonl
./target/release/tictac runs show --store target/ci-scenario.jsonl | grep -q "$scn_fp"

echo "== autotune smoke =="
# Communication-granularity search gate (DESIGN.md §15): the quick
# 2-model search (AlexNet + VGG-16, reduced ladder) must complete
# deterministically and render the plain-vs-tuned table with no
# regressing row — the default config is always a candidate, so any
# negative speedup is a search bug. target/ci-results/autotune.txt is
# the uploaded artifact.
TICTAC_THREADS=2 ./target/release/repro --exp autotune --quick --out target/ci-results
grep -q "vgg_16" target/ci-results/autotune.txt
grep -q "speedup" target/ci-results/autotune.txt
! grep -q -- "-[0-9]*\.[0-9]*%" target/ci-results/autotune.txt

echo "== ci.sh: all green =="
