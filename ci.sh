#!/usr/bin/env sh
# Local CI entry point — the same gate as .github/workflows/ci.yml, runnable
# offline. All dependencies are vendored (see vendor/README.md), so the
# whole pipeline works without network access.
#
# Usage: ./ci.sh
set -eu
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== test =="
cargo test --workspace --offline -q

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke =="
# Quick plan (2 small models, median of 3), written to a scratch path so
# the committed BENCH_results.json stays untouched; --check fails the
# gate on malformed output.
./target/release/bench --quick --out target/BENCH_results_smoke.json
./target/release/bench --check target/BENCH_results_smoke.json

echo "== ci.sh: all green =="
