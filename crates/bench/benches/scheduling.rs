//! Criterion benches for the scheduling heuristics themselves.
//!
//! The paper reports ~10 s to compute TIC/TAC offline on TF graphs with
//! thousands of kernels; these benches measure our implementations across
//! model sizes (the cost is amortized: the schedule is computed once per
//! job).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tictac_core::{
    deploy, estimate_profile, no_ordering, simulate, tac, tic, ClusterSpec, DeployedModel,
    MeasuredProfile, Mode, Model, SimConfig,
};

fn setup(model: Model) -> (DeployedModel, MeasuredProfile) {
    let graph = model.build_with_batch(Mode::Training, 2);
    let deployed = deploy(&graph, &ClusterSpec::new(4, 1)).expect("valid cluster");
    let config = SimConfig::cloud_gpu();
    let unordered = no_ordering(deployed.graph());
    let traces: Vec<_> = (0..5)
        .map(|i| simulate(deployed.graph(), &unordered, &config, i))
        .collect();
    let profile = estimate_profile(&traces);
    (deployed, profile)
}

fn bench_tic(c: &mut Criterion) {
    let mut group = c.benchmark_group("tic");
    for model in [Model::AlexNetV2, Model::InceptionV1, Model::ResNet101V2] {
        let (deployed, _) = setup(model);
        group.bench_function(model.name(), |b| {
            b.iter(|| tic(deployed.graph(), deployed.workers()[0]))
        });
    }
    group.finish();
}

fn bench_tac(c: &mut Criterion) {
    let mut group = c.benchmark_group("tac");
    group.sample_size(10);
    for model in [Model::AlexNetV2, Model::InceptionV1, Model::ResNet101V2] {
        let (deployed, profile) = setup(model);
        group.bench_function(model.name(), |b| {
            b.iter(|| tac(deployed.graph(), deployed.workers()[0], &profile))
        });
    }
    group.finish();
}

fn bench_replicate(c: &mut Criterion) {
    let (deployed, _) = setup(Model::ResNet50V1);
    let schedule = tic(deployed.graph(), deployed.workers()[0]);
    c.bench_function("replicate_schedule/resnet_v1_50", |b| {
        b.iter_batched(
            || schedule.clone(),
            |s| deployed.replicate_schedule(&s),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_tic, bench_tac, bench_replicate);
criterion_main!(benches);
