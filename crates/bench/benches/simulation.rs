//! Criterion benches for the simulator hot paths: graph construction,
//! deployment and per-iteration event processing.

use criterion::{criterion_group, criterion_main, Criterion};
use tictac_core::{deploy, no_ordering, simulate, tic, ClusterSpec, Mode, Model, SimConfig};

fn bench_model_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_build");
    for model in [Model::AlexNetV2, Model::InceptionV3, Model::ResNet101V2] {
        group.bench_function(model.name(), |b| {
            b.iter(|| model.build_with_batch(Mode::Training, 2))
        });
    }
    group.finish();
}

fn bench_deploy(c: &mut Criterion) {
    let graph = Model::ResNet50V1.build_with_batch(Mode::Training, 2);
    c.bench_function("deploy/resnet_v1_50/8w2ps", |b| {
        b.iter(|| deploy(&graph, &ClusterSpec::new(8, 2)).expect("valid cluster"))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_iteration");
    group.sample_size(20);
    let config = SimConfig::cloud_gpu();
    for model in [Model::AlexNetV2, Model::ResNet50V1, Model::ResNet101V2] {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(4, 1)).expect("valid cluster");
        let baseline = no_ordering(deployed.graph());
        let scheduled = deployed.replicate_schedule(&tic(deployed.graph(), deployed.workers()[0]));
        group.bench_function(format!("{}/baseline", model.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                simulate(deployed.graph(), &baseline, &config, i)
            })
        });
        group.bench_function(format!("{}/tic", model.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                simulate(deployed.graph(), &scheduled, &config, i)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_build, bench_deploy, bench_simulate);
criterion_main!(benches);
