//! `bench` — the in-repo wall-clock benchmark harness.
//!
//! ```text
//! bench [--quick] [--out PATH] [--baseline PATH]
//! bench --check PATH
//! ```
//!
//! Times the per-model pipeline (build / deploy / tic / tac / tac_naive /
//! simulate) with warmup + median-of-N, writes the report to
//! `BENCH_results.json` (or `--out`), and prints a comparison against the
//! checked-in `BENCH_baseline.json` when one is present. `--check`
//! validates an existing report and exits nonzero if it is malformed.

use tictac_bench::format::Table;
use tictac_bench::micro::{
    render_json, run_plan, validate_report, BenchBackend, BenchPlan, BenchReport,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench [--quick] [--backend sim|threaded] [--out PATH] [--baseline PATH]\n       bench --check PATH"
    );
    std::process::exit(2);
}

fn check(path: &str) -> ! {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("bench --check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_report(&src) {
        Ok(report) => {
            println!(
                "{path}: valid {} report ({} models, median of {})",
                tictac_bench::micro::SCHEMA,
                report.models.len(),
                report.samples
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("bench --check: {path} is malformed: {e}");
            std::process::exit(1);
        }
    }
}

fn summary(report: &BenchReport) -> String {
    let mut t = Table::new([
        "model",
        "build ms",
        "deploy ms",
        "tic ms",
        "tac ms",
        "naive ms",
        "sim ms",
        "tac speedup",
    ]);
    for m in &report.models {
        let p = &m.phases;
        t.row([
            m.model.clone(),
            format!("{:.3}", p.build_ms),
            format!("{:.3}", p.deploy_ms),
            format!("{:.3}", p.tic_ms),
            format!("{:.3}", p.tac_ms),
            format!("{:.3}", p.tac_naive_ms),
            format!("{:.3}", p.simulate_ms),
            format!("{:.1}x", m.tac_speedup),
        ]);
    }
    t.render()
}

fn comparison(report: &BenchReport, baseline: &BenchReport) -> String {
    let mut t = Table::new(["model", "build", "deploy", "tic", "tac", "naive", "sim"]);
    let mut matched = 0;
    for m in &report.models {
        let Some(base) = baseline.models.iter().find(|b| b.model == m.model) else {
            continue;
        };
        matched += 1;
        let ratio = |now: f64, then: f64| format!("x{:.2}", now / then.max(1e-9));
        let (now, then) = (m.phases.pairs(), base.phases.pairs());
        t.row([
            m.model.clone(),
            ratio(now[0].1, then[0].1),
            ratio(now[1].1, then[1].1),
            ratio(now[2].1, then[2].1),
            ratio(now[3].1, then[3].1),
            ratio(now[4].1, then[4].1),
            ratio(now[5].1, then[5].1),
        ]);
    }
    if matched == 0 {
        return "no models in common with the baseline\n".into();
    }
    format!(
        "vs baseline (this run / baseline; <1 is faster):\n{}",
        t.render()
    )
}

fn main() {
    let mut quick = false;
    let mut backend = BenchBackend::Sim;
    let mut out = String::from("BENCH_results.json");
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--backend" => {
                let value = args.next().unwrap_or_else(|| usage());
                backend = BenchBackend::parse(&value).unwrap_or_else(|| {
                    eprintln!("bench: unknown backend {value:?} (expected sim or threaded)");
                    usage()
                });
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--baseline" => baseline_path = args.next().unwrap_or_else(|| usage()),
            "--check" => check(&args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench: unknown argument {other:?}");
                usage();
            }
        }
    }

    let plan = BenchPlan::new(quick).with_backend(backend);
    println!(
        "benching {} models (warmup {}, median of {}, {} iteration phase)...",
        plan.models.len(),
        plan.warmup,
        plan.samples,
        match backend {
            BenchBackend::Sim => "simulated",
            BenchBackend::Threaded => "threaded wall-clock",
        }
    );
    let report = run_plan(&plan, |timing| {
        println!(
            "  {:<22} tac {:.3} ms, naive {:.3} ms ({:.1}x)",
            timing.model, timing.phases.tac_ms, timing.phases.tac_naive_ms, timing.tac_speedup
        );
    });

    let json = render_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\n{}", summary(&report));
    println!("wrote {out}");

    match std::fs::read_to_string(&baseline_path) {
        Ok(src) => match validate_report(&src) {
            Ok(baseline) => println!("\n{}", comparison(&report, &baseline)),
            Err(e) => {
                eprintln!("bench: baseline {baseline_path} is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => println!("(no baseline at {baseline_path}; skipping comparison)"),
    }
}
