//! `bench` — the in-repo wall-clock benchmark harness.
//!
//! ```text
//! bench [--quick] [--backend sim|threaded] [--out PATH] [--baseline PATH] [--store PATH]
//! bench --check PATH [--baseline PATH]
//! ```
//!
//! Times the per-model pipeline (build / deploy / cached deploy / tic /
//! tac / tac_naive / simulate) with warmup + median-of-N, writes the
//! report to `BENCH_results.json` (or `--out`), and prints a comparison
//! against the checked-in `BENCH_baseline.json` when one is present.
//!
//! `--store PATH` additionally appends the run to the JSONL run store
//! (one record per model; `TICTAC_RUN_STORE` arms the same sink). A
//! `--baseline` ending in `.jsonl` is read as a run-store corpus: the
//! latest bench record per model becomes the comparison baseline, so the
//! gate tracks accumulated history instead of one pinned file.
//!
//! `--check PATH` validates an existing report and, when a baseline with
//! a matching backend is available, exits nonzero if any phase of any
//! model regressed against it — more than 25% (and 0.1 ms) for full
//! reports, more than 100% (and 0.25 ms) for quick smoke reports, whose
//! median-of-3 timings jitter too much for the tight gate. This is the
//! CI regression gate.

use tictac_bench::format::Table;
use tictac_bench::micro::{
    regressions, render_json, report_from_records, report_records, run_plan, validate_report,
    BenchBackend, BenchPlan, BenchReport,
};

/// The CI gate for full reports: fail a phase that got >25% and >0.1 ms
/// slower than the baseline.
const REGRESSION_THRESHOLD: f64 = 0.25;
const REGRESSION_FLOOR_MS: f64 = 0.1;

/// Quick smoke reports (median of 3, often on loaded CI boxes) jitter far
/// more than full runs; gate them loosely — a lost fast path shows up as
/// 3–10×, machine noise as <2×.
const QUICK_THRESHOLD: f64 = 1.0;
const QUICK_FLOOR_MS: f64 = 0.25;

fn usage() -> ! {
    eprintln!(
        "usage: bench [--quick] [--backend sim|threaded] [--out PATH] [--baseline PATH] [--store PATH]\n       bench --check PATH [--baseline PATH]"
    );
    std::process::exit(2);
}

fn load_report(path: &str, what: &str) -> Result<BenchReport, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {what} {path}: {e}"))?;
    if path.ends_with(".jsonl") {
        let records = tictac_store::load_lines(&src)
            .map_err(|e| format!("{what} {path} is not a valid run store: {e}"))?;
        return report_from_records(&records).map_err(|e| format!("{what} {path}: {e}"));
    }
    validate_report(&src).map_err(|e| format!("{what} {path} is malformed: {e}"))
}

/// `bench --check`: validate `path`, then gate it against the baseline.
fn check(path: &str, baseline_path: &str) -> ! {
    let report = match load_report(path, "report") {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench --check: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{path}: valid {} report ({} models, median of {}, {} backend)",
        tictac_bench::micro::SCHEMA,
        report.models.len(),
        report.samples,
        report.backend,
    );
    if !std::path::Path::new(baseline_path).exists() {
        println!("(no baseline at {baseline_path}; skipping the regression gate)");
        std::process::exit(0);
    }
    let baseline = match load_report(baseline_path, "baseline") {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("bench --check: {e}");
            std::process::exit(1);
        }
    };
    if report.backend != baseline.backend {
        println!(
            "baseline backend {:?} differs from report backend {:?}; skipping the regression gate",
            baseline.backend, report.backend
        );
        std::process::exit(0);
    }
    let (threshold, floor) = if report.quick {
        (QUICK_THRESHOLD, QUICK_FLOOR_MS)
    } else {
        (REGRESSION_THRESHOLD, REGRESSION_FLOOR_MS)
    };
    let found = regressions(&report, &baseline, threshold, floor);
    if found.is_empty() {
        println!(
            "no phase regressed more than {:.0}% vs {baseline_path}",
            threshold * 100.0
        );
        std::process::exit(0);
    }
    eprintln!(
        "bench --check: {} regression(s) beyond {:.0}% vs {baseline_path}:",
        found.len(),
        threshold * 100.0
    );
    for r in &found {
        eprintln!(
            "  {:<22} {:<18} {:.3} ms -> {:.3} ms (x{:.2})",
            r.model,
            r.phase,
            r.then,
            r.now,
            r.now / r.then.max(1e-9)
        );
    }
    std::process::exit(1);
}

fn summary(report: &BenchReport) -> String {
    let mut t = Table::new([
        "model",
        "build ms",
        "deploy ms",
        "cached ms",
        "tic ms",
        "tac ms",
        "naive ms",
        "sim ms",
        "tac speedup",
    ]);
    for m in &report.models {
        let p = &m.phases;
        t.row([
            m.model.clone(),
            format!("{:.3}", p.build_ms),
            format!("{:.3}", p.deploy_ms),
            format!("{:.4}", p.deploy_cached_ms),
            format!("{:.3}", p.tic_ms),
            format!("{:.3}", p.tac_ms),
            format!("{:.3}", p.tac_naive_ms),
            format!("{:.3}", p.simulate_ms),
            format!("{:.1}x", m.tac_speedup),
        ]);
    }
    t.render()
}

fn comparison(report: &BenchReport, baseline: &BenchReport) -> String {
    if report.backend != baseline.backend {
        return format!(
            "baseline backend {:?} differs from this run's {:?}; skipping comparison\n",
            baseline.backend, report.backend
        );
    }
    let mut t = Table::new([
        "model", "build", "deploy", "cached", "tic", "tac", "naive", "sim",
    ]);
    let mut matched = 0;
    for m in &report.models {
        let Some(base) = baseline.models.iter().find(|b| b.model == m.model) else {
            continue;
        };
        matched += 1;
        let ratio = |now: f64, then: f64| format!("x{:.2}", now / then.max(1e-9));
        let cells: Vec<String> = m
            .phases
            .pairs()
            .into_iter()
            .zip(base.phases.pairs())
            .map(|((_, now), (_, then))| ratio(now, then))
            .collect();
        let mut row = vec![m.model.clone()];
        row.extend(cells);
        t.row(row);
    }
    if matched == 0 {
        return "no models in common with the baseline\n".into();
    }
    format!(
        "vs baseline (this run / baseline; <1 is faster):\n{}",
        t.render()
    )
}

fn main() {
    let mut quick = false;
    let mut backend = BenchBackend::Sim;
    let mut out = String::from("BENCH_results.json");
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut check_path: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--store" => store_path = Some(args.next().unwrap_or_else(|| usage())),
            "--backend" => {
                let value = args.next().unwrap_or_else(|| usage());
                backend = BenchBackend::parse(&value).unwrap_or_else(|| {
                    eprintln!("bench: unknown backend {value:?} (expected sim or threaded)");
                    usage()
                });
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--baseline" => baseline_path = args.next().unwrap_or_else(|| usage()),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench: unknown argument {other:?}");
                usage();
            }
        }
    }
    if let Some(path) = check_path {
        check(&path, &baseline_path);
    }

    let plan = BenchPlan::new(quick).with_backend(backend);
    println!(
        "benching {} models (warmup {}, median of {}, {} iteration phase)...",
        plan.models.len(),
        plan.warmup,
        plan.samples,
        match backend {
            BenchBackend::Sim => "simulated",
            BenchBackend::Threaded => "threaded wall-clock",
        }
    );
    let report = run_plan(&plan, |timing| {
        println!(
            "  {:<22} tac {:.3} ms, naive {:.3} ms ({:.1}x)",
            timing.model, timing.phases.tac_ms, timing.phases.tac_naive_ms, timing.tac_speedup
        );
    });

    let json = render_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\n{}", summary(&report));
    println!("wrote {out}");

    if let Some(store) = tictac_store::arm_global_store(store_path.as_deref()) {
        for record in report_records(&report) {
            match store.append(record) {
                Ok(id) => println!("recorded {id} -> {}", store.path().display()),
                Err(e) => {
                    eprintln!("bench: cannot append to {}: {e}", store.path().display());
                    std::process::exit(1);
                }
            }
        }
    }

    match std::fs::read_to_string(&baseline_path) {
        Ok(src) => match validate_report(&src) {
            Ok(baseline) => println!("\n{}", comparison(&report, &baseline)),
            Err(e) => {
                eprintln!("bench: baseline {baseline_path} is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => println!("(no baseline at {baseline_path}; skipping comparison)"),
    }
}
