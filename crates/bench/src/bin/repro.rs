//! `repro` — regenerates every table and figure of the TicTac paper.
//!
//! Usage:
//!
//! ```text
//! repro --exp all            # every experiment (full fidelity)
//! repro --exp fig7           # one experiment
//! repro --exp fig12 --quick  # trimmed run counts for smoke tests
//! repro --list               # list experiment names
//! repro --out results/       # also write one report file per experiment
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use tictac_bench::experiments;

fn main() {
    let mut exp: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => {
                let value = args.next().unwrap_or_else(|| usage("--exp needs a value"));
                exp.extend(value.split(',').map(str::to_string));
            }
            "--quick" => quick = true,
            "--out" => {
                let value = args.next().unwrap_or_else(|| usage("--out needs a value"));
                out_dir = Some(PathBuf::from(value));
            }
            "--list" => {
                for (name, _) in experiments::ALL {
                    println!("{name}");
                }
                return;
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if exp.is_empty() {
        usage("pass --exp <name|all> (see --list)");
    }

    let selected: Vec<&str> = if exp.iter().any(|e| e == "all") {
        experiments::ALL.iter().map(|(n, _)| *n).collect()
    } else {
        exp.iter().map(String::as_str).collect()
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for name in selected {
        let Some(runner) = experiments::find(name) else {
            usage(&format!("unknown experiment `{name}` (see --list)"));
        };
        eprintln!(
            "== running {name}{} ==",
            if quick { " (quick)" } else { "" }
        );
        let started = std::time::Instant::now();
        let report = runner(quick);
        eprintln!(
            "== {name} done in {:.1}s ==",
            started.elapsed().as_secs_f64()
        );
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{name}.txt"));
            let mut f = std::fs::File::create(&path).expect("create report file");
            f.write_all(report.as_bytes()).expect("write report");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro --exp <name|all>[,name...] [--quick] [--out DIR] [--list]\n\
         experiments: {}",
        experiments::ALL
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
