//! `repro` — regenerates every table and figure of the TicTac paper.
//!
//! Usage:
//!
//! ```text
//! repro --exp all                 # every experiment (full fidelity)
//! repro --exp fig7                # one experiment
//! repro --exp fig12 --quick       # trimmed run counts for smoke tests
//! repro --list                    # list experiment names
//! repro --out results/            # also write one report file per experiment
//! repro --backend threaded        # wall-clock variant of an experiment
//!                                 # (e.g. --exp faults lands chaos.txt)
//! repro --export-trace out.json   # write a Perfetto trace of one iteration
//! repro --export-chaos-trace out.json # same, with injected faults
//! repro --validate-trace out.json # parse + sanity-check an exported trace
//! repro --exp table1 --store runs.jsonl # also append run records to a store
//! ```
//!
//! `--store PATH` (or the `TICTAC_RUN_STORE` environment variable) arms
//! the process-global run store: every session an experiment runs appends
//! a full evidence record, and each experiment additionally appends one
//! `report`-kind record holding the FNV-1a fingerprint of its rendered
//! report — so even session-free experiments (like `table1`) leave a
//! regression-checkable trail. Reports are deterministic on the sim
//! backend, so two same-seed invocations append byte-identical payloads.

use std::io::Write as _;
use std::path::PathBuf;
use tictac_bench::experiments;
use tictac_core::{
    validate_perfetto, ClusterSpec, Mode, Model, Registry, SchedulerKind, Session, SimConfig,
    ThreadedBackend,
};

/// Exports one TAC-scheduled AlexNet iteration (2 workers, 1 PS, seed 0)
/// as Chrome/Perfetto `trace_event` JSON — load it at `ui.perfetto.dev`.
fn export_trace(path: &PathBuf) {
    let session = Session::builder(Model::AlexNetV2.build_with_batch(Mode::Training, 2))
        .cluster(ClusterSpec::new(2, 1))
        .config(SimConfig::cloud_gpu())
        .scheduler(SchedulerKind::Tac)
        .observe(Registry::enabled())
        .build()
        .expect("zoo model deploys");
    let json = session.perfetto_json(0).expect("fault-free iteration");
    std::fs::write(path, &json).expect("write trace file");
    let stats = validate_perfetto(&json).expect("exporter emits valid trace JSON");
    eprintln!(
        "wrote {} ({} events: {} slices, {} instants, {} flows)",
        path.display(),
        stats.events,
        stats.slices,
        stats.instants,
        stats.flow_starts + stats.flow_ends,
    );
}

/// Exports one TAC-scheduled AlexNet iteration run on the *threaded*
/// backend under the chaos reference fault spec (fixed seed), so the
/// fault instants — drops, retransmits, blackout/crash windows — land in
/// the wall-clock Perfetto lanes. CI uploads this as its chaos artifact.
fn export_chaos_trace(path: &PathBuf) {
    let clean = Session::builder(Model::AlexNetV2.build_with_batch(Mode::Training, 2))
        .cluster(ClusterSpec::new(2, 1))
        .config(SimConfig::cloud_gpu())
        .scheduler(SchedulerKind::Tac)
        .warmup(0)
        .iterations(1)
        .build()
        .expect("zoo model deploys")
        .run()
        .mean_makespan();
    let config = SimConfig::cloud_gpu()
        .with_seed(experiments::CHAOS_SEED)
        .with_faults(experiments::reference_spec(clean));
    let session = Session::builder(Model::AlexNetV2.build_with_batch(Mode::Training, 2))
        .cluster(ClusterSpec::new(2, 1))
        .config(config.clone())
        .scheduler(SchedulerKind::Tac)
        .backend(
            ThreadedBackend::from_config(&config)
                .expect("chaos config is threaded-supported")
                .with_watchdog(std::time::Duration::from_secs(120)),
        )
        .observe(Registry::enabled())
        .build()
        .expect("zoo model deploys");
    let json = session.perfetto_json(0).expect("faulty iteration recovers");
    std::fs::write(path, &json).expect("write trace file");
    let stats = validate_perfetto(&json).expect("exporter emits valid trace JSON");
    eprintln!(
        "wrote {} ({} events: {} slices, {} instants, {} fault instants: {:?})",
        path.display(),
        stats.events,
        stats.slices,
        stats.instants,
        stats.fault_names.len(),
        stats.fault_names,
    );
}

fn validate_trace(path: &PathBuf) {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {}: {e}", path.display())));
    match validate_perfetto(&src) {
        Ok(stats) => {
            println!(
                "{}: OK ({} events: {} slices, {} instants, {} flow starts, {} flow ends)",
                path.display(),
                stats.events,
                stats.slices,
                stats.instants,
                stats.flow_starts,
                stats.flow_ends,
            );
            for (process, slices) in &stats.slices_per_process {
                println!("  {process}: {slices} slices");
            }
            // An exported iteration must exercise every device: a device
            // lane with zero slices means the trace is truncated or the
            // lane mapping regressed. (The synthetic barrier lane only
            // carries events on degraded iterations.)
            for process in &stats.processes {
                let has_slices = stats
                    .slices_per_process
                    .iter()
                    .any(|(name, count)| name == process && *count > 0);
                if process != "barrier" && !has_slices {
                    eprintln!(
                        "{}: INVALID: device lane {process:?} has no slices",
                        path.display()
                    );
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("{}: INVALID: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut exp: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut threaded = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => {
                let value = args.next().unwrap_or_else(|| usage("--exp needs a value"));
                exp.extend(value.split(',').map(str::to_string));
            }
            "--quick" => quick = true,
            "--backend" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--backend needs `sim` or `threaded`"));
                threaded = match value.as_str() {
                    "sim" => false,
                    "threaded" => true,
                    other => usage(&format!("unknown backend `{other}` (sim|threaded)")),
                };
            }
            "--out" => {
                let value = args.next().unwrap_or_else(|| usage("--out needs a value"));
                out_dir = Some(PathBuf::from(value));
            }
            "--store" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--store needs a file path"));
                tictac_store::arm_global_store(Some(&value));
            }
            "--export-trace" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--export-trace needs a file path"));
                export_trace(&PathBuf::from(value));
                return;
            }
            "--export-chaos-trace" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--export-chaos-trace needs a file path"));
                export_chaos_trace(&PathBuf::from(value));
                return;
            }
            "--validate-trace" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--validate-trace needs a file path"));
                validate_trace(&PathBuf::from(value));
                return;
            }
            "--list" => {
                for (name, _) in experiments::ALL {
                    println!("{name}");
                }
                return;
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if exp.is_empty() {
        usage("pass --exp <name|all> (see --list)");
    }

    let selected: Vec<&str> = if exp.iter().any(|e| e == "all") {
        experiments::ALL.iter().map(|(n, _)| *n).collect()
    } else {
        exp.iter().map(String::as_str).collect()
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for name in selected {
        // `--backend threaded` swaps in an experiment's wall-clock
        // variant; the report then lands under the variant's own name
        // (e.g. `faults` → `chaos.txt`).
        let (label, runner) = if threaded {
            let Some((label, runner)) = experiments::find_threaded(name) else {
                usage(&format!(
                    "experiment `{name}` has no threaded-backend variant (have: {})",
                    experiments::THREADED_VARIANTS
                        .iter()
                        .map(|(n, _, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            };
            (label, runner)
        } else {
            let Some(runner) = experiments::find(name) else {
                usage(&format!("unknown experiment `{name}` (see --list)"));
            };
            (name, runner)
        };
        eprintln!(
            "== running {label}{} ==",
            if quick { " (quick)" } else { "" }
        );
        let started = std::time::Instant::now();
        let report = runner(quick);
        eprintln!(
            "== {label} done in {:.1}s ==",
            started.elapsed().as_secs_f64()
        );
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{label}.txt"));
            let mut f = std::fs::File::create(&path).expect("create report file");
            f.write_all(report.as_bytes()).expect("write report");
            eprintln!("wrote {}", path.display());
        }
        if let Some(store) = tictac_store::global_store() {
            let record = tictac_store::RunRecord {
                id: String::new(),
                time_ms: 0,
                source: "repro".into(),
                workload: label.to_string(),
                model_fp: 0,
                workers: 0,
                ps: 0,
                scheduler: "-".into(),
                backend: if threaded { "threaded" } else { "sim" }.into(),
                seed: SimConfig::cloud_gpu().seed,
                fault_fp: 0,
                scenario_fp: 0,
                comm_fp: 0,
                provenance: std::env::var("TICTAC_PROVENANCE").unwrap_or_default(),
                payload: tictac_store::Payload::Report(tictac_store::ReportEvidence {
                    report_fp: tictac_store::fnv1a_64(report.as_bytes()),
                    quick,
                }),
            };
            match store.append(record) {
                Ok(id) => eprintln!("recorded {id} -> {}", store.path().display()),
                Err(e) => {
                    eprintln!("repro: cannot append to {}: {e}", store.path().display());
                    std::process::exit(1);
                }
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro --exp <name|all>[,name...] [--quick] [--backend sim|threaded] [--out DIR] [--store FILE.jsonl] [--list]\n\
         \x20      repro --export-trace FILE.json   (Perfetto trace of one TAC AlexNet iteration)\n\
         \x20      repro --export-chaos-trace FILE.json (same, threaded backend with injected faults)\n\
         \x20      repro --validate-trace FILE.json (parse + sanity-check an exported trace)\n\
         experiments: {}",
        experiments::ALL
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
