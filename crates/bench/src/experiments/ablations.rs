//! Ablations of the design choices DESIGN.md calls out (§5.1 of the
//! paper): enforcement location, gRPC reorder errors and parameter
//! sharding.

use crate::format::Table;
use crate::runner::{parallel_map, Point};
use tictac_core::{speedup_pct, Mode, Model, SchedulerKind, Sharding, SimConfig};

/// Sensitivity of TIC's gain to the network's out-of-order probability.
///
/// The paper measures 0.4–0.5% reorder errors at the gRPC level; at 100%
/// the enforced hand-off order is destroyed at the channel and the gain
/// should collapse toward the baseline.
pub fn reorder(quick: bool) -> String {
    let probs = [0.0, 0.005, 0.05, 0.25, 1.0];
    let iterations = if quick { 4 } else { 10 };
    let model = Model::ResNet50V1;

    let mut points = Vec::new();
    for &p in &probs {
        for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
            let mut pt = Point::new(
                model,
                Mode::Inference,
                4,
                1,
                scheduler,
                SimConfig::cloud_gpu().with_reorder_error(p),
            );
            pt.iterations = iterations;
            points.push(pt);
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    let mut t = Table::new(["reorder probability", "TIC speedup", "TIC efficiency E"]);
    for &prob in &probs {
        let find = |sched: SchedulerKind| {
            points
                .iter()
                .zip(&reports)
                .find(|(pt, _)| pt.scheduler == sched && pt.config.reorder_error == prob)
                .map(|(_, r)| r.clone())
                .expect("point was swept")
        };
        let base = find(SchedulerKind::Baseline);
        let tic = find(SchedulerKind::Tic);
        t.row([
            format!("{prob}"),
            format!(
                "{:+.1}%",
                speedup_pct(base.mean_throughput(), tic.mean_throughput())
            ),
            format!("{:.3}", tic.mean_efficiency()),
        ]);
    }
    format!(
        "Ablation: gRPC reorder-error sensitivity (ResNet-50 v1 inference, envG, 4 workers)\n\n{}",
        t.render()
    )
}

/// Enforcement-location ablation (§5.1): full sender-side counters vs
/// hand-off without counters (priorities only steer queue pops) vs no
/// ordering at all.
pub fn enforcement(quick: bool) -> String {
    let iterations = if quick { 4 } else { 10 };
    let model = Model::InceptionV3;

    // With counters disabled, randomize pops fully (reorder error 1.0
    // would ignore ranks at the pop too); instead keep the pop rank-aware
    // but remove the gate, showing drift between hand-off and wire order.
    let variants: [(&str, SchedulerKind, bool, f64); 4] = [
        (
            "baseline (no ordering)",
            SchedulerKind::Baseline,
            true,
            0.005,
        ),
        (
            "TIC, sender-side counters (TicTac)",
            SchedulerKind::Tic,
            true,
            0.005,
        ),
        (
            "TIC, no counters (activation order only)",
            SchedulerKind::Tic,
            false,
            0.005,
        ),
        (
            "TIC, no counters + random pops",
            SchedulerKind::Tic,
            false,
            1.0,
        ),
    ];

    let mut points = Vec::new();
    for &(_, scheduler, enforce, reorder) in &variants {
        let mut p = Point::new(
            model,
            Mode::Inference,
            4,
            1,
            scheduler,
            SimConfig::cloud_gpu()
                .with_enforcement(enforce)
                .with_reorder_error(reorder),
        );
        p.iterations = iterations;
        points.push(p);
    }
    let reports = parallel_map(points, |p| p.run());

    let base = reports[0].mean_throughput();
    let mut t = Table::new(["variant", "throughput (samples/s)", "vs baseline", "E"]);
    for ((label, ..), report) in variants.iter().zip(&reports) {
        t.row([
            label.to_string(),
            format!("{:.1}", report.mean_throughput()),
            format!("{:+.1}%", speedup_pct(base, report.mean_throughput())),
            format!("{:.3}", report.mean_efficiency()),
        ]);
    }
    format!(
        "Ablation: enforcement location (Inception v3 inference, envG, 4 workers)\n\n{}",
        t.render()
    )
}

/// Parameter-sharding ablation: size-balanced (default) vs round-robin
/// placement across 4 parameter servers.
pub fn sharding(quick: bool) -> String {
    let iterations = if quick { 4 } else { 10 };
    let models = [Model::Vgg16, Model::ResNet50V1];

    let mut points = Vec::new();
    for &model in &models {
        for sharding in [Sharding::SizeBalanced, Sharding::RoundRobin] {
            let mut p = Point::new(
                model,
                Mode::Training,
                8,
                4,
                SchedulerKind::Tic,
                SimConfig::cloud_gpu(),
            );
            p.sharding = sharding;
            p.iterations = iterations;
            points.push(p);
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    let mut t = Table::new(["model", "sharding", "throughput (samples/s)"]);
    for (p, r) in points.iter().zip(&reports) {
        t.row([
            p.model.name().to_string(),
            format!("{:?}", p.sharding),
            format!("{:.1}", r.mean_throughput()),
        ]);
    }
    format!(
        "Ablation: parameter sharding across 4 PS (training, envG, 8 workers, TIC)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reorder_report_covers_probabilities() {
        let out = super::reorder(true);
        assert!(out.contains("0.005"));
        assert!(out.contains('1'));
    }

    #[test]
    fn enforcement_report_lists_variants() {
        let out = super::enforcement(true);
        assert!(out.contains("sender-side counters"));
        assert!(out.contains("activation order only"));
    }

    #[test]
    fn sharding_report_lists_policies() {
        let out = super::sharding(true);
        assert!(out.contains("SizeBalanced"));
        assert!(out.contains("RoundRobin"));
    }
}
