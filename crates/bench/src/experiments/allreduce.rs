//! Extension experiment (§7 future work): Parameter Server + TicTac vs
//! ring all-reduce.
//!
//! The paper scopes TicTac to PS aggregation and names collective patterns
//! (all-reduce / Horovod) as future work, noting they are "gaining
//! traction in high-performance networking". This experiment quantifies
//! the comparison on the same simulated substrate: how much of the PS
//! stack's disadvantage against a ring does communication scheduling
//! recover?

use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::{
    deploy_all_reduce, no_ordering, simulate, speedup_pct, ClusterSpec, Mode, Model, SchedulerKind,
    Session, SimConfig,
};

/// Compares PS-baseline, PS+TIC and ring all-reduce throughput while
/// scaling workers (training, envG).
pub fn run(quick: bool) -> String {
    let worker_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 16] };
    let models: &[Model] = if quick {
        &[Model::ResNet50V1]
    } else {
        &[Model::ResNet50V1, Model::Vgg16, Model::InceptionV3]
    };
    let iterations = if quick { 3 } else { 10 };
    let config = SimConfig::cloud_gpu();

    let mut out = String::from(
        "Extension: Parameter Server (baseline / TIC) vs ring all-reduce\n(training, envG; PS:W = 1:4; throughput in samples/s)\n\n",
    );
    for &model in models {
        let mut t = Table::new([
            "workers",
            "PS baseline",
            "PS + TIC",
            "ring all-reduce",
            "TIC vs ring gap",
        ]);
        let batch = model.default_batch();
        // Each worker-count cell is an independent deployment; fan out.
        let rows = parallel_map(worker_counts.to_vec(), |&workers| {
            let ps = (workers / 4).max(1);
            let graph = model.build(Mode::Training);
            let session = |scheduler: SchedulerKind| {
                Session::builder(graph.clone())
                    .cluster(ClusterSpec::new(workers, ps))
                    .config(config.clone())
                    .scheduler(scheduler)
                    .iterations(iterations)
                    .build()
                    .expect("valid cluster")
                    .run()
                    .mean_throughput()
            };
            let ps_base = session(SchedulerKind::Baseline);
            let ps_tic = session(SchedulerKind::Tic);

            // Ring all-reduce: fixed transfer order, nothing to schedule.
            let ring = deploy_all_reduce(&graph, workers).expect("valid ring");
            let unordered = no_ordering(ring.graph());
            let mut makespans = Vec::with_capacity(iterations);
            for i in 0..(iterations + 2) as u64 {
                let trace = simulate(ring.graph(), &unordered, &config, i);
                if i >= 2 {
                    makespans.push(trace.makespan().as_secs_f64());
                }
            }
            let ring_tput =
                (batch * workers) as f64 / (makespans.iter().sum::<f64>() / makespans.len() as f64);

            [
                workers.to_string(),
                format!("{ps_base:.1}"),
                format!("{ps_tic:.1}"),
                format!("{ring_tput:.1}"),
                format!("{:+.1}%", speedup_pct(ring_tput, ps_tic)),
            ]
        });
        for row in rows {
            t.row(row);
        }
        out.push_str(&format!("model = {}\n{}\n", model.name(), t.render()));
    }
    out.push_str(
        "(negative gap: the ring wins. On compute-bound models PS+TIC matches the\n ring within a few percent — scheduling recovers what decentralized\n aggregation buys. On communication-bound models the ring's constant\n 2(W-1)/W per-link volume scales while the PS NICs saturate, which is why\n the paper scopes TicTac to PS and names collectives as future work.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_compares_three_systems() {
        let out = super::run(true);
        assert!(out.contains("PS + TIC"));
        assert!(out.contains("ring all-reduce"));
        assert!(out.contains("resnet_v1_50"));
    }
}
