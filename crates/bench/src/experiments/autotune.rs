//! Auto-tuned communication granularity: plain TAC vs tuned TAC.
//!
//! For every zoo model on a 4-worker / 2-PS envG cluster, a seeded
//! coordinate-descent search ([`tictac_core::auto_tune_with`]) picks the
//! partition/fusion thresholds minimising the fault-free makespan under
//! TAC, and the table compares the untuned deployment against the
//! winner. The fc-heavy VGG models gain from partitioning (fc6 alone is
//! ~74% of VGG-16's bytes, and chunks spread across both PS shards),
//! while fine-grained models gain from fusing sub-threshold transfers;
//! the default configuration is always a search candidate, so no model
//! can regress.

use super::pick_models_zoo;
use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::{
    auto_tune_with, DeployCache, Mode, Model, SchedulerKind, SimConfig, TuneOptions,
};

/// Renders a threshold as a human size, or `off` when the pass is
/// disabled.
fn size_label(bytes: Option<u64>) -> String {
    match bytes {
        None => "off".into(),
        Some(b) if b >= 1 << 20 && b % (1 << 20) == 0 => format!("{}M", b >> 20),
        Some(b) if b >= 1 << 10 && b % (1 << 10) == 0 => format!("{}K", b >> 10),
        Some(b) => format!("{b}B"),
    }
}

/// Runs the search across the zoo (quick: AlexNet + VGG-16 with a
/// reduced ladder) and renders the plain-vs-tuned comparison table.
pub fn run(quick: bool) -> String {
    let models = if quick {
        vec![Model::AlexNetV2, Model::Vgg16]
    } else {
        pick_models_zoo(false)
    };
    let options = if quick {
        TuneOptions::quick()
    } else {
        TuneOptions::default()
    };

    let results = parallel_map(models.clone(), |&model| {
        let graph = model.build_with_batch(Mode::Training, model.default_batch());
        let cluster = tictac_core::ClusterSpec::new(4, 2);
        auto_tune_with(
            DeployCache::global(),
            &graph,
            &cluster,
            SchedulerKind::Tac,
            &SimConfig::cloud_gpu(),
            &options,
        )
        .expect("zoo model deploys on 4w/2ps")
    });

    let mut out = String::from(
        "Auto-tuned communication: plain TAC vs tuned TAC makespan\n\
         (training, 4 workers / 2 PS, envG, fault-free, seeded search)\n\n",
    );
    let mut t = Table::new([
        "model",
        "plain (ms)",
        "tuned (ms)",
        "partition",
        "fusion",
        "speedup",
        "evals",
    ]);
    for (model, r) in models.iter().zip(&results) {
        t.row([
            model.name().to_string(),
            format!("{:.3}", r.baseline_makespan_s * 1e3),
            format!("{:.3}", r.best_makespan_s * 1e3),
            size_label(r.best.partition_bytes),
            size_label(r.best.fusion_bytes),
            format!("{:+.1}%", r.speedup_pct()),
            r.evaluations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_search_tunes_vgg16_without_regressions() {
        let out = run(true);
        assert!(out.contains("alexnet_v2"));
        assert!(out.contains("vgg_16"));
        // The default config is always a candidate, so no row may show
        // a slowdown.
        assert!(!out.contains('-') || !out.contains("-0."), "{out}");
        for line in out.lines().filter(|l| l.contains('%')) {
            assert!(!line.contains("-"), "regression in {line}");
        }
    }

    #[test]
    fn size_labels_are_human() {
        assert_eq!(size_label(None), "off");
        assert_eq!(size_label(Some(4 << 20)), "4M");
        assert_eq!(size_label(Some(64 << 10)), "64K");
        assert_eq!(size_label(Some(1000)), "1000B");
    }
}
