//! Chaos experiment (robustness extension): do TicTac's wall-clock wins
//! and its zero-inversion enforcement survive injected faults on the
//! *threaded* runtime?
//!
//! Every zoo model runs baseline vs enforced TAC on the threaded backend
//! under the **reference fault spec** — drops, blackouts, crashes and PS
//! stalls sized relative to the model's clean simulated makespan, so the
//! same relative fault pressure applies to every model. Both policies
//! draw the *same* per-iteration fault plans (the sampler keys on the
//! deployment graph and seed, not the schedule), so the comparison
//! isolates scheduling under identical misfortune.

use crate::format::Table;
use tictac_core::{
    priority_inversions, ClusterSpec, FaultCounters, FaultSpec, Mode, Model, RetryPolicy,
    SchedulerKind, Session, SimConfig, SimDuration, ThreadedBackend,
};

/// Seed for every chaos run; fixed so CI smoke runs are reproducible.
pub const CHAOS_SEED: u64 = 0xC1A05;

/// The reference fault spec, sized against the clean simulated makespan
/// `m` of the model under test: 2% transfer drops with detection at 2% of
/// the step and a deep retry budget, plus blackout/crash/PS-stall windows
/// of 5% of the step each, all landing in the first 30% of the iteration.
pub fn reference_spec(m: SimDuration) -> FaultSpec {
    FaultSpec::none()
        .with_drop_prob(0.02)
        .with_blackouts(0.25, m.mul_f64(0.05))
        .with_crashes(0.2, m.mul_f64(0.05))
        .with_ps_stalls(0.3, m.mul_f64(0.05))
        .with_onset_window(m.mul_f64(0.3))
        .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 60))
}

fn session(
    model: Model,
    scheduler: SchedulerKind,
    config: &SimConfig,
    iterations: usize,
    threaded: bool,
) -> Session {
    let graph = model.build_with_batch(Mode::Training, model.default_batch());
    let builder = Session::builder(graph)
        .cluster(ClusterSpec::new(2, 1))
        .config(config.clone())
        .scheduler(scheduler)
        .warmup(0)
        .iterations(iterations);
    let builder = if threaded {
        builder.backend(
            ThreadedBackend::from_config(config)
                .expect("chaos config is threaded-supported")
                .with_watchdog(std::time::Duration::from_secs(120)),
        )
    } else {
        builder
    };
    builder.build().expect("zoo model deploys")
}

/// Runs the chaos sweep and renders the report.
///
/// Threaded sessions run sequentially (each spawns a thread per device
/// and channel); parallelizing them would poison the wall-clock numbers.
pub fn run(quick: bool) -> String {
    let models = super::pick_models_zoo(quick);
    let iterations = if quick { 2 } else { 3 };

    let mut t = Table::new([
        "model",
        "base samples/s",
        "tac samples/s",
        "tac vs base",
        "goodput%",
        "faults (tac)",
    ]);
    let mut tac_wins = 0usize;
    let mut total_inversions = 0usize;
    let mut totals = FaultCounters::default();

    for &model in &models {
        // The fault yardstick: this model's clean simulated step time.
        let clean = session(
            model,
            SchedulerKind::Baseline,
            &SimConfig::cloud_gpu(),
            1,
            false,
        )
        .run()
        .mean_makespan();
        let config = SimConfig::cloud_gpu()
            .with_seed(CHAOS_SEED)
            .with_faults(reference_spec(clean));

        let base = session(model, SchedulerKind::Baseline, &config, iterations, true)
            .try_run()
            .expect("retry budget absorbs the reference spec");
        let tac_session = session(model, SchedulerKind::Tac, &config, iterations, true);
        let tac = tac_session
            .try_run()
            .expect("retry budget absorbs the reference spec");

        // Enforcement claim under fire: retransmits, parked channels and
        // respawned workers must not let a lower-ranked runnable transfer
        // be overtaken.
        let schedule = tac_session.schedule().clone();
        let trace = tac_session.trace_iteration(0).expect("iteration recovers");
        total_inversions += priority_inversions(tac_session.deployed().graph(), &trace, |op| {
            schedule.priority(op)
        })
        .count();

        let faults = tac.total_faults();
        totals.merge(&faults);
        if tac.mean_throughput() >= base.mean_throughput() {
            tac_wins += 1;
        }
        t.row([
            model.name().to_string(),
            format!("{:.0}", base.mean_throughput()),
            format!("{:.0}", tac.mean_throughput()),
            format!(
                "{:+.1}%",
                (tac.mean_throughput() / base.mean_throughput() - 1.0) * 100.0
            ),
            format!("{:.2}", tac.mean_goodput_pct()),
            faults.to_string(),
        ]);
    }

    format!(
        "Chaos sweep (envG, training, 2 workers / 1 PS, threaded backend, seed {CHAOS_SEED:#x},\n\
         {iterations} measured iterations/policy; reference fault spec: 2% drops, blackout p=0.25,\n\
         crash p=0.2, PS-stall p=0.3, windows at 5% of the clean step, onset in the first 30%)\n\n{}\n\
         TAC wall-clock throughput >= baseline under faults: {}/{} models\n\
         priority inversions under enforced TAC with faults (threaded): {}\n\
         chaos fault totals (threaded, TAC): {}\n",
        t.render(),
        tac_wins,
        models.len(),
        total_inversions,
        totals.to_json(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_report_survives_the_reference_spec() {
        let out = super::run(true);
        assert!(out.contains("tac vs base"));
        assert!(out.contains("priority inversions under enforced TAC with faults (threaded): 0"));
        assert!(out.contains("\"retransmits\":"));
    }
}
