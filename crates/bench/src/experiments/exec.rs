//! Backend comparison: the discrete-event simulator vs the in-process
//! multi-threaded runtime (`tictac-exec`), per zoo model, baseline vs TIC
//! vs TAC.
//!
//! For every model the same deployment and the same schedules run on both
//! backends (schedules are backend-invariant by construction), so the
//! comparison isolates *execution*: virtual event time vs real OS threads
//! with prioritized channel queues and wall-clock busy-loop compute. The
//! report checks two reproduction claims on the threaded runtime:
//!
//! * enforced TAC produces **zero priority inversions** on the wire
//!   (sender-side enforcement works under real concurrency), and
//! * TAC's wall-clock throughput beats the baseline's on most models —
//!   the paper's headline effect, reproduced outside the simulator.

use crate::format::Table;
use tictac_core::{
    priority_inversions, ClusterSpec, Mode, Model, RunReport, SchedulerKind, Session, SimConfig,
    ThreadedBackend,
};

/// Schedulers compared; baseline first so speedups read against column 1.
const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Baseline,
    SchedulerKind::Tic,
    SchedulerKind::Tac,
];

fn session(
    model: Model,
    scheduler: SchedulerKind,
    config: &SimConfig,
    iterations: usize,
    threaded: bool,
) -> Session {
    let graph = model.build_with_batch(Mode::Training, model.default_batch());
    let builder = Session::builder(graph)
        .cluster(ClusterSpec::new(4, 1))
        .config(config.clone())
        .scheduler(scheduler)
        .warmup(1)
        .iterations(iterations);
    let builder = if threaded {
        builder.backend(
            ThreadedBackend::from_config(config)
                .expect("bench configs are threaded-supported")
                .with_watchdog(std::time::Duration::from_secs(120)),
        )
    } else {
        builder
    };
    builder.build().expect("zoo model deploys")
}

/// Runs the sweep and renders the comparison table.
///
/// Threaded sessions run **sequentially**: each one already spawns a
/// thread per device and per channel, so fanning sessions out across a
/// pool would oversubscribe the machine and poison the wall-clock numbers.
pub fn run(quick: bool) -> String {
    let models = super::pick_models_zoo(quick);
    let iterations = if quick { 2 } else { 5 };
    let config = SimConfig::cloud_gpu();

    let mut t = Table::new([
        "model",
        "sim base",
        "sim tic",
        "sim tac",
        "wall base",
        "wall tic",
        "wall tac",
        "sim tac vs base",
        "wall tac vs base",
    ]);
    let mut tac_wins = 0usize;
    let mut rank_agreements = 0usize;
    let mut total_inversions = 0usize;

    for &model in &models {
        let mut sim_thr = [0.0f64; 3];
        let mut wall_thr = [0.0f64; 3];
        for (i, &scheduler) in SCHEDULERS.iter().enumerate() {
            let sim_report: RunReport = session(model, scheduler, &config, iterations, false).run();
            sim_thr[i] = sim_report.mean_throughput();

            let threaded = session(model, scheduler, &config, iterations, true);
            let wall_report = threaded.run();
            wall_thr[i] = wall_report.mean_throughput();

            if scheduler == SchedulerKind::Tac {
                // Enforcement claim: under enforced TAC, no transfer may
                // start while a lower-ranked runnable transfer waits.
                let schedule = threaded.schedule().clone();
                let trace = threaded.trace_iteration(0).expect("fault-free iteration");
                let report = priority_inversions(threaded.deployed().graph(), &trace, |op| {
                    schedule.priority(op)
                });
                total_inversions += report.count();
            }
        }
        if wall_thr[2] >= wall_thr[0] {
            tac_wins += 1;
        }
        // Do both backends order the three policies the same way?
        let rank = |thr: &[f64; 3]| {
            let mut idx = [0usize, 1, 2];
            idx.sort_by(|&a, &b| thr[a].total_cmp(&thr[b]));
            idx
        };
        if rank(&sim_thr) == rank(&wall_thr) {
            rank_agreements += 1;
        }
        let pct = |num: f64, den: f64| format!("{:+.1}%", (num / den - 1.0) * 100.0);
        t.row([
            model.name().to_string(),
            format!("{:.0}", sim_thr[0]),
            format!("{:.0}", sim_thr[1]),
            format!("{:.0}", sim_thr[2]),
            format!("{:.0}", wall_thr[0]),
            format!("{:.0}", wall_thr[1]),
            format!("{:.0}", wall_thr[2]),
            pct(sim_thr[2], sim_thr[0]),
            pct(wall_thr[2], wall_thr[0]),
        ]);
    }

    format!(
        "Backend comparison (envG, training, 4 workers / 1 PS, {} measured iterations)\n\
         throughput in samples/s; `sim` = event simulator (virtual time), `wall` = threaded\n\
         runtime (real OS threads, wall-clock); last two columns: TAC speedup over baseline\n\n{}\n\
         TAC wall-clock throughput >= baseline: {}/{} models\n\
         sim/threaded policy-ranking agreement: {}/{} models\n\
         priority inversions under enforced TAC (threaded): {}\n",
        iterations,
        t.render(),
        tac_wins,
        models.len(),
        rank_agreements,
        models.len(),
        total_inversions,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_report_compares_backends() {
        let out = super::run(true);
        assert!(out.contains("wall tac"));
        assert!(out.contains("priority inversions under enforced TAC (threaded): 0"));
    }
}
