//! Fault sweep (robustness extension, not a paper figure): does TicTac's
//! scheduling advantage survive an unreliable substrate?
//!
//! Part (a) sweeps transient transfer-drop rates and compares baseline,
//! TIC and TAC throughput with timeout-driven retransmits recovering every
//! loss. Part (b) injects persistent stragglers under a degraded-mode
//! barrier and reports how much work each policy defers.

use crate::format::Table;
use tictac_core::{
    ClusterSpec, FaultSpec, Mode, Model, RetryPolicy, SchedulerKind, Session, SimConfig,
    SimDuration, ThreadedBackend,
};

const POLICIES: [SchedulerKind; 3] = [
    SchedulerKind::Baseline,
    SchedulerKind::Tic,
    SchedulerKind::Tac,
];

fn session(
    model: Model,
    config: SimConfig,
    scheduler: SchedulerKind,
    iterations: usize,
) -> Session {
    Session::builder(model.build(Mode::Training))
        .cluster(ClusterSpec::new(4, 1))
        .config(config)
        .scheduler(scheduler)
        .warmup(1)
        .iterations(iterations)
        .build()
        .expect("valid cluster")
}

/// Runs the fault sweep; `quick` trims the model and iteration counts.
pub fn run(quick: bool) -> String {
    let (model, iterations) = if quick {
        (Model::InceptionV1, 2)
    } else {
        (Model::InceptionV2, 5)
    };
    // Detection well under the iteration time, exponential backoff, and a
    // budget deep enough that even a 10% drop rate always recovers.
    let retry = RetryPolicy::fixed(SimDuration::from_millis(20), 12).with_backoff(1.5);
    let base = SimConfig::cpu_cluster();

    // (a) Drop-rate sweep: every loss recovered by retransmission.
    let mut sweep = Table::new([
        "drop%",
        "policy",
        "samples/s",
        "vs clean",
        "drops",
        "rexmits",
        "timeouts",
    ]);
    let mut clean_throughput = [0.0f64; POLICIES.len()];
    for &drop in &[0.0, 0.005, 0.02, 0.05, 0.10] {
        for (p, &policy) in POLICIES.iter().enumerate() {
            let spec = FaultSpec::none().with_drop_prob(drop).with_retry(retry);
            let config = base.clone().with_faults(spec);
            let report = session(model, config, policy, iterations)
                .try_run()
                .expect("retry budget covers the sweep");
            let throughput = report.mean_throughput();
            if drop == 0.0 {
                clean_throughput[p] = throughput;
            }
            let faults = report.total_faults();
            sweep.row([
                format!("{:.1}", drop * 100.0),
                policy.to_string(),
                format!("{throughput:.1}"),
                format!("{:.3}", throughput / clean_throughput[p]),
                faults.drops.to_string(),
                faults.retransmits.to_string(),
                faults.timeouts.to_string(),
            ]);
        }
    }

    // (b) Degraded barrier under persistent stragglers: barrier at 1.2x
    // the clean baseline step, stragglers 3x slower.
    let clean = session(model, base.clone(), SchedulerKind::Baseline, iterations).run();
    let barrier = clean.mean_makespan().mul_f64(1.2);
    let mut degraded = Table::new([
        "policy",
        "goodput%",
        "deferred",
        "degraded iters",
        "samples/s",
    ]);
    for &policy in &POLICIES {
        let spec = FaultSpec::none()
            .with_stragglers(0.5, 3.0)
            .with_retry(retry)
            .with_barrier_timeout(barrier);
        let config = base.clone().with_faults(spec);
        let report = session(model, config, policy, iterations)
            .try_run()
            .expect("the barrier absorbs all losses");
        let faults = report.total_faults();
        degraded.row([
            policy.to_string(),
            format!("{:.2}", report.mean_goodput_pct()),
            faults.deferred_ops.to_string(),
            format!("{}/{}", faults.degraded_barriers, report.iterations.len()),
            format!("{:.1}", report.mean_throughput()),
        ]);
    }

    // (c) Cross-backend fault accounting: the same seed and spec on the
    // simulator and on the threaded runtime. Drops/stragglers/PS stalls
    // tally identically on both (the sampler and the keyed drop decisions
    // are backend-agnostic); goodput and retransmission load stay
    // comparable on the wall clock.
    let models = super::pick_models(quick);
    let mut backends = Table::new([
        "model",
        "backend",
        "samples/s",
        "goodput%",
        "drops",
        "rexmits",
        "faults",
        "json",
    ]);
    for &model in models.iter().take(if quick { 2 } else { 4 }) {
        let clean = session(model, base.clone(), SchedulerKind::Tac, 1)
            .run()
            .mean_makespan();
        let spec = FaultSpec::none()
            .with_drop_prob(0.02)
            .with_stragglers(0.3, 2.0)
            .with_ps_stalls(0.3, clean.mul_f64(0.05))
            .with_onset_window(clean.mul_f64(0.3))
            .with_retry(RetryPolicy::fixed(clean.mul_f64(0.02), 60));
        let config = base.clone().with_faults(spec);
        for threaded in [false, true] {
            let graph = model.build(Mode::Training);
            let builder = Session::builder(graph)
                .cluster(ClusterSpec::new(4, 1))
                .config(config.clone())
                .scheduler(SchedulerKind::Tac)
                .warmup(0)
                .iterations(iterations);
            let builder = if threaded {
                builder.backend(
                    ThreadedBackend::from_config(&config)
                        .expect("fault sweep config is threaded-supported")
                        .with_watchdog(std::time::Duration::from_secs(120)),
                )
            } else {
                builder
            };
            let report = builder
                .build()
                .expect("valid cluster")
                .try_run()
                .expect("retry budget covers the sweep");
            let faults = report.total_faults();
            backends.row([
                model.name().to_string(),
                if threaded { "threaded" } else { "sim" }.to_string(),
                format!("{:.1}", report.mean_throughput()),
                format!("{:.2}", report.mean_goodput_pct()),
                faults.drops.to_string(),
                faults.retransmits.to_string(),
                faults.to_string(),
                faults.to_json(),
            ]);
        }
    }

    format!(
        "Fault sweep (envC, {model} training, 4 workers x 1 PS, {iterations} iterations/cell)\n\n\
(a) Transient transfer drops, recovered by timeout + retransmit\n    (detection 20 ms, backoff 1.5x, <=12 retransmits):\n{}\n\
(b) Persistent 3x stragglers (p=0.5/worker) under a degraded barrier\n    at 1.2x the clean baseline step ({barrier}):\n{}\n\
    Goodput below 100% means the barrier released the iteration with\n    the stragglers' updates deferred to the next iteration.\n\n\
(c) Same seed, same spec, both backends (TAC; 2% drops + stragglers +\n    PS stalls; wall-clock runs on the threaded runtime):\n{}\n",
        sweep.render(),
        degraded.render(),
        backends.render(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_sweep_and_degraded_sections() {
        let out = super::run(true);
        assert!(out.contains("drop%"));
        assert!(out.contains("rexmits"));
        assert!(out.contains("goodput%"));
        assert!(out.contains("degraded"));
    }
}
