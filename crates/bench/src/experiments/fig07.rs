//! Figure 7: throughput speedup vs number of workers (PS:W = 1:4, envG).

use super::{mode_label, pick_models};
use crate::format::Table;
use crate::runner::{parallel_map, Point};
use tictac_core::{speedup_pct, Mode, SchedulerKind, SimConfig};

/// Sweeps worker counts {1, 2, 4, 8, 16} with PS:W fixed at 1:4 on envG,
/// reporting TIC's throughput gain over the baseline for training and
/// inference (the paper uses TIC as its envG representative; Appendix B).
pub fn run(quick: bool) -> String {
    let worker_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let models = pick_models(quick);
    let iterations = if quick { 4 } else { 10 };

    let mut points = Vec::new();
    for &workers in worker_counts {
        let ps = (workers / 4).max(1);
        for &model in &models {
            for mode in [Mode::Inference, Mode::Training] {
                for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
                    let mut p =
                        Point::new(model, mode, workers, ps, scheduler, SimConfig::cloud_gpu());
                    p.iterations = iterations;
                    points.push(p);
                }
            }
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    let mut out = String::from(
        "Figure 7: throughput speedup (%) of TIC over baseline vs #workers\n(envG, PS:Workers = 1:4)\n\n",
    );
    for mode in [Mode::Inference, Mode::Training] {
        let mut t = Table::new(
            std::iter::once("model".to_string()).chain(
                worker_counts
                    .iter()
                    .map(|w| format!("{w}w/{}ps", (w / 4).max(1))),
            ),
        );
        for &model in &models {
            let mut cells = vec![model.name().to_string()];
            for &workers in worker_counts {
                let find = |sched: SchedulerKind| {
                    points
                        .iter()
                        .zip(&reports)
                        .find(|(p, _)| {
                            p.model == model
                                && p.mode == mode
                                && p.workers == workers
                                && p.scheduler == sched
                        })
                        .map(|(_, r)| r.mean_throughput())
                        .expect("point was swept")
                };
                let speedup = speedup_pct(find(SchedulerKind::Baseline), find(SchedulerKind::Tic));
                cells.push(format!("{speedup:+.1}%"));
            }
            t.row(cells);
        }
        out.push_str(&format!("task = {}\n{}\n", mode_label(mode), t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_produces_both_tasks() {
        let out = super::run(true);
        assert!(out.contains("task = inference"));
        assert!(out.contains("task = train"));
        assert!(out.contains("alexnet_v2"));
    }
}
