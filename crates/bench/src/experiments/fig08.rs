//! Figure 8: training loss with and without enforced ordering.
//!
//! The paper trains InceptionV3 on ImageNet for 500 iterations with and
//! without TIC and shows coinciding loss curves — scheduling changes
//! delivery *times*, not values. We reproduce the experiment with a real
//! (small) SGD learner: the enforced-order and random-order runs differ
//! only in gradient accumulation order at the PS.

use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::training::{loss_curve, TrainingConfig};

/// Trains the Fig. 8 learner for 500 iterations under both policies and
/// reports the curves plus their maximum divergence.
pub fn run(quick: bool) -> String {
    let iterations = if quick { 100 } else { 500 };
    let cfg = TrainingConfig::default();
    // The two runs are independent full training loops; train them on two
    // threads.
    let mut curves = parallel_map(vec![true, false], |&enforce| {
        loss_curve(cfg, enforce, iterations)
    });
    let unordered = curves.pop().expect("two curves");
    let ordered = curves.pop().expect("two curves");

    let mut t = Table::new(["iteration", "loss (TIC ordering)", "loss (no ordering)"]);
    for i in (0..iterations).step_by((iterations / 20).max(1)) {
        t.row([
            i.to_string(),
            format!("{:.6}", ordered[i]),
            format!("{:.6}", unordered[i]),
        ]);
    }
    let max_diff = ordered
        .iter()
        .zip(&unordered)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    format!(
        "Figure 8: training loss, first {iterations} iterations, with vs without ordering\n\n{}\nmax |loss difference| = {max_diff:.2e} (float round-off only: ordering does not affect convergence)\nfinal loss: ordered {:.4}, unordered {:.4}\n",
        t.render(),
        ordered[iterations - 1],
        unordered[iterations - 1],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn curves_coincide() {
        let out = super::run(true);
        assert!(out.contains("max |loss difference|"));
        // The report should demonstrate a decreasing loss.
        assert!(out.contains("final loss"));
    }
}
