//! Figure 9: throughput speedup vs number of parameter servers
//! (8 workers, envG).

use super::{mode_label, pick_models};
use crate::format::Table;
use crate::runner::{parallel_map, Point};
use tictac_core::{speedup_pct, Mode, SchedulerKind, SimConfig};

/// Sweeps PS counts {1, 2, 4} at 8 workers on envG; reports TIC's gain
/// over the baseline per task.
pub fn run(quick: bool) -> String {
    let ps_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let workers = if quick { 4 } else { 8 };
    let models = pick_models(quick);
    let iterations = if quick { 4 } else { 10 };

    let mut points = Vec::new();
    for &ps in ps_counts {
        for &model in &models {
            for mode in [Mode::Inference, Mode::Training] {
                for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
                    let mut p =
                        Point::new(model, mode, workers, ps, scheduler, SimConfig::cloud_gpu());
                    p.iterations = iterations;
                    points.push(p);
                }
            }
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    let mut out = format!(
        "Figure 9: throughput speedup (%) of TIC over baseline vs #parameter servers\n(envG, {workers} workers)\n\n"
    );
    for mode in [Mode::Inference, Mode::Training] {
        let mut t = Table::new(
            std::iter::once("model".to_string()).chain(ps_counts.iter().map(|s| format!("{s} PS"))),
        );
        for &model in &models {
            let mut cells = vec![model.name().to_string()];
            for &ps in ps_counts {
                let find = |sched: SchedulerKind| {
                    points
                        .iter()
                        .zip(&reports)
                        .find(|(p, _)| {
                            p.model == model
                                && p.mode == mode
                                && p.parameter_servers == ps
                                && p.scheduler == sched
                        })
                        .map(|(_, r)| r.mean_throughput())
                        .expect("point was swept")
                };
                cells.push(format!(
                    "{:+.1}%",
                    speedup_pct(find(SchedulerKind::Baseline), find(SchedulerKind::Tic))
                ));
            }
            t.row(cells);
        }
        out.push_str(&format!("task = {}\n{}\n", mode_label(mode), t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_covers_ps_counts() {
        let out = super::run(true);
        assert!(out.contains("1 PS"));
        assert!(out.contains("2 PS"));
    }
}
