//! Figure 10: throughput speedup vs computational load (batch-size
//! factors ×1/2, ×1, ×2; 4 workers, envG, inference).

use super::pick_models;
use crate::format::Table;
use crate::runner::{parallel_map, Point};
use tictac_core::{speedup_pct, Mode, SchedulerKind, SimConfig};

/// Scales each model's Table-1 batch by {0.5, 1, 2} and reports TIC's
/// inference gain over the baseline.
pub fn run(quick: bool) -> String {
    let factors: &[(f64, &str)] = &[(0.5, "x1/2"), (1.0, "x1"), (2.0, "x2")];
    let models = pick_models(quick);
    let iterations = if quick { 4 } else { 10 };

    let mut points = Vec::new();
    for &(factor, _) in factors {
        for &model in &models {
            for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
                let mut p = Point::new(
                    model,
                    Mode::Inference,
                    4,
                    1,
                    scheduler,
                    SimConfig::cloud_gpu(),
                );
                p.batch = ((model.default_batch() as f64 * factor).round() as usize).max(1);
                p.iterations = iterations;
                points.push(p);
            }
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    let mut t = Table::new(
        std::iter::once("model".to_string()).chain(factors.iter().map(|(_, l)| l.to_string())),
    );
    for &model in &models {
        let mut cells = vec![model.name().to_string()];
        for &(factor, _) in factors {
            let batch = ((model.default_batch() as f64 * factor).round() as usize).max(1);
            let find = |sched: SchedulerKind| {
                points
                    .iter()
                    .zip(&reports)
                    .find(|(p, _)| p.model == model && p.batch == batch && p.scheduler == sched)
                    .map(|(_, r)| r.mean_throughput())
                    .expect("point was swept")
            };
            cells.push(format!(
                "{:+.1}%",
                speedup_pct(find(SchedulerKind::Baseline), find(SchedulerKind::Tic))
            ));
        }
        t.row(cells);
    }
    format!(
        "Figure 10: inference speedup (%) of TIC over baseline vs batch-size factor\n(envG, 4 workers, 1 PS)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_covers_factors() {
        let out = super::run(true);
        assert!(out.contains("x1/2"));
        assert!(out.contains("x2"));
    }
}
