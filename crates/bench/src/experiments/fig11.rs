//! Figure 11: (a) scheduling-efficiency metric and (b) straggler time,
//! baseline vs TIC, against partition size (envG, training + inference).

use crate::format::Table;
use crate::runner::{parallel_map, Point};
use tictac_core::{ClusterSpec, DeployCache, Mode, Model, SchedulerKind, SimConfig};

/// `(ops_per_worker, model, task, [E_base, E_tic], [strag_base, strag_tic])`.
type Row = (usize, String, String, [f64; 2], [f64; 2]);

/// Runs every Table-1 model in both tasks under baseline and TIC and
/// reports the efficiency metric `E` and straggler time (%) against the
/// number of ops per worker (the paper's x-axis).
pub fn run(quick: bool) -> String {
    let models: Vec<Model> = if quick {
        vec![Model::AlexNetV2, Model::ResNet50V1]
    } else {
        Model::ALL.to_vec()
    };
    let iterations = if quick { 4 } else { 10 };

    let mut points = Vec::new();
    for &model in &models {
        for mode in [Mode::Inference, Mode::Training] {
            for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
                let mut p = Point::new(model, mode, 4, 1, scheduler, SimConfig::cloud_gpu());
                p.iterations = iterations;
                points.push(p);
            }
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    // Rows sorted by partition size, like the figure's x-axis.
    let mut rows: Vec<Row> = Vec::new();
    for &model in &models {
        for mode in [Mode::Inference, Mode::Training] {
            let graph = model.build_with_batch(mode, 2);
            let deployed = DeployCache::global()
                .deploy(&graph, &ClusterSpec::new(4, 1))
                .expect("valid cluster");
            let ops = deployed.ops_per_worker();
            let get = |sched: SchedulerKind| {
                points
                    .iter()
                    .zip(&reports)
                    .find(|(p, _)| p.model == model && p.mode == mode && p.scheduler == sched)
                    .map(|(_, r)| (r.mean_efficiency(), r.max_straggler_pct()))
                    .expect("point was swept")
            };
            let (e_base, s_base) = get(SchedulerKind::Baseline);
            let (e_tic, s_tic) = get(SchedulerKind::Tic);
            rows.push((
                ops,
                model.name().to_string(),
                super::mode_label(mode).to_string(),
                [e_base, e_tic],
                [s_base, s_tic],
            ));
        }
    }
    rows.sort_by_key(|r| r.0);

    let mut t = Table::new([
        "ops/worker",
        "model",
        "task",
        "E baseline",
        "E tic",
        "straggler% baseline",
        "straggler% tic",
    ]);
    for (ops, model, task, e, s) in &rows {
        t.row([
            ops.to_string(),
            model.clone(),
            task.clone(),
            format!("{:.3}", e[0]),
            format!("{:.3}", e[1]),
            format!("{:.1}", s[0]),
            format!("{:.1}", s[1]),
        ]);
    }
    let mean = |f: &dyn Fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    format!(
        "Figure 11: scheduling efficiency (a) and straggler time (b), baseline vs TIC\n(envG, 4 workers, 1 PS)\n\n{}\nmeans: E {:.3} -> {:.3}; straggler {:.1}% -> {:.1}%\n",
        t.render(),
        mean(&|r| r.3[0]),
        mean(&|r| r.3[1]),
        mean(&|r| r.4[0]),
        mean(&|r| r.4[1]),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_both_metrics() {
        let out = super::run(true);
        assert!(out.contains("E baseline"));
        assert!(out.contains("straggler%"));
        assert!(out.contains("means:"));
    }
}
