//! Figure 12: (a) regression of normalized step time on scheduling
//! efficiency (R² = 0.98 in the paper), (b) step-time CDFs, baseline vs
//! TAC — 1000 single-iteration runs of Inception v2 on envC.

use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::{
    ols, Cdf, ClusterSpec, Mode, Model, RunOptions, SchedulerKind, Session, SimConfig,
};

/// Runs Inception v2 training `N` times with and without TAC, then fits
/// step time against the efficiency metric and compares CDFs.
///
/// Normalized step time follows the paper's convention (fastest observed
/// step over the step), so 1.0 is best.
pub fn run(quick: bool) -> String {
    let runs = if quick { 60 } else { 1000 };
    let graph = Model::InceptionV2.build(Mode::Training);
    let config = SimConfig::cpu_cluster();

    let collect = |scheduler: SchedulerKind| -> (Vec<f64>, Vec<f64>) {
        let session = Session::builder(graph.clone())
            .cluster(ClusterSpec::new(4, 1))
            .config(config.clone())
            .scheduler(scheduler)
            .warmup(0)
            .iterations(1)
            .build()
            .expect("valid cluster");
        // Each run seeds its own streams from the offset, so the points
        // are independent and fan out across threads.
        parallel_map((0..runs as u64).collect(), |&i| {
            let report = session.run_with(RunOptions::new().offset(i));
            let rec = report.iterations[0];
            (rec.efficiency, rec.makespan.as_secs_f64())
        })
        .into_iter()
        .unzip()
    };

    let (e_base, s_base) = collect(SchedulerKind::Baseline);
    let (e_tac, s_tac) = collect(SchedulerKind::Tac);

    // Normalize step times jointly: fastest step across both policies = 1.
    let fastest = s_base
        .iter()
        .chain(&s_tac)
        .copied()
        .fold(f64::INFINITY, f64::min);
    let norm = |steps: &[f64]| -> Vec<f64> { steps.iter().map(|s| fastest / s).collect() };
    let n_base = norm(&s_base);
    let n_tac = norm(&s_tac);

    // (a) OLS over the pooled samples: E vs normalized step time.
    let xs: Vec<f64> = e_base.iter().chain(&e_tac).copied().collect();
    let ys: Vec<f64> = n_base.iter().chain(&n_tac).copied().collect();
    let fit = ols(&xs, &ys);

    // (b) CDFs.
    let cdf_base = Cdf::from_samples(&n_base);
    let cdf_tac = Cdf::from_samples(&n_tac);

    let mut t = Table::new(["quantile", "baseline", "tac"]);
    for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
        t.row([
            format!("p{:02.0}", q * 100.0),
            format!("{:.4}", cdf_base.quantile(q)),
            format!("{:.4}", cdf_tac.quantile(q)),
        ]);
    }

    format!(
        "Figure 12 (envC, Inception v2 training, {runs} runs each)\n\n\
(a) OLS of normalized step time on scheduling efficiency:\n    slope {:.3}, intercept {:.3}, R^2 = {:.3}  (paper: R^2 = 0.98)\n\n\
(b) CDF of normalized step time (1.0 = fastest observed):\n{}\n\
    95th-percentile step time: baseline {:.5}, TAC {:.5}\n    (paper: 0.63403 and 0.99825)\n\n\
    mean efficiency: baseline {:.3}, TAC {:.3}\n    step-time CV: baseline {:.3}, TAC {:.3}\n",
        fit.slope,
        fit.intercept,
        fit.r2,
        t.render(),
        cdf_base.quantile(0.95),
        cdf_tac.quantile(0.95),
        e_base.iter().sum::<f64>() / e_base.len() as f64,
        e_tac.iter().sum::<f64>() / e_tac.len() as f64,
        tictac_core::Summary::of(&s_base).cv(),
        tictac_core::Summary::of(&s_tac).cv(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_fit_and_cdf() {
        let out = super::run(true);
        assert!(out.contains("R^2"));
        assert!(out.contains("95th-percentile"));
        assert!(out.contains("p50"));
    }
}
