//! Figure 13 (Appendix B): TIC vs TAC throughput gains on envC.

use crate::format::Table;
use crate::runner::{parallel_map, Point};
use tictac_core::{speedup_pct, Mode, Model, SchedulerKind, SimConfig};

/// Compares TIC and TAC against the baseline on envC for the three models
/// of Figure 13 (Inception v2, VGG-16, AlexNet v2), training and
/// inference.
pub fn run(quick: bool) -> String {
    let models = [Model::InceptionV2, Model::Vgg16, Model::AlexNetV2];
    let iterations = if quick { 4 } else { 10 };

    let mut points = Vec::new();
    for &model in &models {
        for mode in [Mode::Inference, Mode::Training] {
            for scheduler in [
                SchedulerKind::Baseline,
                SchedulerKind::Tic,
                SchedulerKind::Tac,
            ] {
                let mut p = Point::new(model, mode, 4, 1, scheduler, SimConfig::cpu_cluster());
                p.iterations = iterations;
                points.push(p);
            }
        }
    }
    let reports = parallel_map(points.clone(), |p| p.run());

    let mut out = String::from(
        "Figure 13: TIC and TAC speedup (%) over baseline (envC, 4 workers, 1 PS)\n\n",
    );
    for mode in [Mode::Inference, Mode::Training] {
        let mut t = Table::new(["model", "TIC", "TAC"]);
        for &model in &models {
            let find = |sched: SchedulerKind| {
                points
                    .iter()
                    .zip(&reports)
                    .find(|(p, _)| p.model == model && p.mode == mode && p.scheduler == sched)
                    .map(|(_, r)| r.mean_throughput())
                    .expect("point was swept")
            };
            let base = find(SchedulerKind::Baseline);
            t.row([
                model.name().to_string(),
                format!("{:+.1}%", speedup_pct(base, find(SchedulerKind::Tic))),
                format!("{:+.1}%", speedup_pct(base, find(SchedulerKind::Tac))),
            ]);
        }
        out.push_str(&format!(
            "task = {}\n{}\n",
            super::mode_label(mode),
            t.render()
        ));
    }
    out.push_str("(paper: TIC performance is comparable to TAC on current models)\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_compares_tic_and_tac() {
        let out = super::run(true);
        assert!(out.contains("TIC"));
        assert!(out.contains("TAC"));
        assert!(out.contains("inception_v2"));
    }
}
