//! One module per table/figure of the paper's evaluation, plus ablations.

mod ablations;
mod allreduce;
mod autotune;
mod chaos;
mod exec;
mod faults;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod observe;
mod orders;
mod scale;
mod sched_cost;
mod spread;
mod table1;

use tictac_core::{Mode, Model};

pub use chaos::{reference_spec, CHAOS_SEED};

/// An experiment entry point: takes a `quick` flag that trims run counts
/// for smoke testing and returns the rendered report.
pub type Runner = fn(bool) -> String;

/// All experiments, in paper order: `(name, runner)`.
pub const ALL: &[(&str, Runner)] = &[
    ("table1", table1::run),
    ("unique-orders", orders::run),
    ("fig7", fig07::run),
    ("fig8", fig08::run),
    ("fig9", fig09::run),
    ("fig10", fig10::run),
    ("fig11", fig11::run),
    ("fig12", fig12::run),
    ("fig13", fig13::run),
    ("sched-cost", sched_cost::run),
    ("scale", scale::run),
    ("ext-allreduce", allreduce::run),
    ("ext-spread", spread::run),
    ("ablation-reorder", ablations::reorder),
    ("ablation-enforcement", ablations::enforcement),
    ("ablation-sharding", ablations::sharding),
    ("faults", faults::run),
    ("chaos", chaos::run),
    ("observe", observe::run),
    ("exec", exec::run),
    ("autotune", autotune::run),
];

/// Experiments with a wall-clock (threaded-backend) variant, selected by
/// `repro --backend threaded`: `(sim_name, wall_name, runner)`. The
/// variant is a distinct experiment — `faults` moves the whole fault
/// model onto real OS threads and becomes the `chaos` report.
pub const THREADED_VARIANTS: &[(&str, &str, Runner)] = &[("faults", "chaos", chaos::run)];

/// Looks up an experiment runner by name.
pub fn find(name: &str) -> Option<Runner> {
    ALL.iter().find(|(n, _)| *n == name).map(|(_, f)| *f)
}

/// Looks up the threaded-backend variant of an experiment, returning the
/// report name it lands under and its runner.
pub fn find_threaded(name: &str) -> Option<(&'static str, Runner)> {
    THREADED_VARIANTS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, out, f)| (*out, *f))
}

/// The nine models shown in Figures 7, 9 and 10 of the paper (all of
/// Table 1 except ResNet-101 v2).
pub const FIGURE_MODELS: [Model; 9] = [
    Model::InceptionV1,
    Model::Vgg19,
    Model::InceptionV2,
    Model::AlexNetV2,
    Model::Vgg16,
    Model::ResNet50V1,
    Model::ResNet50V2,
    Model::InceptionV3,
    Model::ResNet101V1,
];

/// Short human label for a task.
pub(crate) fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Inference => "inference",
        Mode::Training => "train",
    }
}

/// Trims a model list in quick mode.
pub(crate) fn pick_models(quick: bool) -> Vec<Model> {
    if quick {
        vec![Model::AlexNetV2, Model::ResNet50V1]
    } else {
        FIGURE_MODELS.to_vec()
    }
}

/// Like [`pick_models`], but the full run covers the complete 10-model
/// zoo (the backend-comparison experiment exercises every model).
pub(crate) fn pick_models_zoo(quick: bool) -> Vec<Model> {
    if quick {
        vec![Model::AlexNetV2, Model::ResNet50V1]
    } else {
        Model::ALL.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_finds_every_experiment() {
        for (name, _) in ALL {
            assert!(find(name).is_some(), "{name} missing");
        }
        assert!(find("nope").is_none());
        assert_eq!(ALL.len(), 21);
    }

    #[test]
    fn threaded_variants_resolve() {
        let (out, _) = find_threaded("faults").expect("faults has a wall-clock variant");
        assert_eq!(out, "chaos");
        assert!(find_threaded("fig7").is_none());
    }

    #[test]
    fn figure_models_excludes_resnet101_v2() {
        assert!(!FIGURE_MODELS.contains(&Model::ResNet101V2));
        assert_eq!(FIGURE_MODELS.len(), 9);
    }
}
