//! Observability report: predicted vs realized scheduling efficiency,
//! comm/compute overlap and priority inversions per schedule.
//!
//! For every zoo model on a 2-worker / 1-PS cluster with in-order
//! channels (`reorder_error = 0`), each schedule (baseline / TIC / TAC)
//! is simulated twice: once noise-free — the *predicted* efficiency
//! under the cost oracle — and once under the usual runtime noise — the
//! *realized* efficiency of Equation 3 recomputed from the observed
//! trace by `tictac_obs::realized_efficiency`. Priority inversions are
//! counted against the TAC reference ranks: a transfer that started on
//! a channel while a higher-ranked (lower TAC rank) transfer was
//! already runnable there. Under TAC enforcement with in-order channels
//! the count is zero by construction; the unscheduled baseline inverts
//! freely.
//!
//! Everything printed is derived from the deterministic simulator —
//! no wall-clock values — so the report is stable across runs.

use crate::format::Table;
use tictac_core::{
    overlap_report, priority_inversions, realized_efficiency, ClusterSpec, Mode, Model, NoiseModel,
    Registry, RunOptions, SchedulerKind, Session, SimConfig,
};

const KINDS: [SchedulerKind; 3] = [
    SchedulerKind::Baseline,
    SchedulerKind::Tic,
    SchedulerKind::Tac,
];

fn build_session(model: Model, kind: SchedulerKind, cfg: &SimConfig, reg: &Registry) -> Session {
    Session::builder(model.build_with_batch(Mode::Training, 2))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(kind)
        .observe(reg.clone())
        .build()
        .expect("zoo model deploys")
}

/// Runs the observability sweep and renders the report.
pub fn run(quick: bool) -> String {
    let models: Vec<Model> = if quick {
        vec![Model::AlexNetV2, Model::ResNet50V1]
    } else {
        Model::ALL.to_vec()
    };
    // In-order channels isolate scheduling effects: with reorder errors
    // enabled a TAC run could legitimately invert.
    let noisy = SimConfig::cloud_gpu().with_reorder_error(0.0);
    let clean = noisy.clone().with_noise(NoiseModel::none());

    let mut t = Table::new([
        "model",
        "E pred b/t/T",
        "E obs b/t/T",
        "inv vs TAC b/t/T",
        "overlap% b/T",
    ]);
    let mut mean_pred = [0.0f64; 3];
    let mut mean_obs = [0.0f64; 3];
    let mut excerpt = String::new();

    for &model in &models {
        // The TAC reference ranks every row's inversions are judged by.
        let registry = Registry::enabled();
        let tac_session = build_session(model, SchedulerKind::Tac, &noisy, &registry);
        let tac_ranks = tac_session.schedule().clone();

        let mut e_pred = [0.0f64; 3];
        let mut e_obs = [0.0f64; 3];
        let mut inv = [0usize; 3];
        let mut overlap = [0.0f64; 2];
        for (i, &kind) in KINDS.iter().enumerate() {
            let observed = if kind == SchedulerKind::Tac {
                tac_session.trace_iteration(0).expect("fault-free run")
            } else {
                build_session(model, kind, &noisy, &Registry::disabled())
                    .trace_iteration(0)
                    .expect("fault-free run")
            };
            let predicted = build_session(model, kind, &clean, &Registry::disabled())
                .trace_iteration(0)
                .expect("fault-free run");
            // Deployment is deterministic, so op ids line up across
            // sessions and the TAC ranks apply to every trace.
            let graph = tac_session.deployed().graph();
            e_pred[i] = realized_efficiency(graph, &predicted).efficiency;
            e_obs[i] = realized_efficiency(graph, &observed).efficiency;
            inv[i] = priority_inversions(graph, &observed, |op| tac_ranks.priority(op)).count();
            if kind == SchedulerKind::Baseline {
                overlap[0] = 100.0 * overlap_report(graph, &observed).overlap_frac();
            }
            if kind == SchedulerKind::Tac {
                overlap[1] = 100.0 * overlap_report(graph, &observed).overlap_frac();
            }
            mean_pred[i] += e_pred[i];
            mean_obs[i] += e_obs[i];
        }
        t.row([
            model.name().to_string(),
            format!("{:.3}/{:.3}/{:.3}", e_pred[0], e_pred[1], e_pred[2]),
            format!("{:.3}/{:.3}/{:.3}", e_obs[0], e_obs[1], e_obs[2]),
            format!("{}/{}/{}", inv[0], inv[1], inv[2]),
            format!("{:.1}/{:.1}", overlap[0], overlap[1]),
        ]);

        // Deterministic registry excerpt for the last model: scheduler
        // work counters and simulator event counts (never timers — those
        // are wall clock and would make the report unstable). A short
        // measured run fills the makespan histogram so the excerpt also
        // carries the p50/p95/p99 line `tictac runs show` prints from a
        // stored record — makespans are virtual time, so it is stable.
        tac_session.run_with(RunOptions::default().iterations(8));
        let snap = registry.snapshot();
        let makespan_line = snap
            .render()
            .lines()
            .find(|l| l.starts_with("session.makespan_us"))
            .map(str::to_string)
            .unwrap_or_default();
        excerpt = format!(
            "registry excerpt ({}, tac): sched.tac.merges={} sched.tac.rederived={} sim.events={}\n{}",
            model.name(),
            snap.counter("sched.tac.merges").unwrap_or(0),
            snap.counter("sched.tac.rederived").unwrap_or(0),
            snap.counter("sim.events").unwrap_or(0),
            makespan_line,
        );
    }

    let n = models.len() as f64;
    format!(
        "Observability: predicted vs realized efficiency, inversions and overlap\n\
         (2 workers, 1 PS, in-order channels; b/t/T = baseline/TIC/TAC;\n\
         inversions counted against the TAC reference ranks)\n\n{}\n\
         means: E obs {:.3} (baseline) -> {:.3} (tic) -> {:.3} (tac); E pred {:.3} -> {:.3} -> {:.3}\n{}\n",
        t.render(),
        mean_obs[0] / n,
        mean_obs[1] / n,
        mean_obs[2] / n,
        mean_pred[0] / n,
        mean_pred[1] / n,
        mean_pred[2] / n,
        excerpt,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_is_deterministic_and_ordered() {
        let a = super::run(true);
        assert!(a.contains("alexnet_v2"));
        assert!(a.contains("inv vs TAC"));
        assert!(a.contains("registry excerpt"));
        assert!(a.contains("sched.tac.merges="));
        // The measured-run histogram surfaces its percentile summary.
        assert!(a.contains("session.makespan_us = count 8 / mean"));
        assert!(a.contains("/ p50 "));
        assert!(a.contains("/ p99 "));
        // No wall-clock values: two runs render byte-identically.
        assert_eq!(a, super::run(true));
    }
}
