//! The §2.2 observation: without enforcement, the order of received
//! parameters is essentially never repeated.
//!
//! Paper: over 1000 training iterations, ResNet-v2-50 and Inception-v3
//! observed 1000 unique orders; VGG-16 observed 493 (its 32 parameters are
//! few enough for collisions).

use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::{count_unique_recv_orders, ClusterSpec, DeployCache, Mode, Model, SimConfig};

/// Counts unique parameter-arrival orders at one worker over N baseline
/// iterations.
pub fn run(quick: bool) -> String {
    let runs = if quick { 50 } else { 1000 };
    let paper: Vec<(Model, usize)> = vec![
        (Model::ResNet50V2, 1000),
        (Model::InceptionV3, 1000),
        (Model::Vgg16, 493),
    ];
    let mut t = Table::new([
        "model",
        "#params",
        "runs",
        "unique orders",
        "paper (1000 runs)",
    ]);
    // Each model simulates `runs` full iterations; fan the three out.
    let rows = parallel_map(paper, |&(model, paper_unique)| {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = DeployCache::global()
            .deploy(&graph, &ClusterSpec::new(1, 1))
            .expect("valid cluster");
        let unique = count_unique_recv_orders(&deployed, &SimConfig::cloud_gpu(), runs);
        [
            model.name().to_string(),
            graph.params().len().to_string(),
            runs.to_string(),
            unique.to_string(),
            paper_unique.to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    format!(
        "Unique parameter-arrival orders under the baseline (S2.2)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_reports_three_models() {
        let out = super::run(true);
        assert!(out.contains("resnet_v2_50"));
        assert!(out.contains("inception_v3"));
        assert!(out.contains("vgg_16"));
    }
}
