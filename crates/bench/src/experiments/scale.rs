//! Scale sweep: 16 → 1024 workers on every zoo model.
//!
//! The paper's measurements stop at tens of workers; this sweep pushes
//! the same deployments to four-digit clusters, which only became
//! tractable with the partitioned parallel engine. For each `(model, W)`
//! shape it reports:
//!
//! * TIC and TAC makespans under enforced schedules (schedules are
//!   computed once on the reference worker and replicated, so scheduling
//!   cost stays independent of `W`),
//! * the realized scheduling efficiency `E` (Eq. 3) and speedup
//!   potential `S` (Eq. 4) of the TAC run, and
//! * the engine the driver auto-selected plus its simulation wall time.
//!
//! A second section pins the point of the parallel engine: the same
//! simulation forced through the sequential oracle vs the partitioned
//! engine, wall clock against wall clock.
//!
//! PS shards scale as `W / 32`, clamped to the model's parameter count
//! (`deploy` rejects shards that would host nothing).

use crate::format::Table;
use std::time::Instant;
use tictac_core::{
    deploy, realized_efficiency, selected_engine, simulate, tac, tic, ClusterSpec, CostOracle,
    DeployedModel, EngineChoice, Mode, Model, Platform, Schedule, SimConfig, SimDuration,
};

/// Worker counts of the full sweep.
const SIZES: [usize; 4] = [16, 64, 256, 1024];

/// The parallel-safe deterministic sweep config: the driver picks the
/// engine from the worker count alone (threshold = the crate default).
fn sweep_config() -> SimConfig {
    SimConfig::deterministic(Platform::cloud_gpu()).with_disorder_window(Some(1))
}

/// PS shards for `workers`: one per 32 workers, at least one, never more
/// than the model has parameters.
fn shards_for(workers: usize, params: usize) -> usize {
    (workers / 32).clamp(1, params)
}

fn deploy_at(model: Model, workers: usize) -> DeployedModel {
    let graph = model.build_with_batch(Mode::Training, 2);
    let shards = shards_for(workers, graph.params().len());
    deploy(&graph, &ClusterSpec::new(workers, shards)).expect("zoo model deploys at scale")
}

/// Runs one simulation, returning `(makespan, wall time)`.
fn timed_sim(
    d: &DeployedModel,
    schedule: &Schedule,
    config: &SimConfig,
) -> (SimDuration, f64, tictac_core::RealizedEfficiency) {
    let started = Instant::now();
    let trace = simulate(d.graph(), schedule, config, 0);
    let wall = started.elapsed().as_secs_f64();
    let eff = realized_efficiency(d.graph(), &trace);
    (trace.makespan(), wall, eff)
}

pub fn run(quick: bool) -> String {
    let sizes: &[usize] = if quick { &SIZES[..2] } else { &SIZES };
    let models = super::pick_models_zoo(quick);
    let config = sweep_config();
    let oracle = CostOracle::new(Platform::cloud_gpu());

    let mut t = Table::new([
        "model",
        "W",
        "S",
        "engine",
        "tic makespan",
        "tac makespan",
        "tac vs tic",
        "E (tac)",
        "S_pot (tac)",
        "sim wall",
    ]);
    for &model in &models {
        for &w in sizes {
            let d = deploy_at(model, w);
            let g = d.graph();
            let w0 = d.workers()[0];
            let tic_s = d.replicate_schedule(&tic(g, w0));
            let tac_s = d.replicate_schedule(&tac(g, w0, &oracle));
            let engine = match selected_engine(g, &config) {
                EngineChoice::Sequential => "seq",
                EngineChoice::Parallel => "par",
            };
            let (tic_make, tic_wall, _) = timed_sim(&d, &tic_s, &config);
            let (tac_make, tac_wall, eff) = timed_sim(&d, &tac_s, &config);
            t.row([
                model.name().to_string(),
                w.to_string(),
                d.parameter_servers().len().to_string(),
                engine.to_string(),
                format!("{tic_make}"),
                format!("{tac_make}"),
                format!(
                    "{:+.1}%",
                    (tac_make.as_secs_f64() / tic_make.as_secs_f64() - 1.0) * 100.0
                ),
                format!("{:.3}", eff.efficiency),
                format!("{:.3}", eff.speedup_potential),
                format!("{:.0}ms", (tic_wall + tac_wall) * 1e3),
            ]);
        }
    }

    // Engine head-to-head: the same TAC simulation through the pinned
    // sequential oracle vs the partitioned engine.
    let race_w = if quick { 64 } else { 256 };
    let race_models: &[Model] = if quick {
        &[Model::AlexNetV2]
    } else {
        &[Model::AlexNetV2, Model::InceptionV3]
    };
    let mut race = Table::new(["model", "W", "seq wall", "par wall", "speedup"]);
    for &model in race_models {
        let d = deploy_at(model, race_w);
        let schedule = d.replicate_schedule(&tac(d.graph(), d.workers()[0], &oracle));
        let par_cfg = config.clone();
        let seq_cfg = config.clone().with_par_threshold(None);
        assert_eq!(selected_engine(d.graph(), &par_cfg), EngineChoice::Parallel);
        let (par_make, par_wall, _) = timed_sim(&d, &schedule, &par_cfg);
        let (seq_make, seq_wall, _) = timed_sim(&d, &schedule, &seq_cfg);
        assert_eq!(par_make, seq_make, "engines must agree on the makespan");
        race.row([
            model.name().to_string(),
            race_w.to_string(),
            format!("{:.0}ms", seq_wall * 1e3),
            format!("{:.0}ms", par_wall * 1e3),
            format!("{:.2}x", seq_wall / par_wall),
        ]);
    }

    format!(
        "Scale sweep (envG, training, batch 2, deterministic timing, enforced schedules)\n\
         S = PS shards (W/32, clamped to the model's parameter count); engine = what the\n\
         driver auto-selected at the default threshold; E / S_pot = Eq. 3/4 on the TAC run\n\n{}\n\
         Engine head-to-head at {race_w} workers (same TAC simulation, wall clock):\n\n{}\n",
        t.render(),
        race.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_both_engines() {
        let out = run(true);
        // 16 workers sits below the default threshold, 64 above it.
        assert!(out.contains("seq"), "{out}");
        assert!(out.contains("par"), "{out}");
        assert!(out.contains("speedup"), "{out}");
    }

    #[test]
    fn shards_never_exceed_params() {
        assert_eq!(shards_for(16, 100), 1);
        assert_eq!(shards_for(1024, 16), 16);
        assert_eq!(shards_for(1024, 100), 32);
    }
}
