//! Offline scheduling cost: the paper reports ~10 s to compute the
//! heuristics (before execution, hence zero runtime overhead).

use crate::format::Table;
use std::time::Instant;
use tictac_core::{
    estimate_profile, no_ordering, simulate, tac, tic, ClusterSpec, DeployCache, Mode, Model,
    SimConfig,
};

/// Times TIC and TAC schedule computation per model (training graphs,
/// 4 workers, 1 PS).
///
/// Deliberately serial: the whole point of each row is an undisturbed
/// wall-clock measurement, and concurrent rows would contend for cores
/// and inflate each other's timings.
pub fn run(quick: bool) -> String {
    let models: Vec<Model> = if quick {
        vec![Model::AlexNetV2, Model::ResNet50V1]
    } else {
        Model::ALL.to_vec()
    };
    let config = SimConfig::cloud_gpu();

    let mut t = Table::new(["model", "recvs", "ops/worker", "TIC (ms)", "TAC (ms)"]);
    for &model in &models {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = DeployCache::global()
            .deploy(&graph, &ClusterSpec::new(4, 1))
            .expect("valid cluster");
        let g = deployed.graph();
        let w0 = deployed.workers()[0];

        let start = Instant::now();
        let tic_schedule = tic(g, w0);
        let tic_ms = start.elapsed().as_secs_f64() * 1e3;

        // TAC includes its required profiling input (5 traced iterations).
        let unordered = no_ordering(g);
        let traces: Vec<_> = (0..5)
            .map(|i| simulate(g, &unordered, &config, i))
            .collect();
        let profile = estimate_profile(&traces);
        let start = Instant::now();
        let tac_schedule = tac(g, w0, &profile);
        let tac_ms = start.elapsed().as_secs_f64() * 1e3;

        assert!(!tic_schedule.is_unordered() && !tac_schedule.is_unordered());
        t.row([
            model.name().to_string(),
            graph.params().len().to_string(),
            deployed.ops_per_worker().to_string(),
            format!("{tic_ms:.2}"),
            format!("{tac_ms:.2}"),
        ]);
    }
    format!(
        "Offline scheduling cost (computed once before execution; paper: ~10 s)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reports_costs_for_models() {
        let out = super::run(true);
        assert!(out.contains("TIC (ms)"));
        assert!(out.contains("alexnet_v2"));
    }
}
