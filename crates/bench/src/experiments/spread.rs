//! Extension: empirical best-to-worst schedule spread vs the theoretical
//! speedup potential `S` of Equation 4.
//!
//! `S = (U − L) / L` bounds the gain of a perfect schedule over the worst
//! one while ignoring DAG dependencies (§3.2: "may not be achievable in
//! practice"). Racing TAC against an adversarial reverse-TAC order
//! measures how much of that headroom real dependencies leave on the
//! table.

use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::{
    estimate_profile, no_ordering, simulate, tac, worst_case, ClusterSpec, Mode, Model, NoiseModel,
    SchedulerKind, Session, SimConfig,
};

/// Measures the empirical spread (worst-order makespan over best-order
/// makespan − 1) per model and compares it to the potential `S`.
pub fn run(quick: bool) -> String {
    let models: Vec<Model> = if quick {
        vec![Model::AlexNetV2, Model::ResNet50V1]
    } else {
        vec![
            Model::AlexNetV2,
            Model::InceptionV1,
            Model::InceptionV3,
            Model::ResNet50V1,
            Model::Vgg16,
        ]
    };
    let base_config = SimConfig::cloud_gpu()
        .with_noise(NoiseModel::none())
        .with_reorder_error(0.0);

    let mut t = Table::new([
        "model",
        "S (eq. 4)",
        "empirical spread",
        "achieved fraction",
    ]);
    // One independent measurement pipeline per model.
    let rows = parallel_map(models, |&model| {
        let graph = model.build(Mode::Inference);
        let deployed = tictac_core::DeployCache::global()
            .deploy(&graph, &ClusterSpec::new(4, 1))
            .expect("valid cluster");
        let g = deployed.graph();
        let w0 = deployed.workers()[0];

        // Profile, then race the best (TAC) against the adversary.
        let unordered = no_ordering(g);
        let traces: Vec<_> = (0..5)
            .map(|i| simulate(g, &unordered, &base_config, 1000 + i))
            .collect();
        let profile = estimate_profile(&traces);
        let best_schedule = deployed.replicate_schedule(&tac(g, w0, &profile));
        let worst_schedule = deployed.replicate_schedule(&worst_case(g, w0, &profile));
        let best = simulate(g, &best_schedule, &base_config, 0).makespan();
        let worst = simulate(g, &worst_schedule, &base_config, 0).makespan();
        let spread = worst.as_secs_f64() / best.as_secs_f64() - 1.0;

        // The theoretical potential from a measured iteration.
        let report = Session::builder(graph.clone())
            .cluster(ClusterSpec::new(4, 1))
            .config(base_config.clone())
            .scheduler(SchedulerKind::Tac)
            .warmup(0)
            .iterations(1)
            .build()
            .expect("valid cluster")
            .run();
        let s = report.iterations[0].speedup_potential;

        [
            model.name().to_string(),
            format!("{s:.3}"),
            format!("{spread:.3}"),
            format!("{:.0}%", 100.0 * spread / s.max(1e-9)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    format!(
        "Extension: empirical schedule spread vs speedup potential S (Eq. 4)\n(envG inference, 4 workers, noise off; adversary = reverse TAC)\n\n{}\n\
Although Eq. 4 ignores DAG dependencies (\"may not be achievable in\npractice\", S3.2), inference worker partitions achieve essentially 100% of\nit: recv ops are all roots, so the adversary can fully serialize the two\nresources while TAC fully overlaps them — S is a tight bound here.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn spread_is_positive_and_bounded_by_potential() {
        let out = super::run(true);
        assert!(out.contains("S (eq. 4)"));
        assert!(out.contains("alexnet_v2"));
    }
}
