//! Table 1: DNN model characteristics — paper values vs this
//! reproduction's generators.

use crate::format::Table;
use crate::runner::parallel_map;
use tictac_core::{Mode, Model};

/// Regenerates Table 1, printing the paper's numbers next to ours.
///
/// Parameter counts match exactly; sizes within a few percent; op counts
/// are semantic layer ops rather than TensorFlow kernels, hence smaller
/// (see DESIGN.md §3).
pub fn run(_quick: bool) -> String {
    let mut t = Table::new([
        "model",
        "#par",
        "#par(paper)",
        "MiB",
        "MiB(paper)",
        "ops inf/train",
        "ops inf/train(paper)",
        "batch",
    ]);
    // Each row builds two full graphs; fan the models out and append the
    // finished rows in zoo order.
    let rows = parallel_map(Model::ALL.to_vec(), |&model| {
        let paper = model.paper_row();
        let inf = model.build_with_batch(Mode::Inference, 1);
        let tr = model.build_with_batch(Mode::Training, 1);
        let s = inf.stats();
        [
            model.name().to_string(),
            s.params.to_string(),
            paper.params.to_string(),
            format!("{:.2}", s.param_mib()),
            format!("{:.2}", paper.param_mib),
            format!("{}/{}", s.ops, tr.stats().ops),
            format!("{}/{}", paper.ops_inference, paper.ops_training),
            paper.batch_size.to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    format!(
        "Table 1: model characteristics (ours vs paper)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_all_ten_models() {
        let out = super::run(true);
        for name in ["alexnet_v2", "resnet_v2_101", "vgg_19", "inception_v3"] {
            assert!(out.contains(name), "{name} missing from Table 1");
        }
        assert_eq!(out.lines().count(), 14); // title + blank + header + sep + 10
    }
}
