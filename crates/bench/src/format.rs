//! Plain-text table rendering for experiment reports.

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// An ASCII horizontal bar scaled to `max` over `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["model", "speedup"]);
        t.row(["resnet", "+20.1%"]);
        t.row(["vgg_16_long_name", "+3%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("vgg_16_long_name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
