//! Benchmark harness regenerating every table and figure of the TicTac
//! paper's evaluation (§6) on the simulated substrate.
//!
//! The `repro` binary drives [`experiments`]; each experiment returns a
//! plain-text report with the same rows/series as the corresponding table
//! or figure. See `EXPERIMENTS.md` at the repository root for
//! paper-vs-measured comparisons.

pub mod experiments;
pub mod format;
pub mod micro;
pub mod runner;
