//! In-repo micro-benchmark harness (the `bench` binary).
//!
//! The vendored `criterion` is a no-op API stub, so wall-clock numbers
//! come from this module instead: each phase of the per-model pipeline
//! (graph build → deploy → TIC → TAC → naive TAC → simulate) is timed
//! with explicit warmup and a median-of-N estimator, and the report is
//! written as `BENCH_results.json` at the repository root.
//!
//! The workspace vendors no JSON crate, so the report format is
//! hand-rolled: [`render_json`] emits it and [`parse_json`] /
//! [`validate_report`] read it back for `bench --check` and for the
//! comparison against the checked-in `BENCH_baseline.json`. The JSON
//! value type, parser, string quoting *and writer* all live in
//! `tictac-obs` (shared with the Perfetto exporter/validator and the
//! run store) and are re-exported here — this module builds a [`Json`]
//! tree and prints it with [`render_json_pretty`] rather than keeping a
//! second hand-rolled writer.

use std::hint::black_box;

use tictac_core::{
    auto_tune_with, deploy, no_ordering, run_iteration, simulate, tac_order, tac_order_naive, tic,
    ClusterSpec, CommConfig, CostOracle, DeployCache, ExecOptions, Mode, Model, Platform, Registry,
    SchedulerKind, SimConfig, TuneOptions,
};
pub use tictac_obs::{parse_json, quote, render_json_pretty, Json};

/// Which engine executes the timed iteration phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchBackend {
    /// The discrete-event simulator (default; `simulate_ms` measures the
    /// cost of *simulating* one iteration).
    #[default]
    Sim,
    /// The multi-threaded runtime (`simulate_ms` measures the wall-clock
    /// time of really *executing* one iteration on OS threads).
    Threaded,
}

impl BenchBackend {
    /// Parses a `--backend` argument value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(BenchBackend::Sim),
            "threaded" => Some(BenchBackend::Threaded),
            _ => None,
        }
    }

    /// The name stamped into reports (the `--backend` spelling).
    pub fn name(self) -> &'static str {
        match self {
            BenchBackend::Sim => "sim",
            BenchBackend::Threaded => "threaded",
        }
    }
}

/// Schema tag stamped into every report; `--check` rejects anything else.
pub const SCHEMA: &str = "tictac-bench/v1";

/// What to measure and how hard to measure it.
#[derive(Debug, Clone)]
pub struct BenchPlan {
    /// Trimmed model set and sample counts for CI smoke runs.
    pub quick: bool,
    /// Untimed iterations before sampling begins.
    pub warmup: usize,
    /// Timed iterations; the median is reported.
    pub samples: usize,
    /// Models to push through the pipeline.
    pub models: Vec<Model>,
    /// Engine executing the timed iteration phase.
    pub backend: BenchBackend,
}

impl BenchPlan {
    /// The default plan: every zoo model at median-of-5, or two small
    /// models at median-of-3 in quick mode.
    pub fn new(quick: bool) -> Self {
        if quick {
            Self {
                quick,
                warmup: 1,
                samples: 3,
                models: vec![Model::AlexNetV2, Model::InceptionV1],
                backend: BenchBackend::Sim,
            }
        } else {
            Self {
                quick,
                warmup: 1,
                samples: 5,
                models: Model::ALL.to_vec(),
                backend: BenchBackend::Sim,
            }
        }
    }

    /// Selects the engine for the timed iteration phase.
    #[must_use]
    pub fn with_backend(mut self, backend: BenchBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// Median wall-clock milliseconds of `f` over `samples` runs after
/// `warmup` untimed runs.
pub fn median_ms<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Median milliseconds per pipeline phase for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTimings {
    /// Building the layered model graph.
    pub build_ms: f64,
    /// Deploying it onto the cluster (partition + send/recv insertion).
    pub deploy_ms: f64,
    /// Deploying with both communication passes on (4 MiB partitions,
    /// 64 KiB fusion) — the marginal cost of the granularity lowering.
    pub deploy_part_ms: f64,
    /// A warm [`DeployCache`] hit serving the deployment *and* the TAC
    /// schedule — the per-session setup cost of a cached sweep.
    pub deploy_cached_ms: f64,
    /// The TIC scheduler.
    pub tic_ms: f64,
    /// The incremental TAC scheduler (Algorithm 3 fast path).
    pub tac_ms: f64,
    /// The naive per-round recompute reference.
    pub tac_naive_ms: f64,
    /// A cold quick-ladder comm-granularity search
    /// ([`auto_tune_with`] with [`TuneOptions::quick`], fresh cache).
    pub tune_ms: f64,
    /// One unordered simulated iteration.
    pub simulate_ms: f64,
    /// One iteration through the partitioned parallel engine on a
    /// 256-worker deployment (shards clamped to the parameter count).
    pub simulate_par_ms: f64,
}

impl PhaseTimings {
    /// Phase names in report order, paired with their values.
    pub fn pairs(&self) -> [(&'static str, f64); 10] {
        [
            ("build_ms", self.build_ms),
            ("deploy_ms", self.deploy_ms),
            ("deploy_part_ms", self.deploy_part_ms),
            ("deploy_cached_ms", self.deploy_cached_ms),
            ("tic_ms", self.tic_ms),
            ("tac_ms", self.tac_ms),
            ("tac_naive_ms", self.tac_naive_ms),
            ("tune_ms", self.tune_ms),
            ("simulate_ms", self.simulate_ms),
            ("simulate_par_ms", self.simulate_par_ms),
        ]
    }
}

/// One model's row of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTiming {
    /// Zoo model name.
    pub model: String,
    /// Median per-phase milliseconds.
    pub phases: PhaseTimings,
    /// `tac_naive_ms / tac_ms` — the incremental fast-path win.
    pub tac_speedup: f64,
}

/// The full report backing `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether the trimmed quick plan produced this report.
    pub quick: bool,
    /// Warmup iterations per phase.
    pub warmup: usize,
    /// Timed iterations per phase.
    pub samples: usize,
    /// Engine behind the iteration phase (`"sim"` or `"threaded"`) —
    /// regression gates only compare like against like.
    pub backend: String,
    /// Per-model timings.
    pub models: Vec<ModelTiming>,
}

/// Times every pipeline phase for one model.
///
/// The setup mirrors the scheduling-cost experiment: training graphs at
/// batch 2 on a 4-worker / 1-PS cluster, costs from the envG oracle.
pub fn bench_model(model: Model, plan: &BenchPlan) -> ModelTiming {
    let batch = 2;
    let cluster = ClusterSpec::new(4, 1);
    let oracle = CostOracle::new(Platform::cloud_gpu());

    let build_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(model.build_with_batch(Mode::Training, batch));
    });
    let graph = model.build_with_batch(Mode::Training, batch);

    let deploy_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(deploy(&graph, &cluster).expect("zoo model deploys"));
    });
    let deployed = deploy(&graph, &cluster).expect("zoo model deploys");
    let g = deployed.graph();
    let w0 = deployed.workers()[0];

    let comm = CommConfig {
        partition_bytes: Some(4 << 20),
        fusion_bytes: Some(64 << 10),
    };
    let part_cluster = cluster.clone().with_comm(comm);
    let deploy_part_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(deploy(&graph, &part_cluster).expect("zoo model deploys"));
    });

    // A warm cache serving deploy + TAC schedule together: the marginal
    // setup cost of every session after a sweep's first.
    let config = SimConfig::cloud_gpu();
    let registry = Registry::disabled();
    let cache = DeployCache::new();
    cache
        .schedule(&graph, &cluster, SchedulerKind::Tac, &config, &registry)
        .expect("zoo model deploys");
    let deploy_cached_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(
            cache
                .schedule(&graph, &cluster, SchedulerKind::Tac, &config, &registry)
                .expect("zoo model deploys"),
        );
    });

    let tic_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(tic(g, w0));
    });
    let tac_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(tac_order(g, w0, &oracle));
    });
    let tac_naive_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(tac_order_naive(g, w0, &oracle));
    });

    // A cold end-to-end granularity search: every sample starts from a
    // fresh cache, so this times real deploy/schedule/simulate work
    // rather than memo hits.
    let tune_ms = median_ms(plan.warmup, plan.samples, || {
        let fresh = DeployCache::new();
        black_box(
            auto_tune_with(
                &fresh,
                &graph,
                &cluster,
                SchedulerKind::Tac,
                &config,
                &TuneOptions::quick(),
            )
            .expect("zoo model tunes"),
        );
    });

    let schedule = no_ordering(g);
    let simulate_ms = match plan.backend {
        BenchBackend::Sim => median_ms(plan.warmup, plan.samples, || {
            black_box(simulate(g, &schedule, &config, 0));
        }),
        BenchBackend::Threaded => {
            let opts = ExecOptions::new(config.platform.clone());
            median_ms(plan.warmup, plan.samples, || {
                black_box(run_iteration(g, &schedule, &opts).expect("iteration completes"));
            })
        }
    };

    // The partitioned engine at scale: the same model on 256 workers
    // (shards at W/32, clamped to the parameter count) under the
    // parallel-safe deterministic config, which sits above the default
    // threshold and so exercises the `par` path end to end.
    let scale_workers = 256;
    let shards = (scale_workers / 32).clamp(1, graph.params().len());
    let scaled =
        deploy(&graph, &ClusterSpec::new(scale_workers, shards)).expect("zoo model deploys");
    let sg = scaled.graph();
    let par_config = SimConfig::deterministic(Platform::cloud_gpu()).with_disorder_window(Some(1));
    let par_schedule = no_ordering(sg);
    let simulate_par_ms = median_ms(plan.warmup, plan.samples, || {
        black_box(simulate(sg, &par_schedule, &par_config, 0));
    });

    ModelTiming {
        model: model.name().to_string(),
        phases: PhaseTimings {
            build_ms,
            deploy_ms,
            deploy_part_ms,
            deploy_cached_ms,
            tic_ms,
            tac_ms,
            tac_naive_ms,
            tune_ms,
            simulate_ms,
            simulate_par_ms,
        },
        tac_speedup: tac_naive_ms / tac_ms.max(1e-9),
    }
}

/// Runs the whole plan, reporting progress through `progress`.
pub fn run_plan(plan: &BenchPlan, mut progress: impl FnMut(&ModelTiming)) -> BenchReport {
    let mut models = Vec::with_capacity(plan.models.len());
    for &model in &plan.models {
        let timing = bench_model(model, plan);
        progress(&timing);
        models.push(timing);
    }
    BenchReport {
        quick: plan.quick,
        warmup: plan.warmup,
        samples: plan.samples,
        backend: plan.backend.name().to_string(),
        models,
    }
}

/// The report as a [`Json`] tree (the shape `BENCH_results.json` pins).
fn report_json(report: &BenchReport) -> Json {
    let models = report
        .models
        .iter()
        .map(|m| {
            let phases = m
                .phases
                .pairs()
                .iter()
                .map(|&(name, value)| (name.to_string(), Json::Num(value)))
                .collect();
            Json::Obj(vec![
                ("model".into(), Json::Str(m.model.clone())),
                ("phases".into(), Json::Obj(phases)),
                ("tac_speedup".into(), Json::Num(m.tac_speedup)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("quick".into(), Json::Bool(report.quick)),
        ("warmup".into(), Json::Num(report.warmup as f64)),
        ("samples".into(), Json::Num(report.samples as f64)),
        ("backend".into(), Json::Str(report.backend.clone())),
        ("models".into(), Json::Arr(models)),
    ])
}

/// Renders the report as pretty-printed JSON (trailing newline included).
pub fn render_json(report: &BenchReport) -> String {
    let mut out = render_json_pretty(&report_json(report));
    out.push('\n');
    out
}

/// Converts the report into run-store records: one [`Payload::Bench`]
/// record per model row, carrying the per-phase medians. Identity fields
/// mirror [`bench_model`]'s fixed setup (4 workers, 1 PS); the seed slot
/// carries the sample count since wall-clock timing has no RNG seed.
///
/// [`Payload::Bench`]: tictac_store::Payload::Bench
pub fn report_records(report: &BenchReport) -> Vec<tictac_store::RunRecord> {
    report
        .models
        .iter()
        .map(|m| tictac_store::RunRecord {
            id: String::new(),
            time_ms: 0,
            source: "bench".into(),
            workload: m.model.clone(),
            model_fp: 0,
            workers: 4,
            ps: 1,
            scheduler: "-".into(),
            backend: report.backend.clone(),
            seed: report.samples as u64,
            fault_fp: 0,
            scenario_fp: 0,
            comm_fp: 0,
            provenance: std::env::var("TICTAC_PROVENANCE").unwrap_or_default(),
            payload: tictac_store::Payload::Bench(tictac_store::BenchEvidence {
                phases: m
                    .phases
                    .pairs()
                    .iter()
                    .map(|&(name, value)| tictac_store::PhaseMean {
                        name: name.to_string(),
                        mean_ms: value,
                    })
                    .collect(),
            }),
        })
        .collect()
}

fn field_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric field {key:?}"))?;
    if v < 0.0 {
        return Err(format!("{ctx}: field {key:?} is negative"));
    }
    Ok(v)
}

/// Parses and validates a `BENCH_results.json` document, reconstructing
/// the report. Any structural problem is an `Err` — this is what
/// `bench --check` exits nonzero on.
pub fn validate_report(src: &str) -> Result<BenchReport, String> {
    let doc = parse_json(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?} is not {SCHEMA:?}"));
    }
    let quick = doc
        .get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing bool field \"quick\"")?;
    let warmup = field_f64(&doc, "warmup", "report")? as usize;
    let samples = field_f64(&doc, "samples", "report")? as usize;
    // Reports predating the backend stamp were always simulator runs.
    let backend = doc
        .get("backend")
        .and_then(Json::as_str)
        .unwrap_or("sim")
        .to_string();
    let entries = doc
        .get("models")
        .and_then(Json::as_array)
        .ok_or("missing array field \"models\"")?;
    if entries.is_empty() {
        return Err("\"models\" is empty".into());
    }
    let mut models = Vec::with_capacity(entries.len());
    for entry in entries {
        let name = entry
            .get("model")
            .and_then(Json::as_str)
            .ok_or("model entry: missing string field \"model\"")?;
        let phases = entry
            .get("phases")
            .ok_or_else(|| format!("{name}: missing \"phases\""))?;
        let phases = PhaseTimings {
            build_ms: field_f64(phases, "build_ms", name)?,
            deploy_ms: field_f64(phases, "deploy_ms", name)?,
            deploy_part_ms: field_f64(phases, "deploy_part_ms", name)?,
            deploy_cached_ms: field_f64(phases, "deploy_cached_ms", name)?,
            tic_ms: field_f64(phases, "tic_ms", name)?,
            tac_ms: field_f64(phases, "tac_ms", name)?,
            tac_naive_ms: field_f64(phases, "tac_naive_ms", name)?,
            tune_ms: field_f64(phases, "tune_ms", name)?,
            simulate_ms: field_f64(phases, "simulate_ms", name)?,
            simulate_par_ms: field_f64(phases, "simulate_par_ms", name)?,
        };
        let tac_speedup = field_f64(entry, "tac_speedup", name)?;
        models.push(ModelTiming {
            model: name.to_string(),
            phases,
            tac_speedup,
        });
    }
    Ok(BenchReport {
        quick,
        warmup,
        samples,
        backend,
        models,
    })
}

/// Reconstructs a comparable [`BenchReport`] from a run-store corpus:
/// the *latest* [`Payload::Bench`] record of every workload becomes one
/// model row (`tac_speedup` is re-derived from the phase medians). This
/// is what lets `bench --baseline runs.jsonl` gate against accumulated
/// history instead of a single pinned `BENCH_baseline.json`.
///
/// # Errors
///
/// Fails when the corpus holds no bench records, mixes backends, or a
/// record is missing one of the pinned phase names.
///
/// [`Payload::Bench`]: tictac_store::Payload::Bench
pub fn report_from_records(records: &[tictac_store::RunRecord]) -> Result<BenchReport, String> {
    let mut latest: Vec<&tictac_store::RunRecord> = Vec::new();
    for r in records {
        if !matches!(r.payload, tictac_store::Payload::Bench(_)) {
            continue;
        }
        match latest.iter_mut().find(|l| l.workload == r.workload) {
            Some(slot) => *slot = r,
            None => latest.push(r),
        }
    }
    if latest.is_empty() {
        return Err("corpus holds no bench records".into());
    }
    let backend = latest[0].backend.clone();
    if latest.iter().any(|r| r.backend != backend) {
        return Err("corpus mixes bench backends; filter before comparing".into());
    }
    let samples = latest[0].seed as usize;
    let mut models = Vec::with_capacity(latest.len());
    for r in &latest {
        let tictac_store::Payload::Bench(b) = &r.payload else {
            unreachable!("non-bench records were filtered above");
        };
        let phase = |name: &str| {
            b.phases
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.mean_ms)
                .ok_or_else(|| format!("{}: bench record lacks phase {name:?}", r.workload))
        };
        let phases = PhaseTimings {
            build_ms: phase("build_ms")?,
            deploy_ms: phase("deploy_ms")?,
            deploy_part_ms: phase("deploy_part_ms")?,
            deploy_cached_ms: phase("deploy_cached_ms")?,
            tic_ms: phase("tic_ms")?,
            tac_ms: phase("tac_ms")?,
            tac_naive_ms: phase("tac_naive_ms")?,
            tune_ms: phase("tune_ms")?,
            simulate_ms: phase("simulate_ms")?,
            simulate_par_ms: phase("simulate_par_ms")?,
        };
        models.push(ModelTiming {
            model: r.workload.clone(),
            tac_speedup: phases.tac_naive_ms / phases.tac_ms.max(1e-9),
            phases,
        });
    }
    Ok(BenchReport {
        quick: samples <= 3,
        warmup: 1,
        samples,
        backend,
        models,
    })
}

/// One phase that got slower than the baseline allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Zoo model name.
    pub model: String,
    /// Phase field name (e.g. `"deploy_ms"`).
    pub phase: &'static str,
    /// This run's median, milliseconds.
    pub now: f64,
    /// The baseline's median, milliseconds.
    pub then: f64,
}

/// Compares `report` against `baseline` and returns every phase that
/// regressed beyond `threshold` (e.g. `0.25` = 25% slower).
///
/// Absolute growth below `floor_ms` is never flagged — timer jitter
/// dominates ratios down there. Backends must match: a threaded run's
/// wall-clock iteration phase is not comparable to the simulator's, so
/// mismatched reports yield no regressions (the caller should say so).
pub fn regressions(
    report: &BenchReport,
    baseline: &BenchReport,
    threshold: f64,
    floor_ms: f64,
) -> Vec<Regression> {
    let mut found = Vec::new();
    if report.backend != baseline.backend {
        return found;
    }
    for m in &report.models {
        let Some(base) = baseline.models.iter().find(|b| b.model == m.model) else {
            continue;
        };
        for ((phase, now), (_, then)) in m.phases.pairs().into_iter().zip(base.phases.pairs()) {
            if now > then * (1.0 + threshold) && now - then > floor_ms {
                found.push(Regression {
                    model: m.model.clone(),
                    phase,
                    now,
                    then,
                });
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            quick: true,
            warmup: 1,
            samples: 3,
            backend: "sim".into(),
            models: vec![ModelTiming {
                model: "alexnet_v2".into(),
                phases: PhaseTimings {
                    build_ms: 0.5,
                    deploy_ms: 1.25,
                    deploy_part_ms: 1.5,
                    deploy_cached_ms: 0.01,
                    tic_ms: 0.125,
                    tac_ms: 2.0,
                    tac_naive_ms: 12.0,
                    tune_ms: 30.0,
                    simulate_ms: 8.5,
                    simulate_par_ms: 40.0,
                },
                tac_speedup: 6.0,
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let json = render_json(&report);
        let back = validate_report(&json).expect("rendered report validates");
        assert_eq!(back, report);
    }

    #[test]
    fn report_records_carry_phases_and_round_trip() {
        let records = report_records(&sample_report());
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.source, "bench");
        assert_eq!(r.workload, "alexnet_v2");
        assert_eq!((r.workers, r.ps), (4, 1));
        let tictac_store::Payload::Bench(b) = &r.payload else {
            panic!("expected bench payload");
        };
        assert_eq!(b.phases.len(), 10);
        assert_eq!(b.phases[0].name, "build_ms");
        assert_eq!(b.phases[0].mean_ms, 0.5);
        let line = r.encode();
        assert_eq!(
            tictac_store::RunRecord::decode(&line).unwrap().encode(),
            line
        );
        // The corpus reconstructs a report equal to the original (the
        // sample's tac_speedup is exactly naive/tac, as report_from_records
        // re-derives it).
        assert_eq!(report_from_records(&records).unwrap(), sample_report());
        assert!(report_from_records(&[]).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a\n\"bA": [1, -2.5e1, true, null, {}]}"#).unwrap();
        let arr = v.get("a\n\"bA").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{} trailing",
            "{\"schema\": \"wrong\"}",
            "{\"schema\": \"tictac-bench/v1\", \"quick\": true, \"warmup\": 1, \"samples\": 1, \"models\": []}",
        ] {
            assert!(validate_report(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn regression_gate_flags_only_real_slowdowns() {
        let baseline = sample_report();
        let mut report = sample_report();
        assert_eq!(regressions(&report, &baseline, 0.25, 0.1), vec![]);

        // 26% slower on a >0.1ms phase: flagged.
        report.models[0].phases.simulate_ms = 8.5 * 1.26;
        // 10x slower but only +0.09ms absolute: jitter, not flagged.
        report.models[0].phases.deploy_cached_ms = 0.1;
        let found = regressions(&report, &baseline, 0.25, 0.1);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].phase, "simulate_ms");
        assert_eq!(found[0].model, "alexnet_v2");

        // A looser quick-mode threshold lets the same slowdown pass.
        assert_eq!(regressions(&report, &baseline, 2.0, 0.25), vec![]);

        // Mismatched backends never compare.
        report.backend = "threaded".into();
        assert_eq!(regressions(&report, &baseline, 0.25, 0.1), vec![]);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0usize;
        let ms = median_ms(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert!(ms >= 0.0);
    }

    #[test]
    fn quick_bench_times_one_small_model() {
        let plan = BenchPlan {
            quick: true,
            warmup: 0,
            samples: 1,
            models: vec![Model::AlexNetV2],
            backend: BenchBackend::Sim,
        };
        let timing = bench_model(Model::AlexNetV2, &plan);
        assert_eq!(timing.model, "alexnet_v2");
        for (name, value) in timing.phases.pairs() {
            assert!(value > 0.0, "phase {name} reported no time");
        }
        assert!(timing.tac_speedup > 0.0);
    }

    #[test]
    fn threaded_backend_times_a_real_iteration() {
        let plan = BenchPlan {
            quick: true,
            warmup: 0,
            samples: 1,
            models: vec![Model::AlexNetV2],
            backend: BenchBackend::Threaded,
        };
        let timing = bench_model(Model::AlexNetV2, &plan);
        assert!(timing.phases.simulate_ms > 0.0);
        assert_eq!(
            BenchBackend::parse("threaded"),
            Some(BenchBackend::Threaded)
        );
        assert_eq!(BenchBackend::parse("sim"), Some(BenchBackend::Sim));
        assert_eq!(BenchBackend::parse("nope"), None);
    }
}
