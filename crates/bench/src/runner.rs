//! Session execution helpers shared by all experiments.

use parking_lot::Mutex;
use tictac_core::{
    ClusterSpec, Mode, Model, RunReport, SchedulerKind, Session, Sharding, SimConfig,
};

/// One point of a sweep: a model, a task, a cluster shape and a policy.
#[derive(Debug, Clone)]
pub struct Point {
    /// The network under test.
    pub model: Model,
    /// Training or inference.
    pub mode: Mode,
    /// Per-worker batch (0 = Table 1 default).
    pub batch: usize,
    /// Number of workers.
    pub workers: usize,
    /// Number of parameter servers.
    pub parameter_servers: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Simulation configuration.
    pub config: SimConfig,
    /// Measured iterations (the paper uses 10).
    pub iterations: usize,
    /// Parameter sharding policy.
    pub sharding: Sharding,
}

impl Point {
    /// A point with the paper's defaults (Table-1 batch, 10 iterations,
    /// 2 warm-up iterations).
    pub fn new(
        model: Model,
        mode: Mode,
        workers: usize,
        parameter_servers: usize,
        scheduler: SchedulerKind,
        config: SimConfig,
    ) -> Self {
        Self {
            model,
            mode,
            batch: 0,
            workers,
            parameter_servers,
            scheduler,
            config,
            iterations: 10,
            sharding: Sharding::SizeBalanced,
        }
    }

    /// Runs the point end to end.
    pub fn run(&self) -> RunReport {
        let batch = if self.batch == 0 {
            self.model.default_batch()
        } else {
            self.batch
        };
        let graph = self.model.build_with_batch(self.mode, batch);
        Session::builder(graph)
            .cluster(
                ClusterSpec::new(self.workers, self.parameter_servers).with_sharding(self.sharding),
            )
            .config(self.config.clone())
            .scheduler(self.scheduler)
            .iterations(self.iterations)
            .build()
            .expect("valid sweep point")
            .run()
    }
}

/// Maps `f` over `items` on up to `available_parallelism` worker threads
/// (override with the `TICTAC_THREADS` env var; `1` forces serial),
/// preserving input order in the output.
///
/// Results are identical at any thread count: every point seeds its own
/// random streams, and outputs are written back by input index.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::env::var("TICTAC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new(items.iter().map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn point_runs_a_small_model() {
        let mut p = Point::new(
            Model::AlexNetV2,
            Mode::Inference,
            1,
            1,
            SchedulerKind::Tic,
            SimConfig::cloud_gpu(),
        );
        p.batch = 8;
        p.iterations = 2;
        let report = p.run();
        assert_eq!(report.iterations.len(), 2);
        assert!(report.mean_throughput() > 0.0);
    }
}
