//! Ring all-reduce deployment — the decentralized aggregation pattern the
//! paper names as future work (§7, cf. Horovod).
//!
//! Gradients are aggregated without parameter servers: parameters live on
//! the workers, and after the backward pass the gradient tensor — split
//! into `W` buckets — travels a ring of peer channels in two phases:
//! *reduce-scatter* (`W−1` steps; each worker ends up owning the full sum
//! of one bucket) and *all-gather* (`W−1` steps; the summed buckets
//! propagate to everyone). Each directed link carries `2(W−1)/W` of the
//! gradient bytes per iteration.
//!
//! TicTac's transfer scheduling does not apply here (the ring order is
//! fixed by the algorithm); the deployment exists so the PS-with-TicTac
//! configuration can be compared against the collective alternative.

use crate::DeployError;
use tictac_graph::{
    ChannelId, Cost, DeviceId, Graph, GraphBuilder, ModelGraph, NameId, OpId, OpKind, OpName,
    ParamId, RingStage,
};

/// A model deployed with ring all-reduce gradient aggregation.
#[derive(Debug, Clone)]
pub struct AllReduceDeployment {
    graph: Graph,
    workers: Vec<DeviceId>,
    /// `ring[w]` carries traffic from worker `w` to worker `(w+1) % W`.
    ring: Vec<ChannelId>,
    buckets: Vec<Vec<ParamId>>,
}

impl AllReduceDeployment {
    /// The partitioned graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Worker device ids, in ring order.
    pub fn workers(&self) -> &[DeviceId] {
        &self.workers
    }

    /// The directed ring links (`ring[w]`: worker `w` → worker `w+1`).
    pub fn ring(&self) -> &[ChannelId] {
        &self.ring
    }

    /// The gradient buckets (parameter ids per bucket, in production
    /// order).
    pub fn buckets(&self) -> &[Vec<ParamId>] {
        &self.buckets
    }
}

/// Deploys `model` with ring all-reduce across `workers` workers.
///
/// # Errors
///
/// Returns [`DeployError::EmptyCluster`] if `workers < 2`,
/// [`DeployError::NoParameters`] for a parameterless model, and
/// [`DeployError::NotTraining`] for an inference graph (all-reduce
/// aggregates gradients; there is nothing to aggregate in inference).
pub fn deploy_all_reduce(
    model: &ModelGraph,
    workers: usize,
) -> Result<AllReduceDeployment, DeployError> {
    if workers < 2 {
        return Err(DeployError::EmptyCluster);
    }
    if model.params().is_empty() {
        return Err(DeployError::NoParameters);
    }
    if !model.is_training() {
        return Err(DeployError::NotTraining);
    }

    let mut b = GraphBuilder::with_capacity(workers * (model.ops().len() + 6 * workers));
    let devices: Vec<DeviceId> = (0..workers)
        .map(|w| b.add_worker(format!("worker/{w}")))
        .collect();
    let ring: Vec<ChannelId> = (0..workers)
        .map(|w| b.add_peer_channel(devices[w], devices[(w + 1) % workers]))
        .collect();

    // Parameters are resident on every worker; the graph carries one
    // nominal copy for size bookkeeping.
    let params: Vec<ParamId> = model
        .params()
        .iter()
        .map(|p| b.add_param(p.name(), p.bytes()))
        .collect();

    // Buckets: parameters in gradient-production order, split into
    // byte-balanced contiguous groups so early buckets can start reducing
    // while the backward pass continues (Horovod-style tensor fusion).
    let n_buckets = workers.min(8).min(params.len());
    let buckets = bucketize(model, &params, n_buckets);
    let bucket_bytes: Vec<u64> = buckets
        .iter()
        .map(|bucket| {
            bucket
                .iter()
                .map(|p| model.params()[p.index()].bytes())
                .sum()
        })
        .collect();
    let bucket_elems: Vec<u64> = bucket_bytes.iter().map(|b| b / 4).collect();

    // Replica compute ops (no parameter recvs: weights are local).
    // Model-op names are interned once; ring ops below use structured
    // names, so the whole lowering allocates no per-op name strings.
    let mop_names: Vec<NameId> = model.ops().iter().map(|o| b.intern(o.name())).collect();
    let mut producer_of: Vec<Vec<Option<OpId>>> = vec![vec![None; params.len()]; workers];
    let mut deps: Vec<OpId> = Vec::new();
    for (w, &device) in devices.iter().enumerate() {
        let mut op_map: Vec<OpId> = Vec::with_capacity(model.ops().len());
        for (mi, mop) in model.ops().iter().enumerate() {
            deps.clear();
            deps.extend(mop.preds().iter().map(|p| op_map[p.index()]));
            let id = b.add_op_named(
                OpName::WorkerOp {
                    worker: w as u32,
                    op: mop_names[mi],
                },
                device,
                OpKind::Compute,
                Cost::flops(mop.flops()),
                &deps,
            );
            for g in mop.produces_grads() {
                producer_of[w][g.index()] = Some(id);
            }
            op_map.push(id);
        }
    }

    // One pipelined ring per bucket: the bucket is cut into W rank-indexed
    // sub-chunks; reduce-scatter runs W−1 steps (at step s, worker w sends
    // sub-chunk (w − s) mod W to w+1 and folds what it receives), then
    // all-gather propagates the fully-reduced sub-chunks in W−1 more
    // steps. Each bucket's ring starts as soon as that bucket's gradients
    // are produced, overlapping communication with the ongoing backward
    // pass; rings of different buckets serialize naturally on the shared
    // links.
    let modw = |x: isize| -> usize { x.rem_euclid(workers as isize) as usize };
    let mut final_owned: Vec<Vec<OpId>> = vec![Vec::new(); workers];
    for (bi, bucket) in buckets.iter().enumerate() {
        let tag = bucket[0];
        let chunk_bytes = (bucket_bytes[bi] / workers as u64).max(1);
        let chunk_elems = (bucket_elems[bi] / workers as u64).max(1);

        // `owned[w][c]`: ops after which worker w holds its current
        // partial (then full) sum of sub-chunk c.
        let mut owned: Vec<Vec<Vec<OpId>>> = (0..workers)
            .map(|w| {
                let mut ready: Vec<OpId> = bucket
                    .iter()
                    .filter_map(|p| producer_of[w][p.index()])
                    .collect();
                ready.sort_unstable();
                ready.dedup();
                vec![ready; workers]
            })
            .collect();

        let ring_name = |worker: usize, step: usize, chunk: usize, stage: RingStage| OpName::Ring {
            worker: worker as u16,
            bucket: bi as u16,
            step: step as u16,
            chunk: chunk as u16,
            stage,
        };
        for s in 0..workers - 1 {
            let mut next = owned.clone();
            for w in 0..workers {
                let c = modw(w as isize - s as isize);
                let dst = (w + 1) % workers;
                let send = b.add_op_named(
                    ring_name(w, s, c, RingStage::RsSend),
                    devices[w],
                    OpKind::send(tag, ring[w]),
                    Cost::bytes(chunk_bytes),
                    &owned[w][c],
                );
                let recv = b.add_op_named(
                    ring_name(dst, s, c, RingStage::RsRecv),
                    devices[dst],
                    OpKind::recv(tag, ring[w]),
                    Cost::bytes(chunk_bytes),
                    &[send],
                );
                deps.clear();
                deps.extend_from_slice(&owned[dst][c]);
                deps.push(recv);
                let reduce = b.add_op_named(
                    ring_name(dst, s, c, RingStage::RsReduce),
                    devices[dst],
                    OpKind::Compute,
                    Cost::flops(chunk_elems as f64),
                    &deps,
                );
                next[dst][c] = vec![reduce];
            }
            owned = next;
        }

        for s in 0..workers - 1 {
            let mut next = owned.clone();
            for w in 0..workers {
                let c = modw(w as isize + 1 - s as isize);
                let dst = (w + 1) % workers;
                let send = b.add_op_named(
                    ring_name(w, s, c, RingStage::AgSend),
                    devices[w],
                    OpKind::send(tag, ring[w]),
                    Cost::bytes(chunk_bytes),
                    &owned[w][c],
                );
                let recv = b.add_op_named(
                    ring_name(dst, s, c, RingStage::AgRecv),
                    devices[dst],
                    OpKind::recv(tag, ring[w]),
                    Cost::bytes(chunk_bytes),
                    &[send],
                );
                next[dst][c] = vec![recv];
            }
            owned = next;
        }

        for w in 0..workers {
            for chunk in &owned[w] {
                final_owned[w].extend(chunk.iter().copied());
            }
        }
    }

    // Local SGD apply per worker, once all sub-chunks are available.
    let total_elems: u64 = bucket_elems.iter().sum();
    let apply = b.intern("apply_updates");
    for (w, &device) in devices.iter().enumerate() {
        b.add_op_named(
            OpName::WorkerOp {
                worker: w as u32,
                op: apply,
            },
            device,
            OpKind::Compute,
            Cost::flops(2.0 * total_elems as f64),
            &final_owned[w],
        );
    }

    let graph = b.build()?;
    Ok(AllReduceDeployment {
        graph,
        workers: devices,
        ring,
        buckets,
    })
}

/// Splits parameters into `n` byte-balanced contiguous buckets in
/// gradient-production order.
fn bucketize(model: &ModelGraph, params: &[ParamId], n: usize) -> Vec<Vec<ParamId>> {
    // Production order: position of each param's first gradient producer.
    let mut order: Vec<(usize, ParamId)> = params
        .iter()
        .map(|&p| {
            let pos = model
                .ops()
                .iter()
                .position(|op| op.produces_grads().contains(&p))
                .unwrap_or(usize::MAX);
            (pos, p)
        })
        .collect();
    order.sort_unstable();

    let total: u64 = model.params().iter().map(|p| p.bytes()).sum();
    let target = total / n as u64 + 1;
    let mut buckets: Vec<Vec<ParamId>> = vec![Vec::new(); n];
    let mut bucket = 0usize;
    let mut acc = 0u64;
    for (_, p) in order {
        if acc >= target && bucket + 1 < n {
            bucket += 1;
            acc = 0;
        }
        buckets[bucket].push(p);
        acc += model.params()[p.index()].bytes();
    }
    // Guarantee non-empty buckets (tiny models): steal from the fullest.
    for i in 0..n {
        if buckets[i].is_empty() {
            let donor = (0..n)
                .max_by_key(|&j| buckets[j].len())
                .expect("n > 0 buckets");
            assert!(
                buckets[donor].len() > 1,
                "model has fewer params than workers"
            );
            let moved = buckets[donor].pop().expect("donor non-empty");
            buckets[i].push(moved);
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{tiny_mlp, Mode, Model};

    #[test]
    fn ring_has_one_channel_per_worker() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy_all_reduce(&model, 4).unwrap();
        assert_eq!(d.workers().len(), 4);
        assert_eq!(d.ring().len(), 4);
        assert!(d.graph().channels().iter().all(|c| c.is_peer()));
        assert!(d.graph().check().is_ok());
    }

    #[test]
    fn links_carry_the_textbook_byte_volume() {
        // ResNet-50's parameters are balanced enough for per-link checks.
        let model = Model::ResNet50V1.build_with_batch(Mode::Training, 2);
        let w = 4usize;
        let d = deploy_all_reduce(&model, w).unwrap();
        let g = d.graph();
        let total: u64 = model.params().iter().map(|p| p.bytes()).sum();

        let link_bytes = |link| -> u64 {
            g.ops()
                .filter(|(_, op)| op.kind().is_recv() && op.kind().channel() == Some(link))
                .map(|(_, op)| op.cost().bytes)
                .sum()
        };
        // Globally: 2(W-1) * total bytes on the wire (up to sub-chunk
        // rounding).
        let global: u64 = d.ring().iter().map(|&l| link_bytes(l)).sum();
        let expected_global = 2 * (w as u64 - 1) * total;
        let rel = (global as f64 - expected_global as f64).abs() / expected_global as f64;
        assert!(rel < 0.01, "global bytes {global} vs {expected_global}");
        // Per link: every link carries every sub-chunk stream, so each
        // gets 2(W-1)/W of the bytes almost exactly.
        for &link in d.ring() {
            let expected = total * 2 * (w as u64 - 1) / w as u64;
            let rel = (link_bytes(link) as f64 - expected as f64).abs() / expected as f64;
            assert!(
                rel < 0.01,
                "link bytes {} vs expected {expected}",
                link_bytes(link)
            );
        }
    }

    #[test]
    fn buckets_cover_all_params_exactly_once() {
        let model = Model::ResNet50V1.build_with_batch(Mode::Training, 2);
        let d = deploy_all_reduce(&model, 8).unwrap();
        let mut seen: Vec<ParamId> = d.buckets().iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<ParamId> = (0..model.params().len()).map(ParamId::from_index).collect();
        assert_eq!(seen, expected);
        assert!(d.buckets().iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn rejects_single_worker_and_inference() {
        let train = tiny_mlp(Mode::Training, 2);
        assert_eq!(
            deploy_all_reduce(&train, 1).unwrap_err(),
            DeployError::EmptyCluster
        );
        let inf = tiny_mlp(Mode::Inference, 2);
        assert_eq!(
            deploy_all_reduce(&inf, 2).unwrap_err(),
            DeployError::NotTraining
        );
    }

    #[test]
    fn two_worker_ring_builds() {
        let model = tiny_mlp(Mode::Training, 2);
        let d = deploy_all_reduce(&model, 2).unwrap();
        // Per bucket: reduce-scatter 1 step x 2 workers + all-gather the
        // same; tiny_mlp at 2 workers uses 2 buckets.
        let sends = d.graph().count_ops(|op| op.kind().is_send());
        assert_eq!(sends, 8);
        assert_eq!(d.buckets().len(), 2);
        assert!(tictac_graph::topo::is_acyclic(d.graph()));
    }
}
