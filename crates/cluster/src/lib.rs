//! Model-Replica + Parameter-Server deployment.
//!
//! Lowers a device-agnostic [`ModelGraph`] onto a partitioned [`Graph`]
//! spanning `W` workers and `S` parameter servers, reproducing the
//! structure the paper describes (§2.2):
//!
//! * every worker holds an identical replica of the computational DAG,
//!   with one `recv` root per parameter it reads and (in training) one
//!   `send` leaf per gradient it produces;
//! * the PS DAG has five ops per parameter: `read`, `send` (one per
//!   worker), `recv` (one per worker), `aggregate` and `update`;
//! * parameters are sharded across parameter servers; each worker–PS pair
//!   communicates over one channel.
//!
//! # Example
//!
//! ```
//! use tictac_cluster::{deploy, ClusterSpec};
//! use tictac_models::{tiny_mlp, Mode};
//!
//! let model = tiny_mlp(Mode::Training, 8);
//! let deployed = deploy(&model, &ClusterSpec::new(4, 2))?;
//! assert_eq!(deployed.workers().len(), 4);
//! assert_eq!(deployed.parameter_servers().len(), 2);
//! // Each worker receives every parameter.
//! assert_eq!(deployed.recv_op(0, tictac_graph::ParamId::from_index(0)).is_some(), true);
//! # Ok::<(), tictac_cluster::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allreduce;
mod sharding;

pub use allreduce::{deploy_all_reduce, AllReduceDeployment};
pub use sharding::Sharding;

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tictac_graph::{
    ChannelId, CommRole, Cost, DeviceId, Graph, GraphBuilder, GraphError, ModelGraph, NameId, OpId,
    OpKind, OpName, ParamId,
};
use tictac_sched::Schedule;

/// Communication granularity of a deployment: the partition/fusion
/// lowering passes' thresholds.
///
/// The default (`None`/`None`) disables both passes and reproduces the
/// historical per-parameter lowering byte for byte. `partition_bytes`
/// splits any parameter transfer larger than the threshold into chained
/// chunks that shard independently across parameter servers;
/// `fusion_bytes` coalesces consecutive same-shard transfers smaller than
/// the threshold into one fused transfer, saving the per-transfer latency
/// floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommConfig {
    /// Split parameters larger than this many bytes (`None` = never).
    #[serde(default)]
    pub partition_bytes: Option<u64>,
    /// Fuse same-shard transfers smaller than this many bytes
    /// (`None` = never).
    #[serde(default)]
    pub fusion_bytes: Option<u64>,
}

impl CommConfig {
    /// Both passes disabled — the identity configuration.
    pub fn is_default(&self) -> bool {
        self.partition_bytes.is_none() && self.fusion_bytes.is_none()
    }

    /// Sets the partition threshold.
    pub fn with_partition_bytes(mut self, bytes: Option<u64>) -> Self {
        self.partition_bytes = bytes;
        self
    }

    /// Sets the fusion threshold.
    pub fn with_fusion_bytes(mut self, bytes: Option<u64>) -> Self {
        self.fusion_bytes = bytes;
        self
    }

    /// Stable identity hash for cache keys and run records.
    ///
    /// Returns `0` for the default configuration so records and keys
    /// written before the comm passes existed keep their exact identity.
    pub fn fingerprint(&self) -> u64 {
        if self.is_default() {
            return 0;
        }
        // FNV-1a over a tagged little-endian encoding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(b"tictac-comm/v1");
        eat(&self
            .partition_bytes
            .map_or(0, |b| b.wrapping_add(1))
            .to_le_bytes());
        eat(&self
            .fusion_bytes
            .map_or(0, |b| b.wrapping_add(1))
            .to_le_bytes());
        h
    }

    /// Rejects degenerate thresholds (a zero threshold is always a
    /// mistake: it would split or fuse nothing meaningfully).
    fn validate(&self) -> Result<(), DeployError> {
        if self.partition_bytes == Some(0) {
            return Err(DeployError::InvalidCommConfig {
                field: "partition_bytes",
            });
        }
        if self.fusion_bytes == Some(0) {
            return Err(DeployError::InvalidCommConfig {
                field: "fusion_bytes",
            });
        }
        Ok(())
    }
}

/// Shape of the deployment, optionally heterogeneous.
///
/// Construct with [`ClusterSpec::new`] / [`ClusterSpec::try_new`] for a
/// homogeneous cluster, or [`ClusterSpec::builder`] to attach per-device
/// speed factors and per-link bandwidth factors. Direct struct-literal
/// construction is no longer possible outside this crate — the
/// heterogeneity tables are private so every spec passes validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of workers (model replicas).
    pub workers: usize,
    /// Number of parameter servers.
    pub parameter_servers: usize,
    /// How parameters are assigned to parameter servers.
    pub sharding: Sharding,
    /// Relative worker speed factors (empty = uniform; else one per
    /// worker). `2.0` = twice the platform reference throughput.
    worker_speeds: Vec<f64>,
    /// Relative PS speed factors (empty = uniform; else one per server).
    ps_speeds: Vec<f64>,
    /// Relative link bandwidth factors: empty = uniform, length `W` = one
    /// factor per worker uplink (applied to all of that worker's
    /// channels), length `W × S` = full row-major worker×PS matrix.
    link_bandwidths: Vec<f64>,
    /// Communication granularity (partition/fusion thresholds). Default =
    /// both passes off.
    #[serde(default)]
    comm: CommConfig,
}

impl PartialEq for ClusterSpec {
    fn eq(&self, other: &Self) -> bool {
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        self.workers == other.workers
            && self.parameter_servers == other.parameter_servers
            && self.sharding == other.sharding
            && bits(&self.worker_speeds) == bits(&other.worker_speeds)
            && bits(&self.ps_speeds) == bits(&other.ps_speeds)
            && bits(&self.link_bandwidths) == bits(&other.link_bandwidths)
            && self.comm == other.comm
    }
}

impl Eq for ClusterSpec {}

impl std::hash::Hash for ClusterSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.workers.hash(state);
        self.parameter_servers.hash(state);
        self.sharding.hash(state);
        for v in [&self.worker_speeds, &self.ps_speeds, &self.link_bandwidths] {
            v.len().hash(state);
            for f in v {
                f.to_bits().hash(state);
            }
        }
        // Only a non-default comm config contributes, so specs built
        // before the comm passes existed hash to their pre-pass values
        // (the DeployCache identity guarantee).
        if !self.comm.is_default() {
            self.comm.hash(state);
        }
    }
}

impl ClusterSpec {
    /// A spec with the default size-balanced sharding.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape (zero workers or zero parameter
    /// servers); use [`ClusterSpec::try_new`] to handle that as a value.
    pub fn new(workers: usize, parameter_servers: usize) -> Self {
        match Self::try_new(workers, parameter_servers) {
            Ok(spec) => spec,
            Err(e) => panic!("invalid cluster shape: {e}"),
        }
    }

    /// A spec with the default size-balanced sharding, rejecting
    /// degenerate shapes with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterSpecError::ZeroWorkers`] or
    /// [`ClusterSpecError::ZeroParameterServers`]. Shapes that only turn
    /// out degenerate against a concrete model — more PS shards than the
    /// model has parameters — are rejected by [`deploy`] instead
    /// ([`DeployError::ShardsExceedParams`]).
    pub fn try_new(workers: usize, parameter_servers: usize) -> Result<Self, ClusterSpecError> {
        if workers == 0 {
            return Err(ClusterSpecError::ZeroWorkers);
        }
        if parameter_servers == 0 {
            return Err(ClusterSpecError::ZeroParameterServers);
        }
        Ok(Self {
            workers,
            parameter_servers,
            sharding: Sharding::SizeBalanced,
            worker_speeds: Vec::new(),
            ps_speeds: Vec::new(),
            link_bandwidths: Vec::new(),
            comm: CommConfig::default(),
        })
    }

    /// A builder with typed setters for shape, sharding, device speeds
    /// and link bandwidths; [`ClusterSpecBuilder::build`] runs the same
    /// validation as [`ClusterSpec::try_new`] plus heterogeneity checks.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// Overrides the sharding policy.
    pub fn with_sharding(mut self, sharding: Sharding) -> Self {
        self.sharding = sharding;
        self
    }

    /// Overrides the communication granularity (partition/fusion passes).
    pub fn with_comm(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }

    /// The communication granularity this spec deploys with.
    pub fn comm(&self) -> CommConfig {
        self.comm
    }

    /// Whether every device and link runs at the platform reference rate.
    pub fn is_uniform(&self) -> bool {
        self.worker_speeds.is_empty()
            && self.ps_speeds.is_empty()
            && self.link_bandwidths.is_empty()
    }

    /// The relative speed factor of worker `w` (`1.0` = reference).
    pub fn worker_speed(&self, w: usize) -> f64 {
        self.worker_speeds.get(w).copied().unwrap_or(1.0)
    }

    /// The relative speed factor of PS shard `s` (`1.0` = reference).
    pub fn ps_speed(&self, s: usize) -> f64 {
        self.ps_speeds.get(s).copied().unwrap_or(1.0)
    }

    /// The relative bandwidth factor of the link between worker `w` and
    /// PS shard `s` (`1.0` = reference).
    pub fn link_bandwidth(&self, w: usize, s: usize) -> f64 {
        if self.link_bandwidths.is_empty() {
            1.0
        } else if self.link_bandwidths.len() == self.workers {
            // One factor per worker uplink.
            self.link_bandwidths[w]
        } else {
            // Full row-major worker × PS matrix.
            self.link_bandwidths[w * self.parameter_servers + s]
        }
    }
}

/// Builder for [`ClusterSpec`] — the only way to construct a
/// heterogeneous spec.
///
/// ```
/// use tictac_cluster::ClusterSpec;
///
/// let spec = ClusterSpec::builder()
///     .workers(3)
///     .parameter_servers(1)
///     .worker_speeds(vec![1.0, 1.0, 0.5]) // one straggler at half speed
///     .build()?;
/// assert!(!spec.is_uniform());
/// assert_eq!(spec.worker_speed(2), 0.5);
/// # Ok::<(), tictac_cluster::ClusterSpecError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterSpecBuilder {
    workers: usize,
    parameter_servers: usize,
    sharding: Option<Sharding>,
    worker_speeds: Vec<f64>,
    ps_speeds: Vec<f64>,
    link_bandwidths: Vec<f64>,
    comm: CommConfig,
}

impl ClusterSpecBuilder {
    /// Sets the number of workers (model replicas).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the number of parameter servers.
    pub fn parameter_servers(mut self, parameter_servers: usize) -> Self {
        self.parameter_servers = parameter_servers;
        self
    }

    /// Sets the sharding policy (default: size-balanced).
    pub fn sharding(mut self, sharding: Sharding) -> Self {
        self.sharding = Some(sharding);
        self
    }

    /// Sets per-worker relative speed factors (one per worker).
    pub fn worker_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.worker_speeds = speeds;
        self
    }

    /// Sets per-PS relative speed factors (one per server).
    pub fn ps_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.ps_speeds = speeds;
        self
    }

    /// Sets relative link bandwidth factors: either one per worker uplink
    /// (length `W`) or a full row-major worker × PS matrix (length
    /// `W × S`).
    pub fn link_bandwidths(mut self, bandwidths: Vec<f64>) -> Self {
        self.link_bandwidths = bandwidths;
        self
    }

    /// Sets the communication granularity (default: both passes off).
    pub fn comm(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }

    /// Validates and builds the spec.
    ///
    /// All-`1.0` factor vectors are normalized to the empty (uniform)
    /// encoding, so a builder fed explicit `1.0`s produces a spec equal —
    /// and hashing identically — to [`ClusterSpec::new`]'s.
    ///
    /// # Errors
    ///
    /// Returns the [`ClusterSpecError`] for a degenerate shape, a factor
    /// vector of the wrong length, or a factor that is not positive and
    /// finite.
    pub fn build(self) -> Result<ClusterSpec, ClusterSpecError> {
        let mut spec = ClusterSpec::try_new(self.workers, self.parameter_servers)?;
        if let Some(sharding) = self.sharding {
            spec.sharding = sharding;
        }
        let check = |field: &'static str, v: &[f64], expected: &[usize]| {
            if !v.is_empty() && !expected.contains(&v.len()) {
                return Err(ClusterSpecError::FactorLength {
                    field,
                    expected: expected[0],
                    got: v.len(),
                });
            }
            for &f in v {
                if !f.is_finite() || f <= 0.0 {
                    return Err(ClusterSpecError::NonPositiveFactor { field, value: f });
                }
            }
            Ok(())
        };
        check("worker_speeds", &self.worker_speeds, &[self.workers])?;
        check("ps_speeds", &self.ps_speeds, &[self.parameter_servers])?;
        check(
            "link_bandwidths",
            &self.link_bandwidths,
            &[self.workers, self.workers * self.parameter_servers],
        )?;
        // Canonicalize: all-1.0 IS uniform; empty is its one encoding.
        let normalize = |v: Vec<f64>| {
            if v.iter().all(|&f| f == 1.0) {
                Vec::new()
            } else {
                v
            }
        };
        spec.worker_speeds = normalize(self.worker_speeds);
        spec.ps_speeds = normalize(self.ps_speeds);
        spec.link_bandwidths = normalize(self.link_bandwidths);
        spec.comm = self.comm;
        Ok(spec)
    }
}

/// Errors from [`ClusterSpec::try_new`] and [`ClusterSpecBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ClusterSpecError {
    /// The spec requested zero workers.
    ZeroWorkers,
    /// The spec requested zero parameter servers.
    ZeroParameterServers,
    /// A heterogeneity factor vector does not match the cluster shape.
    FactorLength {
        /// Which builder field was malformed.
        field: &'static str,
        /// The primary expected length.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// A speed or bandwidth factor was zero, negative or non-finite.
    NonPositiveFactor {
        /// Which builder field was malformed.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ClusterSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterSpecError::ZeroWorkers => f.write_str("cluster needs at least one worker"),
            ClusterSpecError::ZeroParameterServers => {
                f.write_str("cluster needs at least one parameter server")
            }
            ClusterSpecError::FactorLength {
                field,
                expected,
                got,
            } => write!(
                f,
                "{field} has {got} entries but the cluster shape expects {expected}"
            ),
            ClusterSpecError::NonPositiveFactor { field, value } => {
                write!(
                    f,
                    "{field} factors must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl Error for ClusterSpecError {}

/// Errors from [`deploy`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeployError {
    /// The spec requested zero workers or zero parameter servers.
    EmptyCluster,
    /// The model has no parameters to distribute.
    NoParameters,
    /// The spec requested more PS shards than the model has parameters,
    /// which would leave at least one shard hosting nothing (and hence
    /// silently idle at every iteration).
    ShardsExceedParams {
        /// Requested parameter-server count.
        shards: usize,
        /// Parameters the model actually has.
        params: usize,
    },
    /// A communication threshold was degenerate (zero bytes).
    InvalidCommConfig {
        /// Which [`CommConfig`] field was malformed.
        field: &'static str,
    },
    /// An all-reduce deployment was requested for an inference graph
    /// (there are no gradients to aggregate).
    NotTraining,
    /// Graph construction failed (indicates a malformed model graph).
    Graph(GraphError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::EmptyCluster => {
                f.write_str("cluster needs at least one worker and one parameter server")
            }
            DeployError::NoParameters => f.write_str("model has no parameters to distribute"),
            DeployError::ShardsExceedParams { shards, params } => write!(
                f,
                "{shards} PS shards requested but the model has only {params} parameters"
            ),
            DeployError::InvalidCommConfig { field } => {
                write!(f, "comm config {field} must be at least 1 byte")
            }
            DeployError::NotTraining => {
                f.write_str("all-reduce aggregation requires a training graph")
            }
            DeployError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DeployError {
    fn from(e: GraphError) -> Self {
        DeployError::Graph(e)
    }
}

/// A model deployed on a simulated MR+PS cluster.
#[derive(Debug, Clone)]
pub struct DeployedModel {
    graph: Graph,
    workers: Vec<DeviceId>,
    parameter_servers: Vec<DeviceId>,
    /// `recv_ops[w][u]` — worker `w`'s recv of transfer unit `u` (fused
    /// units share one op id).
    recv_ops: Vec<Vec<OpId>>,
    /// `channels[w][s]` — the channel between worker `w` and PS `s`.
    channels: Vec<Vec<ChannelId>>,
    /// Transfer unit → PS shard index.
    shard_of: Vec<usize>,
    /// Transfer unit → (model parameter index, chunk index). `None` =
    /// the whole tensor (the identity lowering).
    origin: Vec<(usize, Option<u16>)>,
    training: bool,
}

impl DeployedModel {
    /// The partitioned graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Worker device ids, in worker-index order.
    pub fn workers(&self) -> &[DeviceId] {
        &self.workers
    }

    /// Parameter-server device ids, in shard-index order.
    pub fn parameter_servers(&self) -> &[DeviceId] {
        &self.parameter_servers
    }

    /// Whether the deployment is a training job (gradient path present).
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Worker `w`'s recv op for parameter `p`.
    pub fn recv_op(&self, worker: usize, param: ParamId) -> Option<OpId> {
        self.recv_ops
            .get(worker)
            .and_then(|r| r.get(param.index()))
            .copied()
    }

    /// The channel between worker index `w` and PS index `s`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn channel(&self, worker: usize, ps: usize) -> ChannelId {
        self.channels[worker][ps]
    }

    /// The PS shard index a parameter lives on.
    ///
    /// # Panics
    ///
    /// Panics if `param` is out of range.
    pub fn shard_of(&self, param: ParamId) -> usize {
        self.shard_of[param.index()]
    }

    /// Maps a graph parameter (transfer unit) back to the model parameter
    /// it was lowered from, plus its chunk index (`None` = whole tensor).
    ///
    /// # Panics
    ///
    /// Panics if `param` is out of range.
    pub fn unit_origin(&self, param: ParamId) -> (usize, Option<u16>) {
        self.origin[param.index()]
    }

    /// Replicates a schedule computed on worker 0 (the paper's *reference
    /// worker*, §4) to the same parameter order on every worker.
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not cover this deployment's graph.
    pub fn replicate_schedule(&self, reference: &Schedule) -> Schedule {
        assert_eq!(reference.len(), self.graph.len(), "schedule/graph mismatch");
        let mut out = Schedule::empty(self.graph.len());
        for p in 0..self.shard_of.len() {
            let param = ParamId::from_index(p);
            let Some(r0) = self.recv_op(0, param) else {
                continue;
            };
            if let Some(priority) = reference.priority(r0) {
                for w in 0..self.workers.len() {
                    if let Some(r) = self.recv_op(w, param) {
                        out.set(r, priority);
                    }
                }
            }
        }
        out
    }

    /// Ops per worker partition (the x-axis of Fig. 11).
    pub fn ops_per_worker(&self) -> usize {
        self.graph.ops_on(self.workers[0]).count()
    }

    /// Parameter bytes hosted per PS shard, in shard-index order.
    ///
    /// This is the blast radius of a PS fault: a stall on shard `s` delays
    /// every transfer of `shard_bytes()[s]` bytes to all workers.
    pub fn shard_bytes(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.parameter_servers.len()];
        for (p, &shard) in self.graph.params().iter().zip(&self.shard_of) {
            bytes[shard] += p.bytes();
        }
        bytes
    }

    /// The PS shard hosting the most parameter bytes — the server whose
    /// stall or straggling hurts the iteration most.
    ///
    /// Ties break deterministically to the lowest shard index.
    pub fn hottest_shard(&self) -> usize {
        self.shard_bytes()
            .iter()
            .enumerate()
            .max_by_key(|&(s, &b)| (b, std::cmp::Reverse(s)))
            .map(|(s, _)| s)
            .unwrap_or(0)
    }
}

/// One PS→worker transfer after the partition pass: either a whole model
/// parameter or one chunk of a split one. Units are what the graph's
/// parameter table, the sharding assignment and `recv_ops` index.
struct Unit {
    /// Model parameter index this unit came from.
    param: usize,
    /// Chunk index (`None` = the whole tensor).
    chunk: Option<u16>,
    /// Elements carried by this unit (chunk sums are exact).
    elems: u64,
    /// Bytes carried by this unit (chunk sums are exact).
    bytes: u64,
}

/// The partition pass: splits every parameter larger than
/// `partition_bytes` into `ceil(bytes / partition_bytes)` chunks (capped
/// at one element per chunk) so the size-balanced sharder can spread a
/// giant tensor across PS shards. Byte and element totals are preserved
/// exactly; with the threshold unset this is the identity.
fn transfer_units(model: &ModelGraph, comm: CommConfig) -> Vec<Unit> {
    let mut units = Vec::with_capacity(model.params().len());
    for (i, p) in model.params().iter().enumerate() {
        let (bytes, elems) = (p.bytes(), p.elems());
        let k = match comm.partition_bytes {
            Some(part) if bytes > part && elems > 1 => {
                bytes.div_ceil(part).min(elems).min(u64::from(u16::MAX))
            }
            _ => 1,
        };
        if k <= 1 {
            units.push(Unit {
                param: i,
                chunk: None,
                elems,
                bytes,
            });
        } else {
            for j in 0..k {
                units.push(Unit {
                    param: i,
                    chunk: Some(j as u16),
                    elems: elems / k + u64::from(j < elems % k),
                    bytes: bytes / k + u64::from(j < bytes % k),
                });
            }
        }
    }
    units
}

/// A transfer group after the fusion pass: one send/recv pair per group
/// per worker (and one send_grad/recv_grad pair on the gradient path).
enum TransferGroup {
    /// A single unit, emitted exactly as the historical lowering did.
    Solo(usize),
    /// Several small same-shard units coalesced into one transfer.
    Fused {
        /// Globally unique fusion group id (rendered as `fused{id}`).
        id: u32,
        /// Member unit indices, in unit order.
        members: Vec<usize>,
    },
}

/// The fusion pass: greedily coalesces consecutive same-shard whole-tensor
/// units smaller than `fusion_bytes` until a group reaches the threshold.
/// Chunk units and large units always stay solo; single-member groups
/// degrade to [`TransferGroup::Solo`], so with the threshold unset this
/// emits one solo group per unit in unit order — the identity.
fn fusion_groups(units: &[Unit], shard_of: &[usize], fusion: Option<u64>) -> Vec<TransferGroup> {
    let Some(fuse) = fusion else {
        return (0..units.len()).map(TransferGroup::Solo).collect();
    };
    let shards = shard_of.iter().copied().max().map_or(1, |s| s + 1);
    let mut pending: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut acc = vec![0u64; shards];
    let mut groups: Vec<(usize, TransferGroup)> = Vec::with_capacity(units.len());
    fn flush(pending: &mut Vec<usize>, acc: &mut u64, groups: &mut Vec<(usize, TransferGroup)>) {
        *acc = 0;
        match pending.len() {
            0 => {}
            1 => {
                let only = pending.pop().expect("len checked");
                groups.push((only, TransferGroup::Solo(only)));
            }
            _ => {
                let members = std::mem::take(pending);
                groups.push((members[0], TransferGroup::Fused { id: 0, members }));
            }
        }
    }
    for (u, unit) in units.iter().enumerate() {
        let s = shard_of[u];
        if unit.chunk.is_some() || unit.bytes >= fuse {
            groups.push((u, TransferGroup::Solo(u)));
            continue;
        }
        pending[s].push(u);
        acc[s] += unit.bytes;
        if acc[s] >= fuse {
            flush(&mut pending[s], &mut acc[s], &mut groups);
        }
    }
    for s in 0..shards {
        flush(&mut pending[s], &mut acc[s], &mut groups);
    }
    // Deterministic emission order: by first member unit index. Fusion
    // group ids are assigned in that order, globally unique across shards
    // so rendered `fused{id}` names never collide.
    groups.sort_by_key(|&(first, _)| first);
    let mut next_id = 0u32;
    let mut out = Vec::with_capacity(groups.len());
    for (_, mut g) in groups {
        if let TransferGroup::Fused { id, .. } = &mut g {
            *id = next_id;
            next_id += 1;
        }
        out.push(g);
    }
    out
}

/// Deploys `model` onto a cluster of the given shape.
///
/// # Errors
///
/// Returns [`DeployError::EmptyCluster`] for a zero-sized spec,
/// [`DeployError::NoParameters`] for a parameterless model,
/// [`DeployError::InvalidCommConfig`] for a zero-byte comm threshold, or a
/// wrapped [`GraphError`] if construction produces an invalid graph (which
/// would be a bug in the lowering).
pub fn deploy(model: &ModelGraph, spec: &ClusterSpec) -> Result<DeployedModel, DeployError> {
    if spec.workers == 0 || spec.parameter_servers == 0 {
        return Err(DeployError::EmptyCluster);
    }
    if model.params().is_empty() {
        return Err(DeployError::NoParameters);
    }
    spec.comm.validate()?;

    // Partition pass: lower parameters to transfer units before sharding,
    // so chunks of one split tensor can land on different shards.
    let units = transfer_units(model, spec.comm);
    if spec.parameter_servers > units.len() {
        return Err(DeployError::ShardsExceedParams {
            shards: spec.parameter_servers,
            params: units.len(),
        });
    }

    let mut b = GraphBuilder::with_capacity(
        spec.workers * (model.ops().len() + 2 * units.len())
            + spec.parameter_servers * 5 * units.len(),
    );

    // Devices and channels.
    let workers: Vec<DeviceId> = (0..spec.workers)
        .map(|w| b.add_worker(format!("worker/{w}")))
        .collect();
    let ps: Vec<DeviceId> = (0..spec.parameter_servers)
        .map(|s| b.add_parameter_server(format!("ps/{s}")))
        .collect();
    let channels: Vec<Vec<ChannelId>> = workers
        .iter()
        .map(|&w| ps.iter().map(|&s| b.add_channel(w, s)).collect())
        .collect();

    // Heterogeneity side tables. Skipped entirely for uniform specs so
    // homogeneous deployments build the exact graph they always did.
    if !spec.is_uniform() {
        for (w, &dev) in workers.iter().enumerate() {
            b.set_device_speed(dev, spec.worker_speed(w));
        }
        for (s, &dev) in ps.iter().enumerate() {
            b.set_device_speed(dev, spec.ps_speed(s));
        }
        for (w, row) in channels.iter().enumerate() {
            for (s, &ch) in row.iter().enumerate() {
                b.set_channel_bandwidth(ch, spec.link_bandwidth(w, s));
            }
        }
    }

    // Units and shards. Parameter and model-op names are interned once up
    // front; every op below carries a compact structured `OpName` instead
    // of a freshly formatted `String` — this loop used to be the
    // allocation hot spot of the whole deployment.
    let unit_bytes: Vec<u64> = units.iter().map(|u| u.bytes).collect();
    let shard_of = spec
        .sharding
        .assign_weighted(&unit_bytes, spec.parameter_servers);
    let params: Vec<ParamId> = units
        .iter()
        .map(|u| {
            let p = &model.params()[u.param];
            match u.chunk {
                None => b.add_param(p.name(), u.bytes),
                Some(j) => b.add_param(format!("{}.part{j}", p.name()), u.bytes),
            }
        })
        .collect();
    let param_names: Vec<NameId> = model.params().iter().map(|p| b.intern(p.name())).collect();
    let mop_names: Vec<NameId> = model.ops().iter().map(|o| b.intern(o.name())).collect();
    for (p, &shard) in params.iter().zip(&shard_of) {
        b.assign_param_to_ps(*p, ps[shard]);
    }

    // Model parameter -> its transfer units (identity without the
    // partition pass: exactly one unit per parameter).
    let mut param_units: Vec<Vec<usize>> = vec![Vec::new(); model.params().len()];
    for (u, unit) in units.iter().enumerate() {
        param_units[unit.param].push(u);
    }

    // Fusion pass: group small same-shard transfers.
    let groups = fusion_groups(&units, &shard_of, spec.comm.fusion_bytes);

    // Gradient producers per parameter, computed once for all workers
    // (this was previously an O(params × ops) rescan per worker).
    let mut grad_producers: Vec<Vec<usize>> = vec![Vec::new(); model.params().len()];
    if model.is_training() {
        for (id, mop) in model.ops_enumerated() {
            for g in mop.produces_grads() {
                grad_producers[g.index()].push(id.index());
            }
        }
    }

    // PS-side read ops (one per transfer unit, shared by all workers).
    let read_ops: Vec<OpId> = units
        .iter()
        .zip(&shard_of)
        .enumerate()
        .map(|(u, (unit, &shard))| {
            let name = match unit.chunk {
                None => OpName::PsRead {
                    shard: shard as u32,
                    param: param_names[unit.param],
                },
                Some(chunk) => OpName::Chunk {
                    role: CommRole::Read,
                    shard: shard as u16,
                    worker: 0,
                    param: param_names[unit.param],
                    chunk,
                },
            };
            b.add_op_named(
                name,
                ps[shard],
                OpKind::Read { param: params[u] },
                Cost::flops(unit.elems as f64),
                &[],
            )
        })
        .collect();

    // Per-worker replicas.
    let mut recv_ops: Vec<Vec<OpId>> = Vec::with_capacity(spec.workers);
    // grad recvs at PS: grad_recvs[u] across workers.
    let mut grad_recvs: Vec<Vec<OpId>> = vec![Vec::new(); units.len()];
    // Dependency scratch, reused across every op of every replica.
    let mut deps: Vec<OpId> = Vec::new();
    // Chain scratch: the previous chunk's send (resp. send_grad) of each
    // split parameter, per worker.
    let mut last_chunk_send: Vec<Option<OpId>> = vec![None; model.params().len()];

    for (w, &worker) in workers.iter().enumerate() {
        // Parameter transfers PS -> worker, one per transfer group.
        let mut w_recvs: Vec<Option<OpId>> = vec![None; units.len()];
        last_chunk_send.fill(None);
        for group in &groups {
            match group {
                TransferGroup::Solo(u) => {
                    let unit = &units[*u];
                    let shard = shard_of[*u];
                    let ch = channels[w][shard];
                    deps.clear();
                    deps.push(read_ops[*u]);
                    let (send_name, recv_name) = match unit.chunk {
                        None => (
                            OpName::PsSend {
                                shard: shard as u32,
                                param: param_names[unit.param],
                                worker: w as u32,
                            },
                            OpName::WorkerRecv {
                                worker: w as u32,
                                param: param_names[unit.param],
                            },
                        ),
                        Some(chunk) => {
                            // Chained chunks: each send also waits for the
                            // previous chunk of the same tensor, preserving
                            // in-order wire transmission (sends are cheap;
                            // the recvs still overlap across channels).
                            if let Some(prev) = last_chunk_send[unit.param] {
                                deps.push(prev);
                            }
                            (
                                OpName::Chunk {
                                    role: CommRole::Send,
                                    shard: shard as u16,
                                    worker: w as u16,
                                    param: param_names[unit.param],
                                    chunk,
                                },
                                OpName::Chunk {
                                    role: CommRole::Recv,
                                    shard: shard as u16,
                                    worker: w as u16,
                                    param: param_names[unit.param],
                                    chunk,
                                },
                            )
                        }
                    };
                    let send = b.add_op_named(
                        send_name,
                        ps[shard],
                        OpKind::send(params[*u], ch),
                        Cost::bytes(unit.bytes),
                        &deps,
                    );
                    if unit.chunk.is_some() {
                        last_chunk_send[unit.param] = Some(send);
                    }
                    let recv = b.add_op_named(
                        recv_name,
                        worker,
                        OpKind::recv(params[*u], ch),
                        Cost::bytes(unit.bytes),
                        &[send],
                    );
                    w_recvs[*u] = Some(recv);
                }
                TransferGroup::Fused { id, members } => {
                    let shard = shard_of[members[0]];
                    let ch = channels[w][shard];
                    deps.clear();
                    deps.extend(members.iter().map(|&m| read_ops[m]));
                    let bytes: u64 = members.iter().map(|&m| units[m].bytes).sum();
                    let send = b.add_op_named(
                        OpName::Fused {
                            role: CommRole::Send,
                            shard: shard as u16,
                            worker: w as u16,
                            group: *id,
                        },
                        ps[shard],
                        OpKind::send(params[members[0]], ch),
                        Cost::bytes(bytes),
                        &deps,
                    );
                    let recv = b.add_op_named(
                        OpName::Fused {
                            role: CommRole::Recv,
                            shard: shard as u16,
                            worker: w as u16,
                            group: *id,
                        },
                        worker,
                        OpKind::recv(params[members[0]], ch),
                        Cost::bytes(bytes),
                        &[send],
                    );
                    for &m in members {
                        w_recvs[m] = Some(recv);
                    }
                }
            }
        }
        let w_recvs: Vec<OpId> = w_recvs
            .into_iter()
            .map(|r| r.expect("every unit belongs to exactly one transfer group"))
            .collect();

        // Replica compute ops.
        let mut op_map: Vec<OpId> = Vec::with_capacity(model.ops().len());
        for (mi, mop) in model.ops().iter().enumerate() {
            deps.clear();
            deps.extend(mop.preds().iter().map(|p| op_map[p.index()]));
            for p in mop.reads_params() {
                deps.extend(param_units[p.index()].iter().map(|&u| w_recvs[u]));
            }
            let id = b.add_op_named(
                OpName::WorkerOp {
                    worker: w as u32,
                    op: mop_names[mi],
                },
                worker,
                OpKind::Compute,
                Cost::flops(mop.flops()),
                &deps,
            );
            op_map.push(id);
        }

        // Gradient path: worker send -> PS recv, per transfer group.
        if model.is_training() {
            last_chunk_send.fill(None);
            for group in &groups {
                match group {
                    TransferGroup::Solo(u) => {
                        let unit = &units[*u];
                        if grad_producers[unit.param].is_empty() {
                            continue;
                        }
                        deps.clear();
                        deps.extend(grad_producers[unit.param].iter().map(|&mi| op_map[mi]));
                        let shard = shard_of[*u];
                        let ch = channels[w][shard];
                        let (send_name, recv_name) = match unit.chunk {
                            None => (
                                OpName::WorkerSendGrad {
                                    worker: w as u32,
                                    param: param_names[unit.param],
                                },
                                OpName::PsRecvGrad {
                                    shard: shard as u32,
                                    param: param_names[unit.param],
                                    worker: w as u32,
                                },
                            ),
                            Some(chunk) => {
                                if let Some(prev) = last_chunk_send[unit.param] {
                                    deps.push(prev);
                                }
                                (
                                    OpName::Chunk {
                                        role: CommRole::SendGrad,
                                        shard: shard as u16,
                                        worker: w as u16,
                                        param: param_names[unit.param],
                                        chunk,
                                    },
                                    OpName::Chunk {
                                        role: CommRole::RecvGrad,
                                        shard: shard as u16,
                                        worker: w as u16,
                                        param: param_names[unit.param],
                                        chunk,
                                    },
                                )
                            }
                        };
                        let send = b.add_op_named(
                            send_name,
                            worker,
                            OpKind::send(params[*u], ch),
                            Cost::bytes(unit.bytes),
                            &deps,
                        );
                        if unit.chunk.is_some() {
                            last_chunk_send[unit.param] = Some(send);
                        }
                        let recv = b.add_op_named(
                            recv_name,
                            ps[shard],
                            OpKind::recv(params[*u], ch),
                            Cost::bytes(unit.bytes),
                            &[send],
                        );
                        grad_recvs[*u].push(recv);
                    }
                    TransferGroup::Fused { id, members } => {
                        let with_grads: Vec<usize> = members
                            .iter()
                            .copied()
                            .filter(|&m| !grad_producers[units[m].param].is_empty())
                            .collect();
                        if with_grads.is_empty() {
                            continue;
                        }
                        deps.clear();
                        for &m in &with_grads {
                            deps.extend(
                                grad_producers[units[m].param].iter().map(|&mi| op_map[mi]),
                            );
                        }
                        let shard = shard_of[members[0]];
                        let ch = channels[w][shard];
                        let bytes: u64 = with_grads.iter().map(|&m| units[m].bytes).sum();
                        let send = b.add_op_named(
                            OpName::Fused {
                                role: CommRole::SendGrad,
                                shard: shard as u16,
                                worker: w as u16,
                                group: *id,
                            },
                            worker,
                            OpKind::send(params[with_grads[0]], ch),
                            Cost::bytes(bytes),
                            &deps,
                        );
                        let recv = b.add_op_named(
                            OpName::Fused {
                                role: CommRole::RecvGrad,
                                shard: shard as u16,
                                worker: w as u16,
                                group: *id,
                            },
                            ps[shard],
                            OpKind::recv(params[with_grads[0]], ch),
                            Cost::bytes(bytes),
                            &[send],
                        );
                        for &m in &with_grads {
                            grad_recvs[m].push(recv);
                        }
                    }
                }
            }
        }
        recv_ops.push(w_recvs);
    }

    // PS-side aggregation and update, one pair per transfer unit (fusion
    // only coalesces the wire transfers; state updates stay per unit).
    if model.is_training() {
        for (u, unit) in units.iter().enumerate() {
            if grad_recvs[u].is_empty() {
                continue;
            }
            let shard = shard_of[u];
            let (agg_name, upd_name) = match unit.chunk {
                None => (
                    OpName::PsAggregate {
                        shard: shard as u32,
                        param: param_names[unit.param],
                    },
                    OpName::PsUpdate {
                        shard: shard as u32,
                        param: param_names[unit.param],
                    },
                ),
                Some(chunk) => (
                    OpName::Chunk {
                        role: CommRole::Aggregate,
                        shard: shard as u16,
                        worker: 0,
                        param: param_names[unit.param],
                        chunk,
                    },
                    OpName::Chunk {
                        role: CommRole::Update,
                        shard: shard as u16,
                        worker: 0,
                        param: param_names[unit.param],
                        chunk,
                    },
                ),
            };
            let agg = b.add_op_named(
                agg_name,
                ps[shard],
                OpKind::Aggregate { param: params[u] },
                Cost::flops((unit.elems * spec.workers as u64) as f64),
                &grad_recvs[u],
            );
            b.add_op_named(
                upd_name,
                ps[shard],
                OpKind::Update { param: params[u] },
                Cost::flops(2.0 * unit.elems as f64),
                &[agg],
            );
        }
    }

    let graph = b.build()?;
    Ok(DeployedModel {
        graph,
        workers,
        parameter_servers: ps,
        recv_ops,
        channels,
        shard_of,
        origin: units.iter().map(|u| (u.param, u.chunk)).collect(),
        training: model.is_training(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{tiny_mlp, Mode};

    fn mlp_cluster(workers: usize, servers: usize, mode: Mode) -> DeployedModel {
        let model = tiny_mlp(mode, 8);
        deploy(&model, &ClusterSpec::new(workers, servers)).unwrap()
    }

    #[test]
    fn training_deployment_has_five_ps_ops_per_param_per_shard() {
        let d = mlp_cluster(2, 1, Mode::Training);
        let g = d.graph();
        let n_params = 4; // tiny_mlp
        let ps_dev = d.parameter_servers()[0];
        let ps_ops: Vec<_> = g.ops_on(ps_dev).collect();
        // read + update + aggregate per param, send + recv per param per worker.
        let expected = n_params * (3 + 2 * 2);
        assert_eq!(ps_ops.len(), expected);
        // Worker recv roots: every param received by every worker.
        for w in 0..2 {
            assert_eq!(g.recv_ops_on(d.workers()[w]).len(), n_params);
        }
    }

    #[test]
    fn inference_deployment_has_no_gradient_path() {
        let d = mlp_cluster(2, 1, Mode::Inference);
        let g = d.graph();
        assert!(!d.is_training());
        // No aggregate/update ops anywhere.
        assert_eq!(
            g.count_ops(|o| matches!(o.kind(), OpKind::Aggregate { .. })),
            0
        );
        assert_eq!(
            g.count_ops(|o| matches!(o.kind(), OpKind::Update { .. })),
            0
        );
        // Workers send nothing.
        for &w in d.workers() {
            assert_eq!(
                g.ops_on(w).filter(|&id| g.op(id).kind().is_send()).count(),
                0
            );
        }
    }

    #[test]
    fn recv_ops_are_roots_within_worker_partition() {
        let d = mlp_cluster(3, 2, Mode::Training);
        let g = d.graph();
        for (w, &worker) in d.workers().iter().enumerate() {
            for recv in g.recv_ops_on(worker) {
                // The only predecessor is the PS-side send.
                for &p in g.preds(recv) {
                    assert!(g.device(g.op(p).device()).is_parameter_server());
                }
                // And it belongs to worker w.
                assert_eq!(g.op(recv).device(), worker);
            }
            let _ = w;
        }
    }

    #[test]
    fn channels_connect_each_pair_once() {
        let d = mlp_cluster(3, 2, Mode::Inference);
        let g = d.graph();
        assert_eq!(g.channels().len(), 6);
        for w in 0..3 {
            for s in 0..2 {
                let ch = d.channel(w, s);
                assert_eq!(g.channel(ch).worker(), d.workers()[w]);
                assert_eq!(g.channel(ch).ps(), d.parameter_servers()[s]);
            }
        }
    }

    #[test]
    fn sharding_spreads_bytes_across_servers() {
        let d = mlp_cluster(1, 2, Mode::Inference);
        let g = d.graph();
        let mut bytes = [0u64; 2];
        for (i, p) in g.params().iter().enumerate() {
            bytes[d.shard_of(ParamId::from_index(i))] += p.bytes();
        }
        assert!(bytes[0] > 0 && bytes[1] > 0, "both shards used: {bytes:?}");
    }

    #[test]
    fn replicate_schedule_copies_reference_priorities() {
        let d = mlp_cluster(3, 1, Mode::Inference);
        let schedule = tictac_sched::tic(d.graph(), d.workers()[0]);
        let replicated = d.replicate_schedule(&schedule);
        for p in 0..4 {
            let param = ParamId::from_index(p);
            let p0 = replicated.priority(d.recv_op(0, param).unwrap());
            assert!(p0.is_some());
            for w in 1..3 {
                let pw = replicated.priority(d.recv_op(w, param).unwrap());
                assert_eq!(p0, pw, "worker {w} param {p}");
            }
        }
    }

    #[test]
    fn graph_passes_validation_and_is_acyclic() {
        let d = mlp_cluster(4, 2, Mode::Training);
        assert!(d.graph().check().is_ok());
        assert!(tictac_graph::topo::is_acyclic(d.graph()));
    }

    #[test]
    fn rejects_empty_cluster_and_empty_model() {
        let model = tiny_mlp(Mode::Inference, 1);
        // `try_new` catches degenerate shapes before any model is in hand…
        assert_eq!(
            ClusterSpec::try_new(0, 1).unwrap_err(),
            ClusterSpecError::ZeroWorkers
        );
        assert_eq!(
            ClusterSpec::try_new(1, 0).unwrap_err(),
            ClusterSpecError::ZeroParameterServers
        );
        // …and `deploy` still guards hand-mutated specs (the public
        // shape fields stay writable; the builder is the validated path).
        let mut zero_workers = ClusterSpec::new(1, 1);
        zero_workers.workers = 0;
        assert_eq!(
            deploy(&model, &zero_workers).unwrap_err(),
            DeployError::EmptyCluster
        );
    }

    #[test]
    #[should_panic(expected = "at least one parameter server")]
    fn new_panics_on_degenerate_shape() {
        ClusterSpec::new(4, 0);
    }

    #[test]
    fn rejects_more_shards_than_params() {
        // tiny_mlp has 4 parameters; 5 shards would leave one idle.
        let model = tiny_mlp(Mode::Training, 1);
        assert_eq!(
            deploy(&model, &ClusterSpec::new(2, 5)).unwrap_err(),
            DeployError::ShardsExceedParams {
                shards: 5,
                params: 4
            }
        );
        assert!(deploy(&model, &ClusterSpec::new(2, 4)).is_ok());
    }

    #[test]
    fn validates_thousand_worker_shapes() {
        // The scale sweep's largest shape must pass spec validation.
        let spec = ClusterSpec::try_new(1024, 16).unwrap();
        assert_eq!(spec.workers, 1024);
        assert_eq!(spec.parameter_servers, 16);
    }

    #[test]
    fn builder_with_unit_factors_equals_uniform_spec() {
        let built = ClusterSpec::builder()
            .workers(4)
            .parameter_servers(2)
            .worker_speeds(vec![1.0; 4])
            .ps_speeds(vec![1.0; 2])
            .link_bandwidths(vec![1.0; 4])
            .build()
            .unwrap();
        let plain = ClusterSpec::new(4, 2);
        assert_eq!(built, plain);
        assert!(built.is_uniform());
        use std::hash::{Hash, Hasher};
        let h = |s: &ClusterSpec| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&built), h(&plain));
    }

    #[test]
    fn builder_rejects_bad_factors() {
        let base = || ClusterSpec::builder().workers(2).parameter_servers(1);
        assert_eq!(
            base().worker_speeds(vec![1.0]).build().unwrap_err(),
            ClusterSpecError::FactorLength {
                field: "worker_speeds",
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            base().ps_speeds(vec![0.0]).build().unwrap_err(),
            ClusterSpecError::NonPositiveFactor {
                field: "ps_speeds",
                value: 0.0
            }
        );
        assert!(matches!(
            base().link_bandwidths(vec![f64::NAN, 1.0]).build(),
            Err(ClusterSpecError::NonPositiveFactor { .. })
        ));
        assert_eq!(
            ClusterSpec::builder().parameter_servers(1).build(),
            Err(ClusterSpecError::ZeroWorkers)
        );
    }

    #[test]
    fn heterogeneous_spec_lowers_into_graph_side_tables() {
        let spec = ClusterSpec::builder()
            .workers(2)
            .parameter_servers(2)
            .worker_speeds(vec![1.0, 0.5])
            .ps_speeds(vec![2.0, 1.0])
            .link_bandwidths(vec![1.0, 0.25]) // per-worker uplinks
            .build()
            .unwrap();
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &spec).unwrap();
        let g = d.graph();
        assert!(!g.is_uniform());
        assert_eq!(g.device_speed(d.workers()[0]), 1.0);
        assert_eq!(g.device_speed(d.workers()[1]), 0.5);
        assert_eq!(g.device_speed(d.parameter_servers()[0]), 2.0);
        // Worker 1's channels to both shards inherit its uplink factor.
        assert_eq!(g.channel_bandwidth(d.channel(1, 0)), 0.25);
        assert_eq!(g.channel_bandwidth(d.channel(1, 1)), 0.25);
        assert_eq!(g.channel_bandwidth(d.channel(0, 0)), 1.0);

        // Full-matrix form targets a single link.
        let spec = ClusterSpec::builder()
            .workers(2)
            .parameter_servers(2)
            .link_bandwidths(vec![1.0, 1.0, 1.0, 4.0])
            .build()
            .unwrap();
        let d = deploy(&model, &spec).unwrap();
        assert_eq!(d.graph().channel_bandwidth(d.channel(1, 1)), 4.0);
        assert_eq!(d.graph().channel_bandwidth(d.channel(1, 0)), 1.0);
    }

    #[test]
    fn uniform_spec_lowers_to_uniform_graph() {
        let d = mlp_cluster(3, 2, Mode::Training);
        assert!(d.graph().is_uniform());
    }

    #[test]
    fn shard_bytes_account_for_every_parameter() {
        let d = mlp_cluster(2, 2, Mode::Training);
        let bytes = d.shard_bytes();
        assert_eq!(bytes.len(), 2);
        let total: u64 = d.graph().params().iter().map(|p| p.bytes()).sum();
        assert_eq!(bytes.iter().sum::<u64>(), total);
        let hottest = d.hottest_shard();
        assert_eq!(bytes[hottest], bytes.iter().copied().max().unwrap());
    }

    #[test]
    fn hottest_shard_ties_break_to_the_lowest_index() {
        // Two equal-size parameters across two shards: both shards host
        // the same byte count, so the tie must resolve to shard 0.
        let mut b = tictac_graph::ModelGraphBuilder::new("tie", 1);
        let w1 = b.add_param("a/w", vec![256]);
        let w2 = b.add_param("b/w", vec![256]);
        let f = b.add_op(
            "f",
            tictac_graph::ModelOpKind::Forward,
            1.0,
            &[],
            &[w1, w2],
            &[],
        );
        b.add_op("loss", tictac_graph::ModelOpKind::Loss, 1.0, &[f], &[], &[]);
        let d = deploy(&b.build(), &ClusterSpec::new(1, 2)).unwrap();
        let bytes = d.shard_bytes();
        assert_eq!(bytes[0], bytes[1], "setup: shards must tie");
        assert_eq!(d.hottest_shard(), 0);
    }

    #[test]
    fn partition_pass_splits_large_params_exactly() {
        let model = tiny_mlp(Mode::Training, 8);
        let total: u64 = model.params().iter().map(|p| p.bytes()).sum();
        let largest = model.params().iter().map(|p| p.bytes()).max().unwrap();
        let spec = ClusterSpec::new(2, 2)
            .with_comm(CommConfig::default().with_partition_bytes(Some(largest / 2)));
        let d = deploy(&model, &spec).unwrap();
        let g = d.graph();
        // More graph params than model params, byte total preserved.
        assert!(g.params().len() > model.params().len());
        assert_eq!(g.params().iter().map(|p| p.bytes()).sum::<u64>(), total);
        // Per-model-parameter byte totals preserved exactly.
        let mut per_param = vec![0u64; model.params().len()];
        for (u, p) in g.params().iter().enumerate() {
            let (origin, _) = d.unit_origin(ParamId::from_index(u));
            per_param[origin] += p.bytes();
        }
        for (i, p) in model.params().iter().enumerate() {
            assert_eq!(per_param[i], p.bytes(), "param {i}");
        }
        // Chunk names render with the .part suffix.
        assert!((0..g.params().len()).any(|u| {
            d.unit_origin(ParamId::from_index(u)).1.is_some()
                && g.params()[u].name().contains(".part")
        }));
        assert!(g.check().is_ok());
        assert!(tictac_graph::topo::is_acyclic(g));
    }

    #[test]
    fn fusion_pass_coalesces_small_transfers() {
        let model = tiny_mlp(Mode::Training, 8);
        let spec = ClusterSpec::new(2, 1)
            .with_comm(CommConfig::default().with_fusion_bytes(Some(u64::MAX)));
        let d = deploy(&model, &spec).unwrap();
        let g = d.graph();
        // All four tiny params fuse into one transfer per worker.
        for (w, &worker) in d.workers().iter().enumerate() {
            let recvs = g.recv_ops_on(worker);
            assert_eq!(recvs.len(), 1, "worker {w}");
            let total: u64 = model.params().iter().map(|p| p.bytes()).sum();
            assert_eq!(g.op(recvs[0]).cost().bytes, total);
            // Every unit maps to the shared fused recv.
            for u in 0..g.params().len() {
                assert_eq!(d.recv_op(w, ParamId::from_index(u)), Some(recvs[0]));
            }
        }
        assert!(g.check().is_ok());
        assert!(tictac_graph::topo::is_acyclic(g));
    }

    #[test]
    fn default_comm_is_identity() {
        let model = tiny_mlp(Mode::Training, 8);
        let plain = deploy(&model, &ClusterSpec::new(3, 2)).unwrap();
        let explicit = deploy(
            &model,
            &ClusterSpec::new(3, 2).with_comm(CommConfig::default()),
        )
        .unwrap();
        assert_eq!(plain.graph().len(), explicit.graph().len());
        for id in plain.graph().op_ids() {
            assert_eq!(
                plain.graph().op_name(id),
                explicit.graph().op_name(id),
                "op {id:?}"
            );
        }
        assert_eq!(CommConfig::default().fingerprint(), 0);
    }

    #[test]
    fn comm_fingerprint_separates_configs() {
        let a = CommConfig::default().with_partition_bytes(Some(1 << 20));
        let b = CommConfig::default().with_fusion_bytes(Some(1 << 20));
        let c = CommConfig::default();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), 0);
        assert_eq!(c.fingerprint(), 0);
        assert!(c.is_default());
        assert!(!a.is_default());
    }

    #[test]
    fn rejects_zero_byte_comm_thresholds() {
        let model = tiny_mlp(Mode::Training, 8);
        for comm in [
            CommConfig::default().with_partition_bytes(Some(0)),
            CommConfig::default().with_fusion_bytes(Some(0)),
        ] {
            assert!(matches!(
                deploy(&model, &ClusterSpec::new(2, 1).with_comm(comm)),
                Err(DeployError::InvalidCommConfig { .. })
            ));
        }
    }

    #[test]
    fn chunked_deployment_replicates_schedules() {
        let model = tiny_mlp(Mode::Training, 8);
        let largest = model.params().iter().map(|p| p.bytes()).max().unwrap();
        let spec = ClusterSpec::new(3, 2).with_comm(
            CommConfig::default()
                .with_partition_bytes(Some(largest / 3))
                .with_fusion_bytes(Some(64)),
        );
        let d = deploy(&model, &spec).unwrap();
        let schedule = tictac_sched::tic(d.graph(), d.workers()[0]);
        let replicated = d.replicate_schedule(&schedule);
        for u in 0..d.graph().params().len() {
            let param = ParamId::from_index(u);
            let p0 = replicated.priority(d.recv_op(0, param).unwrap());
            assert!(p0.is_some());
            for w in 1..3 {
                let pw = replicated.priority(d.recv_op(w, param).unwrap());
                assert_eq!(p0, pw, "worker {w} unit {u}");
            }
        }
    }

    #[test]
    fn ops_per_worker_counts_partition_size() {
        let d = mlp_cluster(2, 1, Mode::Training);
        let g = d.graph();
        assert_eq!(d.ops_per_worker(), g.ops_on(d.workers()[0]).count());
        assert!(d.ops_per_worker() > 10);
    }
}
