//! Model-Replica + Parameter-Server deployment.
//!
//! Lowers a device-agnostic [`ModelGraph`] onto a partitioned [`Graph`]
//! spanning `W` workers and `S` parameter servers, reproducing the
//! structure the paper describes (§2.2):
//!
//! * every worker holds an identical replica of the computational DAG,
//!   with one `recv` root per parameter it reads and (in training) one
//!   `send` leaf per gradient it produces;
//! * the PS DAG has five ops per parameter: `read`, `send` (one per
//!   worker), `recv` (one per worker), `aggregate` and `update`;
//! * parameters are sharded across parameter servers; each worker–PS pair
//!   communicates over one channel.
//!
//! # Example
//!
//! ```
//! use tictac_cluster::{deploy, ClusterSpec};
//! use tictac_models::{tiny_mlp, Mode};
//!
//! let model = tiny_mlp(Mode::Training, 8);
//! let deployed = deploy(&model, &ClusterSpec::new(4, 2))?;
//! assert_eq!(deployed.workers().len(), 4);
//! assert_eq!(deployed.parameter_servers().len(), 2);
//! // Each worker receives every parameter.
//! assert_eq!(deployed.recv_op(0, tictac_graph::ParamId::from_index(0)).is_some(), true);
//! # Ok::<(), tictac_cluster::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allreduce;
mod sharding;

pub use allreduce::{deploy_all_reduce, AllReduceDeployment};
pub use sharding::Sharding;

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tictac_graph::{
    ChannelId, Cost, DeviceId, Graph, GraphBuilder, GraphError, ModelGraph, NameId, OpId, OpKind,
    OpName, ParamId,
};
use tictac_sched::Schedule;

/// Shape of the deployment, optionally heterogeneous.
///
/// Construct with [`ClusterSpec::new`] / [`ClusterSpec::try_new`] for a
/// homogeneous cluster, or [`ClusterSpec::builder`] to attach per-device
/// speed factors and per-link bandwidth factors. Direct struct-literal
/// construction is no longer possible outside this crate — the
/// heterogeneity tables are private so every spec passes validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of workers (model replicas).
    pub workers: usize,
    /// Number of parameter servers.
    pub parameter_servers: usize,
    /// How parameters are assigned to parameter servers.
    pub sharding: Sharding,
    /// Relative worker speed factors (empty = uniform; else one per
    /// worker). `2.0` = twice the platform reference throughput.
    worker_speeds: Vec<f64>,
    /// Relative PS speed factors (empty = uniform; else one per server).
    ps_speeds: Vec<f64>,
    /// Relative link bandwidth factors: empty = uniform, length `W` = one
    /// factor per worker uplink (applied to all of that worker's
    /// channels), length `W × S` = full row-major worker×PS matrix.
    link_bandwidths: Vec<f64>,
}

impl PartialEq for ClusterSpec {
    fn eq(&self, other: &Self) -> bool {
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        self.workers == other.workers
            && self.parameter_servers == other.parameter_servers
            && self.sharding == other.sharding
            && bits(&self.worker_speeds) == bits(&other.worker_speeds)
            && bits(&self.ps_speeds) == bits(&other.ps_speeds)
            && bits(&self.link_bandwidths) == bits(&other.link_bandwidths)
    }
}

impl Eq for ClusterSpec {}

impl std::hash::Hash for ClusterSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.workers.hash(state);
        self.parameter_servers.hash(state);
        self.sharding.hash(state);
        for v in [&self.worker_speeds, &self.ps_speeds, &self.link_bandwidths] {
            v.len().hash(state);
            for f in v {
                f.to_bits().hash(state);
            }
        }
    }
}

impl ClusterSpec {
    /// A spec with the default size-balanced sharding.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape (zero workers or zero parameter
    /// servers); use [`ClusterSpec::try_new`] to handle that as a value.
    pub fn new(workers: usize, parameter_servers: usize) -> Self {
        match Self::try_new(workers, parameter_servers) {
            Ok(spec) => spec,
            Err(e) => panic!("invalid cluster shape: {e}"),
        }
    }

    /// A spec with the default size-balanced sharding, rejecting
    /// degenerate shapes with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterSpecError::ZeroWorkers`] or
    /// [`ClusterSpecError::ZeroParameterServers`]. Shapes that only turn
    /// out degenerate against a concrete model — more PS shards than the
    /// model has parameters — are rejected by [`deploy`] instead
    /// ([`DeployError::ShardsExceedParams`]).
    pub fn try_new(workers: usize, parameter_servers: usize) -> Result<Self, ClusterSpecError> {
        if workers == 0 {
            return Err(ClusterSpecError::ZeroWorkers);
        }
        if parameter_servers == 0 {
            return Err(ClusterSpecError::ZeroParameterServers);
        }
        Ok(Self {
            workers,
            parameter_servers,
            sharding: Sharding::SizeBalanced,
            worker_speeds: Vec::new(),
            ps_speeds: Vec::new(),
            link_bandwidths: Vec::new(),
        })
    }

    /// A builder with typed setters for shape, sharding, device speeds
    /// and link bandwidths; [`ClusterSpecBuilder::build`] runs the same
    /// validation as [`ClusterSpec::try_new`] plus heterogeneity checks.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// Overrides the sharding policy.
    pub fn with_sharding(mut self, sharding: Sharding) -> Self {
        self.sharding = sharding;
        self
    }

    /// Whether every device and link runs at the platform reference rate.
    pub fn is_uniform(&self) -> bool {
        self.worker_speeds.is_empty()
            && self.ps_speeds.is_empty()
            && self.link_bandwidths.is_empty()
    }

    /// The relative speed factor of worker `w` (`1.0` = reference).
    pub fn worker_speed(&self, w: usize) -> f64 {
        self.worker_speeds.get(w).copied().unwrap_or(1.0)
    }

    /// The relative speed factor of PS shard `s` (`1.0` = reference).
    pub fn ps_speed(&self, s: usize) -> f64 {
        self.ps_speeds.get(s).copied().unwrap_or(1.0)
    }

    /// The relative bandwidth factor of the link between worker `w` and
    /// PS shard `s` (`1.0` = reference).
    pub fn link_bandwidth(&self, w: usize, s: usize) -> f64 {
        if self.link_bandwidths.is_empty() {
            1.0
        } else if self.link_bandwidths.len() == self.workers {
            // One factor per worker uplink.
            self.link_bandwidths[w]
        } else {
            // Full row-major worker × PS matrix.
            self.link_bandwidths[w * self.parameter_servers + s]
        }
    }
}

/// Builder for [`ClusterSpec`] — the only way to construct a
/// heterogeneous spec.
///
/// ```
/// use tictac_cluster::ClusterSpec;
///
/// let spec = ClusterSpec::builder()
///     .workers(3)
///     .parameter_servers(1)
///     .worker_speeds(vec![1.0, 1.0, 0.5]) // one straggler at half speed
///     .build()?;
/// assert!(!spec.is_uniform());
/// assert_eq!(spec.worker_speed(2), 0.5);
/// # Ok::<(), tictac_cluster::ClusterSpecError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterSpecBuilder {
    workers: usize,
    parameter_servers: usize,
    sharding: Option<Sharding>,
    worker_speeds: Vec<f64>,
    ps_speeds: Vec<f64>,
    link_bandwidths: Vec<f64>,
}

impl ClusterSpecBuilder {
    /// Sets the number of workers (model replicas).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the number of parameter servers.
    pub fn parameter_servers(mut self, parameter_servers: usize) -> Self {
        self.parameter_servers = parameter_servers;
        self
    }

    /// Sets the sharding policy (default: size-balanced).
    pub fn sharding(mut self, sharding: Sharding) -> Self {
        self.sharding = Some(sharding);
        self
    }

    /// Sets per-worker relative speed factors (one per worker).
    pub fn worker_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.worker_speeds = speeds;
        self
    }

    /// Sets per-PS relative speed factors (one per server).
    pub fn ps_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.ps_speeds = speeds;
        self
    }

    /// Sets relative link bandwidth factors: either one per worker uplink
    /// (length `W`) or a full row-major worker × PS matrix (length
    /// `W × S`).
    pub fn link_bandwidths(mut self, bandwidths: Vec<f64>) -> Self {
        self.link_bandwidths = bandwidths;
        self
    }

    /// Validates and builds the spec.
    ///
    /// All-`1.0` factor vectors are normalized to the empty (uniform)
    /// encoding, so a builder fed explicit `1.0`s produces a spec equal —
    /// and hashing identically — to [`ClusterSpec::new`]'s.
    ///
    /// # Errors
    ///
    /// Returns the [`ClusterSpecError`] for a degenerate shape, a factor
    /// vector of the wrong length, or a factor that is not positive and
    /// finite.
    pub fn build(self) -> Result<ClusterSpec, ClusterSpecError> {
        let mut spec = ClusterSpec::try_new(self.workers, self.parameter_servers)?;
        if let Some(sharding) = self.sharding {
            spec.sharding = sharding;
        }
        let check = |field: &'static str, v: &[f64], expected: &[usize]| {
            if !v.is_empty() && !expected.contains(&v.len()) {
                return Err(ClusterSpecError::FactorLength {
                    field,
                    expected: expected[0],
                    got: v.len(),
                });
            }
            for &f in v {
                if !f.is_finite() || f <= 0.0 {
                    return Err(ClusterSpecError::NonPositiveFactor { field, value: f });
                }
            }
            Ok(())
        };
        check("worker_speeds", &self.worker_speeds, &[self.workers])?;
        check("ps_speeds", &self.ps_speeds, &[self.parameter_servers])?;
        check(
            "link_bandwidths",
            &self.link_bandwidths,
            &[self.workers, self.workers * self.parameter_servers],
        )?;
        // Canonicalize: all-1.0 IS uniform; empty is its one encoding.
        let normalize = |v: Vec<f64>| {
            if v.iter().all(|&f| f == 1.0) {
                Vec::new()
            } else {
                v
            }
        };
        spec.worker_speeds = normalize(self.worker_speeds);
        spec.ps_speeds = normalize(self.ps_speeds);
        spec.link_bandwidths = normalize(self.link_bandwidths);
        Ok(spec)
    }
}

/// Errors from [`ClusterSpec::try_new`] and [`ClusterSpecBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ClusterSpecError {
    /// The spec requested zero workers.
    ZeroWorkers,
    /// The spec requested zero parameter servers.
    ZeroParameterServers,
    /// A heterogeneity factor vector does not match the cluster shape.
    FactorLength {
        /// Which builder field was malformed.
        field: &'static str,
        /// The primary expected length.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// A speed or bandwidth factor was zero, negative or non-finite.
    NonPositiveFactor {
        /// Which builder field was malformed.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ClusterSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterSpecError::ZeroWorkers => f.write_str("cluster needs at least one worker"),
            ClusterSpecError::ZeroParameterServers => {
                f.write_str("cluster needs at least one parameter server")
            }
            ClusterSpecError::FactorLength {
                field,
                expected,
                got,
            } => write!(
                f,
                "{field} has {got} entries but the cluster shape expects {expected}"
            ),
            ClusterSpecError::NonPositiveFactor { field, value } => {
                write!(
                    f,
                    "{field} factors must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl Error for ClusterSpecError {}

/// Errors from [`deploy`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeployError {
    /// The spec requested zero workers or zero parameter servers.
    EmptyCluster,
    /// The model has no parameters to distribute.
    NoParameters,
    /// The spec requested more PS shards than the model has parameters,
    /// which would leave at least one shard hosting nothing (and hence
    /// silently idle at every iteration).
    ShardsExceedParams {
        /// Requested parameter-server count.
        shards: usize,
        /// Parameters the model actually has.
        params: usize,
    },
    /// An all-reduce deployment was requested for an inference graph
    /// (there are no gradients to aggregate).
    NotTraining,
    /// Graph construction failed (indicates a malformed model graph).
    Graph(GraphError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::EmptyCluster => {
                f.write_str("cluster needs at least one worker and one parameter server")
            }
            DeployError::NoParameters => f.write_str("model has no parameters to distribute"),
            DeployError::ShardsExceedParams { shards, params } => write!(
                f,
                "{shards} PS shards requested but the model has only {params} parameters"
            ),
            DeployError::NotTraining => {
                f.write_str("all-reduce aggregation requires a training graph")
            }
            DeployError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DeployError {
    fn from(e: GraphError) -> Self {
        DeployError::Graph(e)
    }
}

/// A model deployed on a simulated MR+PS cluster.
#[derive(Debug, Clone)]
pub struct DeployedModel {
    graph: Graph,
    workers: Vec<DeviceId>,
    parameter_servers: Vec<DeviceId>,
    /// `recv_ops[w][p]` — worker `w`'s recv of parameter `p`.
    recv_ops: Vec<Vec<OpId>>,
    /// `channels[w][s]` — the channel between worker `w` and PS `s`.
    channels: Vec<Vec<ChannelId>>,
    /// Parameter → PS shard index.
    shard_of: Vec<usize>,
    training: bool,
}

impl DeployedModel {
    /// The partitioned graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Worker device ids, in worker-index order.
    pub fn workers(&self) -> &[DeviceId] {
        &self.workers
    }

    /// Parameter-server device ids, in shard-index order.
    pub fn parameter_servers(&self) -> &[DeviceId] {
        &self.parameter_servers
    }

    /// Whether the deployment is a training job (gradient path present).
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Worker `w`'s recv op for parameter `p`.
    pub fn recv_op(&self, worker: usize, param: ParamId) -> Option<OpId> {
        self.recv_ops
            .get(worker)
            .and_then(|r| r.get(param.index()))
            .copied()
    }

    /// The channel between worker index `w` and PS index `s`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn channel(&self, worker: usize, ps: usize) -> ChannelId {
        self.channels[worker][ps]
    }

    /// The PS shard index a parameter lives on.
    ///
    /// # Panics
    ///
    /// Panics if `param` is out of range.
    pub fn shard_of(&self, param: ParamId) -> usize {
        self.shard_of[param.index()]
    }

    /// Replicates a schedule computed on worker 0 (the paper's *reference
    /// worker*, §4) to the same parameter order on every worker.
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not cover this deployment's graph.
    pub fn replicate_schedule(&self, reference: &Schedule) -> Schedule {
        assert_eq!(reference.len(), self.graph.len(), "schedule/graph mismatch");
        let mut out = Schedule::empty(self.graph.len());
        for p in 0..self.shard_of.len() {
            let param = ParamId::from_index(p);
            let Some(r0) = self.recv_op(0, param) else {
                continue;
            };
            if let Some(priority) = reference.priority(r0) {
                for w in 0..self.workers.len() {
                    if let Some(r) = self.recv_op(w, param) {
                        out.set(r, priority);
                    }
                }
            }
        }
        out
    }

    /// Ops per worker partition (the x-axis of Fig. 11).
    pub fn ops_per_worker(&self) -> usize {
        self.graph.ops_on(self.workers[0]).count()
    }

    /// Parameter bytes hosted per PS shard, in shard-index order.
    ///
    /// This is the blast radius of a PS fault: a stall on shard `s` delays
    /// every transfer of `shard_bytes()[s]` bytes to all workers.
    pub fn shard_bytes(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.parameter_servers.len()];
        for (p, &shard) in self.graph.params().iter().zip(&self.shard_of) {
            bytes[shard] += p.bytes();
        }
        bytes
    }

    /// The PS shard hosting the most parameter bytes — the server whose
    /// stall or straggling hurts the iteration most.
    ///
    /// Ties break deterministically to the lowest shard index.
    pub fn hottest_shard(&self) -> usize {
        self.shard_bytes()
            .iter()
            .enumerate()
            .max_by_key(|&(s, &b)| (b, std::cmp::Reverse(s)))
            .map(|(s, _)| s)
            .unwrap_or(0)
    }
}

/// Deploys `model` onto a cluster of the given shape.
///
/// # Errors
///
/// Returns [`DeployError::EmptyCluster`] for a zero-sized spec,
/// [`DeployError::NoParameters`] for a parameterless model, or a wrapped
/// [`GraphError`] if construction produces an invalid graph (which would be
/// a bug in the lowering).
pub fn deploy(model: &ModelGraph, spec: &ClusterSpec) -> Result<DeployedModel, DeployError> {
    if spec.workers == 0 || spec.parameter_servers == 0 {
        return Err(DeployError::EmptyCluster);
    }
    if model.params().is_empty() {
        return Err(DeployError::NoParameters);
    }
    if spec.parameter_servers > model.params().len() {
        return Err(DeployError::ShardsExceedParams {
            shards: spec.parameter_servers,
            params: model.params().len(),
        });
    }

    let mut b = GraphBuilder::with_capacity(
        spec.workers * (model.ops().len() + 2 * model.params().len())
            + spec.parameter_servers * 5 * model.params().len(),
    );

    // Devices and channels.
    let workers: Vec<DeviceId> = (0..spec.workers)
        .map(|w| b.add_worker(format!("worker/{w}")))
        .collect();
    let ps: Vec<DeviceId> = (0..spec.parameter_servers)
        .map(|s| b.add_parameter_server(format!("ps/{s}")))
        .collect();
    let channels: Vec<Vec<ChannelId>> = workers
        .iter()
        .map(|&w| ps.iter().map(|&s| b.add_channel(w, s)).collect())
        .collect();

    // Heterogeneity side tables. Skipped entirely for uniform specs so
    // homogeneous deployments build the exact graph they always did.
    if !spec.is_uniform() {
        for (w, &dev) in workers.iter().enumerate() {
            b.set_device_speed(dev, spec.worker_speed(w));
        }
        for (s, &dev) in ps.iter().enumerate() {
            b.set_device_speed(dev, spec.ps_speed(s));
        }
        for (w, row) in channels.iter().enumerate() {
            for (s, &ch) in row.iter().enumerate() {
                b.set_channel_bandwidth(ch, spec.link_bandwidth(w, s));
            }
        }
    }

    // Parameters and shards. Parameter and model-op names are interned
    // once up front; every op below carries a compact structured `OpName`
    // instead of a freshly formatted `String` — this loop used to be the
    // allocation hot spot of the whole deployment.
    let shard_of = spec.sharding.assign(model, spec.parameter_servers);
    let params: Vec<ParamId> = model
        .params()
        .iter()
        .map(|p| b.add_param(p.name(), p.bytes()))
        .collect();
    let param_names: Vec<NameId> = model.params().iter().map(|p| b.intern(p.name())).collect();
    let mop_names: Vec<NameId> = model.ops().iter().map(|o| b.intern(o.name())).collect();
    for (p, &shard) in params.iter().zip(&shard_of) {
        b.assign_param_to_ps(*p, ps[shard]);
    }

    // Gradient producers per parameter, computed once for all workers
    // (this was previously an O(params × ops) rescan per worker).
    let mut grad_producers: Vec<Vec<usize>> = vec![Vec::new(); model.params().len()];
    if model.is_training() {
        for (id, mop) in model.ops_enumerated() {
            for g in mop.produces_grads() {
                grad_producers[g.index()].push(id.index());
            }
        }
    }

    // PS-side read ops (one per parameter, shared by all workers).
    let read_ops: Vec<OpId> = model
        .params()
        .iter()
        .zip(&shard_of)
        .enumerate()
        .map(|(i, (spec_p, &shard))| {
            b.add_op_named(
                OpName::PsRead {
                    shard: shard as u32,
                    param: param_names[i],
                },
                ps[shard],
                OpKind::Read { param: params[i] },
                Cost::flops(spec_p.elems() as f64),
                &[],
            )
        })
        .collect();

    // Per-worker replicas.
    let mut recv_ops: Vec<Vec<OpId>> = Vec::with_capacity(spec.workers);
    // grad recvs at PS: grad_recvs[p] across workers.
    let mut grad_recvs: Vec<Vec<OpId>> = vec![Vec::new(); model.params().len()];
    // Dependency scratch, reused across every op of every replica.
    let mut deps: Vec<OpId> = Vec::new();

    for (w, &worker) in workers.iter().enumerate() {
        // Parameter transfers PS -> worker.
        let mut w_recvs = Vec::with_capacity(model.params().len());
        for (i, spec_p) in model.params().iter().enumerate() {
            let shard = shard_of[i];
            let ch = channels[w][shard];
            let send = b.add_op_named(
                OpName::PsSend {
                    shard: shard as u32,
                    param: param_names[i],
                    worker: w as u32,
                },
                ps[shard],
                OpKind::send(params[i], ch),
                Cost::bytes(spec_p.bytes()),
                &[read_ops[i]],
            );
            let recv = b.add_op_named(
                OpName::WorkerRecv {
                    worker: w as u32,
                    param: param_names[i],
                },
                worker,
                OpKind::recv(params[i], ch),
                Cost::bytes(spec_p.bytes()),
                &[send],
            );
            w_recvs.push(recv);
        }

        // Replica compute ops.
        let mut op_map: Vec<OpId> = Vec::with_capacity(model.ops().len());
        for (mi, mop) in model.ops().iter().enumerate() {
            deps.clear();
            deps.extend(mop.preds().iter().map(|p| op_map[p.index()]));
            deps.extend(mop.reads_params().iter().map(|p| w_recvs[p.index()]));
            let id = b.add_op_named(
                OpName::WorkerOp {
                    worker: w as u32,
                    op: mop_names[mi],
                },
                worker,
                OpKind::Compute,
                Cost::flops(mop.flops()),
                &deps,
            );
            op_map.push(id);
        }

        // Gradient path: worker send -> PS recv, per parameter.
        if model.is_training() {
            for (i, spec_p) in model.params().iter().enumerate() {
                if grad_producers[i].is_empty() {
                    continue;
                }
                deps.clear();
                deps.extend(grad_producers[i].iter().map(|&mi| op_map[mi]));
                let shard = shard_of[i];
                let ch = channels[w][shard];
                let send = b.add_op_named(
                    OpName::WorkerSendGrad {
                        worker: w as u32,
                        param: param_names[i],
                    },
                    worker,
                    OpKind::send(params[i], ch),
                    Cost::bytes(spec_p.bytes()),
                    &deps,
                );
                let recv = b.add_op_named(
                    OpName::PsRecvGrad {
                        shard: shard as u32,
                        param: param_names[i],
                        worker: w as u32,
                    },
                    ps[shard],
                    OpKind::recv(params[i], ch),
                    Cost::bytes(spec_p.bytes()),
                    &[send],
                );
                grad_recvs[i].push(recv);
            }
        }
        recv_ops.push(w_recvs);
    }

    // PS-side aggregation and update.
    if model.is_training() {
        for (i, spec_p) in model.params().iter().enumerate() {
            if grad_recvs[i].is_empty() {
                continue;
            }
            let shard = shard_of[i];
            let agg = b.add_op_named(
                OpName::PsAggregate {
                    shard: shard as u32,
                    param: param_names[i],
                },
                ps[shard],
                OpKind::Aggregate { param: params[i] },
                Cost::flops((spec_p.elems() * spec.workers as u64) as f64),
                &grad_recvs[i],
            );
            b.add_op_named(
                OpName::PsUpdate {
                    shard: shard as u32,
                    param: param_names[i],
                },
                ps[shard],
                OpKind::Update { param: params[i] },
                Cost::flops(2.0 * spec_p.elems() as f64),
                &[agg],
            );
        }
    }

    let graph = b.build()?;
    Ok(DeployedModel {
        graph,
        workers,
        parameter_servers: ps,
        recv_ops,
        channels,
        shard_of,
        training: model.is_training(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{tiny_mlp, Mode};

    fn mlp_cluster(workers: usize, servers: usize, mode: Mode) -> DeployedModel {
        let model = tiny_mlp(mode, 8);
        deploy(&model, &ClusterSpec::new(workers, servers)).unwrap()
    }

    #[test]
    fn training_deployment_has_five_ps_ops_per_param_per_shard() {
        let d = mlp_cluster(2, 1, Mode::Training);
        let g = d.graph();
        let n_params = 4; // tiny_mlp
        let ps_dev = d.parameter_servers()[0];
        let ps_ops: Vec<_> = g.ops_on(ps_dev).collect();
        // read + update + aggregate per param, send + recv per param per worker.
        let expected = n_params * (3 + 2 * 2);
        assert_eq!(ps_ops.len(), expected);
        // Worker recv roots: every param received by every worker.
        for w in 0..2 {
            assert_eq!(g.recv_ops_on(d.workers()[w]).len(), n_params);
        }
    }

    #[test]
    fn inference_deployment_has_no_gradient_path() {
        let d = mlp_cluster(2, 1, Mode::Inference);
        let g = d.graph();
        assert!(!d.is_training());
        // No aggregate/update ops anywhere.
        assert_eq!(
            g.count_ops(|o| matches!(o.kind(), OpKind::Aggregate { .. })),
            0
        );
        assert_eq!(
            g.count_ops(|o| matches!(o.kind(), OpKind::Update { .. })),
            0
        );
        // Workers send nothing.
        for &w in d.workers() {
            assert_eq!(
                g.ops_on(w).filter(|&id| g.op(id).kind().is_send()).count(),
                0
            );
        }
    }

    #[test]
    fn recv_ops_are_roots_within_worker_partition() {
        let d = mlp_cluster(3, 2, Mode::Training);
        let g = d.graph();
        for (w, &worker) in d.workers().iter().enumerate() {
            for recv in g.recv_ops_on(worker) {
                // The only predecessor is the PS-side send.
                for &p in g.preds(recv) {
                    assert!(g.device(g.op(p).device()).is_parameter_server());
                }
                // And it belongs to worker w.
                assert_eq!(g.op(recv).device(), worker);
            }
            let _ = w;
        }
    }

    #[test]
    fn channels_connect_each_pair_once() {
        let d = mlp_cluster(3, 2, Mode::Inference);
        let g = d.graph();
        assert_eq!(g.channels().len(), 6);
        for w in 0..3 {
            for s in 0..2 {
                let ch = d.channel(w, s);
                assert_eq!(g.channel(ch).worker(), d.workers()[w]);
                assert_eq!(g.channel(ch).ps(), d.parameter_servers()[s]);
            }
        }
    }

    #[test]
    fn sharding_spreads_bytes_across_servers() {
        let d = mlp_cluster(1, 2, Mode::Inference);
        let g = d.graph();
        let mut bytes = [0u64; 2];
        for (i, p) in g.params().iter().enumerate() {
            bytes[d.shard_of(ParamId::from_index(i))] += p.bytes();
        }
        assert!(bytes[0] > 0 && bytes[1] > 0, "both shards used: {bytes:?}");
    }

    #[test]
    fn replicate_schedule_copies_reference_priorities() {
        let d = mlp_cluster(3, 1, Mode::Inference);
        let schedule = tictac_sched::tic(d.graph(), d.workers()[0]);
        let replicated = d.replicate_schedule(&schedule);
        for p in 0..4 {
            let param = ParamId::from_index(p);
            let p0 = replicated.priority(d.recv_op(0, param).unwrap());
            assert!(p0.is_some());
            for w in 1..3 {
                let pw = replicated.priority(d.recv_op(w, param).unwrap());
                assert_eq!(p0, pw, "worker {w} param {p}");
            }
        }
    }

    #[test]
    fn graph_passes_validation_and_is_acyclic() {
        let d = mlp_cluster(4, 2, Mode::Training);
        assert!(d.graph().check().is_ok());
        assert!(tictac_graph::topo::is_acyclic(d.graph()));
    }

    #[test]
    fn rejects_empty_cluster_and_empty_model() {
        let model = tiny_mlp(Mode::Inference, 1);
        // `try_new` catches degenerate shapes before any model is in hand…
        assert_eq!(
            ClusterSpec::try_new(0, 1).unwrap_err(),
            ClusterSpecError::ZeroWorkers
        );
        assert_eq!(
            ClusterSpec::try_new(1, 0).unwrap_err(),
            ClusterSpecError::ZeroParameterServers
        );
        // …and `deploy` still guards hand-mutated specs (the public
        // shape fields stay writable; the builder is the validated path).
        let mut zero_workers = ClusterSpec::new(1, 1);
        zero_workers.workers = 0;
        assert_eq!(
            deploy(&model, &zero_workers).unwrap_err(),
            DeployError::EmptyCluster
        );
    }

    #[test]
    #[should_panic(expected = "at least one parameter server")]
    fn new_panics_on_degenerate_shape() {
        ClusterSpec::new(4, 0);
    }

    #[test]
    fn rejects_more_shards_than_params() {
        // tiny_mlp has 4 parameters; 5 shards would leave one idle.
        let model = tiny_mlp(Mode::Training, 1);
        assert_eq!(
            deploy(&model, &ClusterSpec::new(2, 5)).unwrap_err(),
            DeployError::ShardsExceedParams {
                shards: 5,
                params: 4
            }
        );
        assert!(deploy(&model, &ClusterSpec::new(2, 4)).is_ok());
    }

    #[test]
    fn validates_thousand_worker_shapes() {
        // The scale sweep's largest shape must pass spec validation.
        let spec = ClusterSpec::try_new(1024, 16).unwrap();
        assert_eq!(spec.workers, 1024);
        assert_eq!(spec.parameter_servers, 16);
    }

    #[test]
    fn builder_with_unit_factors_equals_uniform_spec() {
        let built = ClusterSpec::builder()
            .workers(4)
            .parameter_servers(2)
            .worker_speeds(vec![1.0; 4])
            .ps_speeds(vec![1.0; 2])
            .link_bandwidths(vec![1.0; 4])
            .build()
            .unwrap();
        let plain = ClusterSpec::new(4, 2);
        assert_eq!(built, plain);
        assert!(built.is_uniform());
        use std::hash::{Hash, Hasher};
        let h = |s: &ClusterSpec| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&built), h(&plain));
    }

    #[test]
    fn builder_rejects_bad_factors() {
        let base = || ClusterSpec::builder().workers(2).parameter_servers(1);
        assert_eq!(
            base().worker_speeds(vec![1.0]).build().unwrap_err(),
            ClusterSpecError::FactorLength {
                field: "worker_speeds",
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            base().ps_speeds(vec![0.0]).build().unwrap_err(),
            ClusterSpecError::NonPositiveFactor {
                field: "ps_speeds",
                value: 0.0
            }
        );
        assert!(matches!(
            base().link_bandwidths(vec![f64::NAN, 1.0]).build(),
            Err(ClusterSpecError::NonPositiveFactor { .. })
        ));
        assert_eq!(
            ClusterSpec::builder().parameter_servers(1).build(),
            Err(ClusterSpecError::ZeroWorkers)
        );
    }

    #[test]
    fn heterogeneous_spec_lowers_into_graph_side_tables() {
        let spec = ClusterSpec::builder()
            .workers(2)
            .parameter_servers(2)
            .worker_speeds(vec![1.0, 0.5])
            .ps_speeds(vec![2.0, 1.0])
            .link_bandwidths(vec![1.0, 0.25]) // per-worker uplinks
            .build()
            .unwrap();
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &spec).unwrap();
        let g = d.graph();
        assert!(!g.is_uniform());
        assert_eq!(g.device_speed(d.workers()[0]), 1.0);
        assert_eq!(g.device_speed(d.workers()[1]), 0.5);
        assert_eq!(g.device_speed(d.parameter_servers()[0]), 2.0);
        // Worker 1's channels to both shards inherit its uplink factor.
        assert_eq!(g.channel_bandwidth(d.channel(1, 0)), 0.25);
        assert_eq!(g.channel_bandwidth(d.channel(1, 1)), 0.25);
        assert_eq!(g.channel_bandwidth(d.channel(0, 0)), 1.0);

        // Full-matrix form targets a single link.
        let spec = ClusterSpec::builder()
            .workers(2)
            .parameter_servers(2)
            .link_bandwidths(vec![1.0, 1.0, 1.0, 4.0])
            .build()
            .unwrap();
        let d = deploy(&model, &spec).unwrap();
        assert_eq!(d.graph().channel_bandwidth(d.channel(1, 1)), 4.0);
        assert_eq!(d.graph().channel_bandwidth(d.channel(1, 0)), 1.0);
    }

    #[test]
    fn uniform_spec_lowers_to_uniform_graph() {
        let d = mlp_cluster(3, 2, Mode::Training);
        assert!(d.graph().is_uniform());
    }

    #[test]
    fn shard_bytes_account_for_every_parameter() {
        let d = mlp_cluster(2, 2, Mode::Training);
        let bytes = d.shard_bytes();
        assert_eq!(bytes.len(), 2);
        let total: u64 = d.graph().params().iter().map(|p| p.bytes()).sum();
        assert_eq!(bytes.iter().sum::<u64>(), total);
        let hottest = d.hottest_shard();
        assert_eq!(bytes[hottest], bytes.iter().copied().max().unwrap());
    }

    #[test]
    fn hottest_shard_ties_break_to_the_lowest_index() {
        // Two equal-size parameters across two shards: both shards host
        // the same byte count, so the tie must resolve to shard 0.
        let mut b = tictac_graph::ModelGraphBuilder::new("tie", 1);
        let w1 = b.add_param("a/w", vec![256]);
        let w2 = b.add_param("b/w", vec![256]);
        let f = b.add_op(
            "f",
            tictac_graph::ModelOpKind::Forward,
            1.0,
            &[],
            &[w1, w2],
            &[],
        );
        b.add_op("loss", tictac_graph::ModelOpKind::Loss, 1.0, &[f], &[], &[]);
        let d = deploy(&b.build(), &ClusterSpec::new(1, 2)).unwrap();
        let bytes = d.shard_bytes();
        assert_eq!(bytes[0], bytes[1], "setup: shards must tie");
        assert_eq!(d.hottest_shard(), 0);
    }

    #[test]
    fn ops_per_worker_counts_partition_size() {
        let d = mlp_cluster(2, 1, Mode::Training);
        let g = d.graph();
        assert_eq!(d.ops_per_worker(), g.ops_on(d.workers()[0]).count());
        assert!(d.ops_per_worker() > 10);
    }
}
