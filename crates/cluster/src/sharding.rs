//! Parameter-to-PS sharding policies.

use serde::{Deserialize, Serialize};
use tictac_graph::ModelGraph;

/// How parameters are assigned to parameter-server shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sharding {
    /// Greedy size-balanced assignment (longest-processing-time first):
    /// parameters are placed, largest first, on the currently lightest
    /// shard. This is how production PS setups balance network load and is
    /// the default.
    #[default]
    SizeBalanced,
    /// Round-robin by declaration order, ignoring sizes (TensorFlow's
    /// default `replica_device_setter` strategy). Kept for ablations.
    RoundRobin,
}

impl Sharding {
    /// Computes the shard index of every parameter.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn assign(self, model: &ModelGraph, shards: usize) -> Vec<usize> {
        let bytes: Vec<u64> = model.params().iter().map(|p| p.bytes()).collect();
        self.assign_weighted(&bytes, shards)
    }

    /// Computes the shard index of every transfer unit, given unit byte
    /// sizes directly. [`Sharding::assign`] delegates here with one unit
    /// per parameter; the partition pass calls it with chunked units so a
    /// split tensor's chunks can land on different shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn assign_weighted(self, bytes: &[u64], shards: usize) -> Vec<usize> {
        assert!(shards > 0, "at least one shard required");
        let n = bytes.len();
        match self {
            Sharding::RoundRobin => (0..n).map(|i| i % shards).collect(),
            Sharding::SizeBalanced => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(bytes[i]));
                let mut load = vec![0u64; shards];
                let mut assignment = vec![0usize; n];
                for i in order {
                    let lightest = (0..shards).min_by_key(|&s| load[s]).expect("shards > 0");
                    assignment[i] = lightest;
                    load[lightest] += bytes[i];
                }
                assignment
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{Mode, Model};

    #[test]
    fn round_robin_cycles() {
        let m = tictac_models::tiny_mlp(Mode::Inference, 1);
        assert_eq!(Sharding::RoundRobin.assign(&m, 3), vec![0, 1, 2, 0]);
        assert_eq!(Sharding::RoundRobin.assign(&m, 1), vec![0, 0, 0, 0]);
    }

    #[test]
    fn size_balanced_beats_round_robin_on_skewed_models() {
        // VGG-16's parameters are dominated by fc6: size balancing should
        // spread bytes much more evenly than round-robin.
        let m = Model::Vgg16.build_with_batch(Mode::Inference, 2);
        let imbalance = |assignment: &[usize], shards: usize| -> f64 {
            let mut load = vec![0u64; shards];
            for (i, &s) in assignment.iter().enumerate() {
                load[s] += m.params()[i].bytes();
            }
            let max = *load.iter().max().unwrap() as f64;
            let avg = load.iter().sum::<u64>() as f64 / shards as f64;
            max / avg
        };
        let balanced = imbalance(&Sharding::SizeBalanced.assign(&m, 4), 4);
        let rr = imbalance(&Sharding::RoundRobin.assign(&m, 4), 4);
        assert!(balanced <= rr, "balanced {balanced:.3} vs rr {rr:.3}");
        // VGG-16's fc6 holds ~74% of all bytes, so the best achievable
        // max/avg with 4 shards is bounded below by that one tensor.
        let total: u64 = m.params().iter().map(|p| p.bytes()).sum();
        let largest = m.params().iter().map(|p| p.bytes()).max().unwrap();
        let optimum = largest as f64 / (total as f64 / 4.0);
        assert!(
            balanced <= optimum.max(1.0) + 0.05,
            "balanced imbalance {balanced:.3} vs optimum {optimum:.3}"
        );
    }

    #[test]
    fn every_param_is_assigned_in_range() {
        let m = Model::InceptionV1.build_with_batch(Mode::Inference, 2);
        for sharding in [Sharding::SizeBalanced, Sharding::RoundRobin] {
            let a = sharding.assign(&m, 4);
            assert_eq!(a.len(), m.params().len());
            assert!(a.iter().all(|&s| s < 4));
        }
    }
}
