//! Pluggable execution backends behind the [`Session`] API.
//!
//! A backend turns one iteration of a deployed model plus a schedule into
//! an [`ExecutionTrace`]. Two implementations ship:
//!
//! * [`SimBackend`] — the discrete-event simulator (`tictac-sim`). The
//!   default; deterministic, virtual-time, supports fault injection and
//!   noise. Traces are byte-identical to the pre-backend-API sessions.
//! * [`ThreadedBackend`] — the in-process multi-threaded runtime
//!   (`tictac-exec`): real OS threads per device and channel, prioritized
//!   queues with sender-side rank enforcement, wall-clock timestamps.
//!
//! Both emit the same trace type, so every downstream consumer — metrics,
//! `tictac-obs` analyzers, Perfetto export — works on either unchanged.
//! Select with [`SessionBuilder::backend`].
//!
//! [`Session`]: crate::Session
//! [`SessionBuilder::backend`]: crate::SessionBuilder::backend

use std::fmt;

use std::sync::{Arc, Mutex};

use tictac_cluster::DeployedModel;
use tictac_exec::{
    run_iteration_injected, run_iteration_with_plan, ExecOptions, ExecPlan, FaultPlan, RuntimeError,
};
use tictac_obs::Registry;
use tictac_sched::Schedule;
use tictac_sim::{try_simulate_observed, FaultSpec, SimConfig, SimError};
use tictac_trace::{ExecutionTrace, FaultCounters};

/// The clock domain a backend's trace timestamps live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeDomain {
    /// Deterministic simulated time (event-engine ticks).
    Virtual,
    /// Real elapsed time (nanoseconds since iteration start).
    WallClock,
}

/// An iteration failure from whichever backend ran it.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The simulator failed (retry exhaustion, deadlock, mismatch).
    Sim(SimError),
    /// The threaded runtime failed (stall, mismatch).
    Runtime(RuntimeError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExecError::Runtime(e) => write!(f, "threaded execution failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::Runtime(e) => Some(e),
        }
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<RuntimeError> for ExecError {
    fn from(e: RuntimeError) -> Self {
        ExecError::Runtime(e)
    }
}

/// An engine that executes one iteration and produces a trace.
///
/// Implementations must be deterministic *given their domain*: the
/// simulator reproduces byte-identical traces for identical inputs; the
/// threaded runtime reproduces identical *orderings* under enforcement
/// while timestamps carry real jitter.
pub trait ExecutionBackend: fmt::Debug + Send + Sync {
    /// Short lowercase backend name (e.g. `"sim"`), for display and trace
    /// labels.
    fn name(&self) -> &'static str;

    /// The clock domain of emitted timestamps.
    fn time_domain(&self) -> TimeDomain;

    /// Executes iteration `iteration` of `deployed` under `schedule`.
    ///
    /// `registry`, when enabled, receives backend-internal metrics;
    /// observation must never perturb the trace.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] for unrecoverable iterations.
    fn execute(
        &self,
        deployed: &DeployedModel,
        schedule: &Schedule,
        iteration: u64,
        registry: &Registry,
    ) -> Result<ExecutionTrace, ExecError>;
}

/// The discrete-event simulator backend (the default).
#[derive(Debug, Clone)]
pub struct SimBackend {
    config: SimConfig,
}

impl SimBackend {
    /// A simulator backend running under `config` (platform, noise,
    /// faults, seed).
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn time_domain(&self) -> TimeDomain {
        TimeDomain::Virtual
    }

    fn execute(
        &self,
        deployed: &DeployedModel,
        schedule: &Schedule,
        iteration: u64,
        registry: &Registry,
    ) -> Result<ExecutionTrace, ExecError> {
        try_simulate_observed(
            deployed.graph(),
            schedule,
            &self.config,
            iteration,
            registry,
        )
        .map_err(ExecError::Sim)
    }
}

/// The multi-threaded runtime backend: OS threads, prioritized channel
/// queues with sender-side enforcement, wall-clock timestamps.
///
/// Seeded faults configured on the session's [`SimConfig`] *do* apply
/// here: the same [`FaultPlan`] the simulator samples for `(seed,
/// iteration)` is injected on the wall clock (timer-driven retransmits,
/// real thread kills and respawns). Modeled noise and reorder errors do
/// not — a threaded run's variance is physical — and
/// [`ThreadedBackend::from_config`] rejects settings it cannot honor
/// rather than silently dropping them. Schedules (including TAC's
/// profiled one) are identical across backends, so sim and threaded runs
/// of one session are directly comparable.
#[derive(Debug)]
pub struct ThreadedBackend {
    opts: ExecOptions,
    /// Fault model sampled per iteration ([`FaultSpec::none`] = quiet).
    faults: FaultSpec,
    /// Base seed of the per-iteration fault plans (the simulator's
    /// `SimConfig::seed`, so both backends draw identical plans).
    fault_seed: u64,
    /// Single-entry [`ExecPlan`] cache keyed by [`ExecPlan::key`]: a
    /// session runs many iterations of one `(graph, schedule)` pair, so
    /// the schedule-derived setup (per-channel rank sort, send pairing,
    /// platform clone) is done once instead of once per iteration.
    plan: Mutex<Option<(u64, Arc<ExecPlan>)>>,
}

impl Clone for ThreadedBackend {
    /// Clones the options; the plan cache starts empty (it repopulates on
    /// the clone's first iteration).
    fn clone(&self) -> Self {
        Self {
            opts: self.opts.clone(),
            faults: self.faults.clone(),
            fault_seed: self.fault_seed,
            plan: Mutex::new(None),
        }
    }
}

impl ThreadedBackend {
    /// A threaded backend with default options (cloud-GPU platform,
    /// enforcement on, 1:1 time scale, 30 s watchdog, no faults).
    pub fn new() -> Self {
        Self {
            opts: ExecOptions::default(),
            faults: FaultSpec::none(),
            fault_seed: tictac_sim::DEFAULT_SEED,
            plan: Mutex::new(None),
        }
    }

    /// A threaded backend honoring `config`: same platform (so the
    /// busy-loops replay the durations the simulator models), same
    /// bandwidth-share override, same enforcement flag, and the same
    /// fault spec + seed (so both backends sample identical
    /// [`FaultPlan`]s per iteration).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnsupportedConfig`] for knobs the wall clock
    /// cannot honor, instead of silently ignoring them:
    ///
    /// * `reorder_error > 0.01` — the runtime does not inject artificial
    ///   reorders; rates up to the paper's measured gRPC level (§5.1) are
    ///   adequately represented by physical hand-off jitter, larger ones
    ///   are not.
    /// * heavy [`NoiseModel`]s (`sigma > 0.1` or worker-slowdown
    ///   probability above 5%) — modeled noise cannot be replayed by
    ///   calibrated busy-loops; the presets' mild noise is subsumed by
    ///   physical jitter.
    ///
    /// [`NoiseModel`]: tictac_timing::NoiseModel
    pub fn from_config(config: &SimConfig) -> Result<Self, RuntimeError> {
        if config.reorder_error > 0.01 {
            return Err(RuntimeError::UnsupportedConfig {
                knob: "reorder_error",
                reason: format!(
                    "injected reorder rate {} exceeds what physical hand-off jitter \
                     reproduces (max 0.01)",
                    config.reorder_error
                ),
            });
        }
        if config.noise.sigma() > 0.1 || config.noise.slowdown_prob() > 0.05 {
            return Err(RuntimeError::UnsupportedConfig {
                knob: "noise",
                reason: format!(
                    "modeled noise (sigma {}, slowdown prob {}) is too heavy to be \
                     replayed by wall-clock busy-loops",
                    config.noise.sigma(),
                    config.noise.slowdown_prob()
                ),
            });
        }
        let mut opts =
            ExecOptions::new(config.platform.clone()).with_enforcement(config.enforcement);
        if let Some(share) = config.bandwidth_share_override {
            opts = opts.with_bandwidth_share(share);
        }
        Ok(Self {
            opts,
            faults: config.faults.clone(),
            fault_seed: config.seed,
            plan: Mutex::new(None),
        })
    }

    /// Overrides the fault-injection model.
    #[must_use]
    pub fn with_fault_spec(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the base seed of per-iteration fault plans.
    #[must_use]
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Scales every modeled duration by `scale` (smaller = faster wall
    /// clock, larger relative scheduling overhead).
    #[must_use]
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.opts = self.opts.with_time_scale(scale);
        self
    }

    /// Enables or disables sender-side rank enforcement (§5.1).
    #[must_use]
    pub fn with_enforcement(mut self, on: bool) -> Self {
        self.opts = self.opts.with_enforcement(on);
        self
    }

    /// Sets the per-iteration stall watchdog.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: std::time::Duration) -> Self {
        self.opts = self.opts.with_watchdog(watchdog);
        self
    }

    /// Sets the base seed of the unprioritized-pop shuffle. Each
    /// iteration folds its index into this seed, so the baseline's
    /// transfer order is arbitrary *and unique per iteration* — the
    /// paper's observed DAG-framework behavior (§3).
    #[must_use]
    pub fn with_shuffle_seed(mut self, seed: u64) -> Self {
        self.opts = self.opts.with_shuffle_seed(seed);
        self
    }

    /// The underlying runtime options.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }
}

impl Default for ThreadedBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn time_domain(&self) -> TimeDomain {
        TimeDomain::WallClock
    }

    fn execute(
        &self,
        deployed: &DeployedModel,
        schedule: &Schedule,
        iteration: u64,
        registry: &Registry,
    ) -> Result<ExecutionTrace, ExecError> {
        let started = std::time::Instant::now();
        // Fold the iteration index into the shuffle seed: unprioritized
        // queue pops land in a fresh arbitrary order every iteration,
        // matching the paper's baseline observation (unique transfer
        // order in every run). Ranked transfers are unaffected.
        let opts = self.opts.clone().with_shuffle_seed(
            self.opts.shuffle_seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Reuse the schedule-derived plan across iterations; rebuild only
        // when a different (graph, schedule) pair arrives. The shuffle
        // seed folded above does not enter the plan.
        let key = ExecPlan::key(deployed.graph(), schedule);
        let plan = {
            let mut cached = self.plan.lock().unwrap_or_else(|e| e.into_inner());
            match cached.as_ref() {
                Some((k, plan)) if *k == key => Arc::clone(plan),
                _ => {
                    let plan = Arc::new(
                        ExecPlan::new(deployed.graph(), schedule, &self.opts)
                            .map_err(ExecError::Runtime)?,
                    );
                    registry.counter("exec.plan.builds").inc();
                    *cached = Some((key, Arc::clone(&plan)));
                    plan
                }
            }
        };
        let trace = if self.faults.is_quiet() {
            run_iteration_with_plan(deployed.graph(), schedule, &opts, &plan)
                .map_err(ExecError::Runtime)?
        } else {
            // Same (spec, graph, seed, iteration) key as the simulator:
            // identical seeds inject the identical fault set.
            let fault_plan =
                FaultPlan::sample(&self.faults, deployed.graph(), self.fault_seed, iteration);
            let trace =
                run_iteration_injected(deployed.graph(), schedule, &opts, &plan, &fault_plan)
                    .map_err(ExecError::Runtime)?;
            let c = FaultCounters::from_trace(&trace);
            registry.counter("exec.faults.drops").add(c.drops);
            registry
                .counter("exec.faults.retransmits")
                .add(c.retransmits);
            registry.counter("exec.faults.crashes").add(c.crashes);
            registry.counter("exec.faults.blackouts").add(c.blackouts);
            registry
                .counter("exec.faults.deferred_ops")
                .add(c.deferred_ops);
            trace
        };
        registry.counter("exec.iterations").inc();
        registry
            .histogram("exec.wall_us", &WALL_BUCKETS_US)
            .observe(started.elapsed().as_micros() as u64);
        Ok(trace)
    }
}

/// Wall-clock histogram bounds, decades from 100 µs to 1000 s.
const WALL_BUCKETS_US: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::no_ordering;

    #[test]
    fn backends_emit_complete_traces_of_the_same_graph() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let s = no_ordering(d.graph());
        let reg = Registry::disabled();

        let sim: Box<dyn ExecutionBackend> = Box::new(SimBackend::new(SimConfig::cloud_gpu()));
        let thr: Box<dyn ExecutionBackend> = Box::new(
            ThreadedBackend::from_config(&SimConfig::cloud_gpu())
                .expect("preset config is supported")
                .with_time_scale(0.5),
        );
        assert_eq!(sim.time_domain(), TimeDomain::Virtual);
        assert_eq!(thr.time_domain(), TimeDomain::WallClock);
        for b in [&sim, &thr] {
            let trace = b.execute(&d, &s, 0, &reg).unwrap();
            assert_eq!(
                trace.executed_ops(),
                d.graph().len(),
                "backend {}",
                b.name()
            );
        }
    }

    #[test]
    fn from_config_carries_the_bandwidth_share_override() {
        let config = SimConfig::cloud_gpu().with_bandwidth_share(3.5);
        let thr = ThreadedBackend::from_config(&config).expect("preset config is supported");
        assert_eq!(thr.options().bandwidth_share, Some(3.5));
        let plain = ThreadedBackend::from_config(&SimConfig::cloud_gpu())
            .expect("preset config is supported");
        assert_eq!(plain.options().bandwidth_share, None);
    }

    #[test]
    fn threaded_backend_builds_one_plan_for_many_iterations() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let s = no_ordering(d.graph());
        let reg = Registry::enabled();
        let thr = ThreadedBackend::from_config(&SimConfig::cloud_gpu())
            .expect("preset config is supported")
            .with_time_scale(0.1);
        for i in 0..3 {
            thr.execute(&d, &s, i, &reg).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("exec.iterations"), Some(3));
        assert_eq!(
            snap.counter("exec.plan.builds"),
            Some(1),
            "iterations of one schedule must share one plan"
        );
        // A clone starts with a cold cache and rebuilds once.
        let cloned = thr.clone();
        cloned.execute(&d, &s, 0, &reg).unwrap();
        assert_eq!(reg.snapshot().counter("exec.plan.builds"), Some(2));
    }

    #[test]
    fn exec_errors_wrap_and_display_both_sources() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let bad = Schedule::empty(d.graph().len() + 7);
        let reg = Registry::disabled();

        let sim = SimBackend::new(SimConfig::cloud_gpu());
        match sim.execute(&d, &bad, 0, &reg) {
            Err(e @ ExecError::Sim(SimError::ScheduleMismatch { .. })) => {
                assert!(e.to_string().contains("simulation failed"));
            }
            other => panic!("expected sim mismatch, got {other:?}"),
        }
        let thr = ThreadedBackend::new();
        match thr.execute(&d, &bad, 0, &reg) {
            Err(e @ ExecError::Runtime(RuntimeError::ScheduleMismatch { .. })) => {
                assert!(e.to_string().contains("threaded execution failed"));
            }
            other => panic!("expected runtime mismatch, got {other:?}"),
        }
    }
}
