//! Process-wide memoization of deployment and schedule derivation.
//!
//! Deploying a model onto a cluster and deriving its TIC/TAC schedule are
//! pure functions of `(model, cluster, scheduler, simulation config)` —
//! the repro sweeps re-derive the same handful of deployments hundreds of
//! times (four policies × many grid points per model). The [`DeployCache`]
//! memoizes both levels behind `Arc`s so every [`Session`] sharing a
//! configuration also shares one deployed graph and one schedule vector:
//!
//! * **deploy level** — keyed by `(model fingerprint, ClusterSpec)`;
//! * **schedule level** — additionally keyed by the [`SchedulerKind`] and
//!   a hash of every schedule-relevant part of the [`SimConfig`].
//!
//! Two invariants keep hits byte-identical to cold computation:
//!
//! 1. Fault injection never reaches schedule derivation (TAC profiles
//!    fault-free, §5), so the config hash is taken with the fault spec
//!    normalized away — sessions that differ only in faults share a
//!    schedule, exactly as they would when computed cold.
//! 2. An *enabled* metrics [`Registry`] bypasses the schedule-cache read:
//!    observed sessions always re-derive so `sched.*` counters fire, and
//!    since observation never perturbs the result, the recomputed
//!    schedule matches the cached one bit for bit.
//!
//! [`Session`]: crate::Session

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tictac_cluster::{deploy, ClusterSpec, DeployError, DeployedModel};
use tictac_graph::ModelGraph;
use tictac_obs::Registry;
use tictac_sched::Schedule;
use tictac_sim::{FaultSpec, SimConfig};

use crate::session::{compute_schedule, SchedulerKind};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DeployKey {
    fingerprint: u64,
    cluster: ClusterSpec,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SchedKey {
    deploy: DeployKey,
    scheduler: SchedulerKind,
    config_hash: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EvalKey {
    sched: SchedKey,
    samples: u32,
}

/// Hit/miss counters of a [`DeployCache`], one pair per level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Deployments served from the cache.
    pub deploy_hits: u64,
    /// Deployments computed cold.
    pub deploy_misses: u64,
    /// Schedules served from the cache.
    pub schedule_hits: u64,
    /// Schedules computed cold (observed sessions always count here).
    pub schedule_misses: u64,
    /// Tuning evaluations served from the cache (warm re-tunes).
    pub eval_hits: u64,
    /// Tuning evaluations simulated cold.
    pub eval_misses: u64,
}

/// FNV-1a over the `Debug` rendering of the config with faults stripped:
/// everything that can influence schedule derivation (platform constants,
/// noise model, seed) and nothing that cannot.
fn schedule_config_hash(config: &SimConfig) -> u64 {
    let normalized = config.clone().with_faults(FaultSpec::none());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{normalized:?}").bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A two-level deploy/schedule memoizer. See the module docs.
///
/// `Session::builder(..).build()` consults the process-wide
/// [`DeployCache::global`] instance automatically; standalone handles
/// ([`DeployCache::new`]) exist for tests that need isolation.
#[derive(Debug, Default)]
pub struct DeployCache {
    deploys: Mutex<HashMap<DeployKey, Arc<DeployedModel>>>,
    schedules: Mutex<HashMap<SchedKey, Arc<Schedule>>>,
    evals: Mutex<HashMap<EvalKey, f64>>,
    deploy_hits: AtomicU64,
    deploy_misses: AtomicU64,
    schedule_hits: AtomicU64,
    schedule_misses: AtomicU64,
    eval_hits: AtomicU64,
    eval_misses: AtomicU64,
}

impl DeployCache {
    /// An empty, private cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache every session builder goes through.
    pub fn global() -> &'static DeployCache {
        static GLOBAL: OnceLock<DeployCache> = OnceLock::new();
        GLOBAL.get_or_init(DeployCache::new)
    }

    /// Deploys `model` onto `cluster`, or returns the shared deployment
    /// if this `(model, cluster)` pair was deployed before.
    ///
    /// The expensive computation runs outside the cache lock, so parallel
    /// sweeps never serialize on a miss; concurrent misses of the same
    /// key deploy redundantly and the first insertion wins.
    ///
    /// # Errors
    ///
    /// Returns a [`DeployError`] if the cluster spec or model is invalid.
    pub fn deploy(
        &self,
        model: &ModelGraph,
        cluster: &ClusterSpec,
    ) -> Result<Arc<DeployedModel>, DeployError> {
        let key = DeployKey {
            fingerprint: model.fingerprint(),
            cluster: cluster.clone(),
        };
        if let Some(hit) = lock(&self.deploys).get(&key) {
            self.deploy_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.deploy_misses.fetch_add(1, Ordering::Relaxed);
        let deployed = Arc::new(deploy(model, cluster)?);
        Ok(Arc::clone(
            lock(&self.deploys).entry(key).or_insert(deployed),
        ))
    }

    /// Deploys `model` and derives its schedule, serving both from the
    /// cache where possible.
    ///
    /// An enabled `registry` bypasses the schedule-cache *read* (so
    /// `sched.*` metrics observe a real derivation) but still populates
    /// the cache: observation never changes the derived schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`DeployError`] if the cluster spec or model is invalid.
    pub fn schedule(
        &self,
        model: &ModelGraph,
        cluster: &ClusterSpec,
        scheduler: SchedulerKind,
        config: &SimConfig,
        registry: &Registry,
    ) -> Result<(Arc<DeployedModel>, Arc<Schedule>), DeployError> {
        let deployed = self.deploy(model, cluster)?;
        let key = SchedKey {
            deploy: DeployKey {
                fingerprint: model.fingerprint(),
                cluster: cluster.clone(),
            },
            scheduler,
            config_hash: schedule_config_hash(config),
        };
        if !registry.is_enabled() {
            if let Some(hit) = lock(&self.schedules).get(&key) {
                self.schedule_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((deployed, Arc::clone(hit)));
            }
        }
        self.schedule_misses.fetch_add(1, Ordering::Relaxed);
        let schedule = Arc::new(compute_schedule(&deployed, scheduler, config, registry));
        let shared = Arc::clone(lock(&self.schedules).entry(key).or_insert(schedule));
        Ok((deployed, shared))
    }

    /// Memoizes one communication-tuning evaluation: the makespan metric
    /// of `(model, cluster, scheduler, config)` measured over `samples`
    /// fault-free iterations. A hit skips deployment, scheduling *and*
    /// simulation — this is what makes warm re-tunes effectively free.
    ///
    /// `compute` receives the shared deployment and schedule and runs
    /// outside the cache lock.
    ///
    /// # Errors
    ///
    /// Returns a [`DeployError`] if the cluster spec or model is invalid.
    pub fn tune_eval<F>(
        &self,
        model: &ModelGraph,
        cluster: &ClusterSpec,
        scheduler: SchedulerKind,
        config: &SimConfig,
        samples: u32,
        compute: F,
    ) -> Result<f64, DeployError>
    where
        F: FnOnce(&DeployedModel, &Schedule) -> f64,
    {
        let key = EvalKey {
            sched: SchedKey {
                deploy: DeployKey {
                    fingerprint: model.fingerprint(),
                    cluster: cluster.clone(),
                },
                scheduler,
                config_hash: schedule_config_hash(config),
            },
            samples,
        };
        if let Some(&hit) = lock(&self.evals).get(&key) {
            self.eval_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.eval_misses.fetch_add(1, Ordering::Relaxed);
        let (deployed, schedule) =
            self.schedule(model, cluster, scheduler, config, &Registry::disabled())?;
        let value = compute(&deployed, &schedule);
        lock(&self.evals).insert(key, value);
        Ok(value)
    }

    /// Hit/miss counters since construction (or the process start, for
    /// the global cache).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            deploy_hits: self.deploy_hits.load(Ordering::Relaxed),
            deploy_misses: self.deploy_misses.load(Ordering::Relaxed),
            schedule_hits: self.schedule_hits.load(Ordering::Relaxed),
            schedule_misses: self.schedule_misses.load(Ordering::Relaxed),
            eval_hits: self.eval_hits.load(Ordering::Relaxed),
            eval_misses: self.eval_misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached deployment, schedule and tuning evaluation
    /// (counters are kept).
    pub fn clear(&self) {
        lock(&self.deploys).clear();
        lock(&self.schedules).clear();
        lock(&self.evals).clear();
    }
}

/// Locks a cache level; a poisoned lock only means another thread
/// panicked mid-insert on this `HashMap` of immutable `Arc`s, so the data
/// is still consistent and the lock is recovered.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{tiny_mlp, Mode};

    #[test]
    fn deploy_hits_share_one_arc() {
        let cache = DeployCache::new();
        let model = tiny_mlp(Mode::Training, 8);
        let spec = ClusterSpec::new(2, 1);
        let a = cache.deploy(&model, &spec).unwrap();
        let b = cache.deploy(&model, &spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.deploy_hits, stats.deploy_misses), (1, 1));
    }

    #[test]
    fn schedule_hits_share_one_arc_and_differ_by_key() {
        let cache = DeployCache::new();
        let model = tiny_mlp(Mode::Training, 8);
        let spec = ClusterSpec::new(2, 1);
        let config = SimConfig::cloud_gpu();
        let registry = Registry::disabled();
        let (_, a) = cache
            .schedule(&model, &spec, SchedulerKind::Tac, &config, &registry)
            .unwrap();
        let (_, b) = cache
            .schedule(&model, &spec, SchedulerKind::Tac, &config, &registry)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A different policy or cluster misses.
        let (_, c) = cache
            .schedule(&model, &spec, SchedulerKind::Tic, &config, &registry)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let (_, d) = cache
            .schedule(
                &model,
                &ClusterSpec::new(3, 1),
                SchedulerKind::Tac,
                &config,
                &registry,
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn fault_spec_does_not_split_the_schedule_key() {
        use tictac_timing::{RetryPolicy, SimDuration};
        let faulty = SimConfig::cloud_gpu().with_faults(
            FaultSpec::none()
                .with_drop_prob(0.5)
                .with_retry(RetryPolicy::fixed(SimDuration::from_micros(50), 40)),
        );
        assert_eq!(
            schedule_config_hash(&SimConfig::cloud_gpu()),
            schedule_config_hash(&faulty),
            "schedule derivation is fault-blind, so the key must be too"
        );
        let mut other = SimConfig::cloud_gpu();
        other.seed ^= 1;
        assert_ne!(
            schedule_config_hash(&SimConfig::cloud_gpu()),
            schedule_config_hash(&other),
            "the seed feeds the Random policy and must split the key"
        );
    }

    #[test]
    fn tune_evals_memoize_and_split_by_comm_config() {
        use tictac_cluster::CommConfig;
        let cache = DeployCache::new();
        let model = tiny_mlp(Mode::Training, 8);
        let config = SimConfig::cloud_gpu();
        let spec = ClusterSpec::new(2, 1);
        let v1 = cache
            .tune_eval(&model, &spec, SchedulerKind::Tac, &config, 2, |d, s| {
                assert_eq!(s.len(), d.graph().len());
                1.5
            })
            .unwrap();
        let v2 = cache
            .tune_eval(&model, &spec, SchedulerKind::Tac, &config, 2, |_, _| {
                panic!("warm re-tune must be served from the cache")
            })
            .unwrap();
        assert_eq!(v1, v2);
        // A different comm granularity must not alias.
        let tuned = spec
            .clone()
            .with_comm(CommConfig::default().with_fusion_bytes(Some(1024)));
        let v3 = cache
            .tune_eval(&model, &tuned, SchedulerKind::Tac, &config, 2, |_, _| 2.5)
            .unwrap();
        assert_eq!(v3, 2.5);
        let stats = cache.stats();
        assert_eq!((stats.eval_hits, stats.eval_misses), (1, 2));
    }

    #[test]
    fn enabled_registry_bypasses_the_cached_read() {
        let cache = DeployCache::new();
        let model = tiny_mlp(Mode::Training, 8);
        let spec = ClusterSpec::new(2, 1);
        let config = SimConfig::cloud_gpu();
        let (_, cold) = cache
            .schedule(
                &model,
                &spec,
                SchedulerKind::Tac,
                &config,
                &Registry::disabled(),
            )
            .unwrap();
        let registry = Registry::enabled();
        let (_, observed) = cache
            .schedule(&model, &spec, SchedulerKind::Tac, &config, &registry)
            .unwrap();
        assert_eq!(*cold, *observed, "observation never changes the result");
        assert!(
            registry.snapshot().counter("sched.tac.merges").is_some(),
            "observed derivation must actually run"
        );
        assert_eq!(cache.stats().schedule_misses, 2, "bypass counts as a miss");
    }
}
