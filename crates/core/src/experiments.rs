//! Reusable experiment helpers shared by the benchmark harness and
//! examples.

use std::collections::HashSet;
use tictac_cluster::DeployedModel;
use tictac_sched::no_ordering;
use tictac_sim::{simulate, SimConfig};

/// Counts how many distinct parameter-arrival orders the reference worker
/// observes over `runs` baseline iterations — the experiment of §2.2
/// (ResNet-v2-50 and Inception-v3 produced 1000 unique orders in 1000
/// runs; VGG-16 produced 493).
pub fn count_unique_recv_orders(
    deployed: &DeployedModel,
    config: &SimConfig,
    runs: usize,
) -> usize {
    let graph = deployed.graph();
    let schedule = no_ordering(graph);
    let w0 = deployed.workers()[0];
    let mut seen = HashSet::with_capacity(runs);
    for i in 0..runs {
        let trace = simulate(graph, &schedule, config, i as u64);
        seen.insert(trace.recv_completion_order(graph, w0));
    }
    seen.len()
}

/// Relative throughput gain of `scheduled` over `baseline`, in percent
/// (the y-axis of Figs. 7, 9, 10 and 13).
pub fn speedup_pct(baseline_throughput: f64, scheduled_throughput: f64) -> f64 {
    assert!(
        baseline_throughput > 0.0,
        "baseline throughput must be positive"
    );
    (scheduled_throughput / baseline_throughput - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{Mode, Model};

    #[test]
    fn unique_orders_grow_with_runs_for_baseline() {
        let model = Model::InceptionV1.build_with_batch(Mode::Inference, 4);
        let d = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let n = count_unique_recv_orders(&d, &cfg, 8);
        // 116 parameters: every random iteration order should be fresh.
        assert_eq!(n, 8);
    }

    #[test]
    fn speedup_math() {
        assert!((speedup_pct(100.0, 120.0) - 20.0).abs() < 1e-9);
        assert_eq!(speedup_pct(100.0, 100.0), 0.0);
        assert!((speedup_pct(100.0, 95.8) + 4.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speedup_rejects_zero_baseline() {
        speedup_pct(0.0, 1.0);
    }
}
