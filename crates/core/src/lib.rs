//! High-level API of the TicTac reproduction.
//!
//! A [`Session`] wires the whole pipeline together, mirroring the system
//! design of §5 of the paper:
//!
//! 1. build a model ([`Model`] zoo or a custom [`ModelGraph`]),
//! 2. deploy it on a simulated Model-Replica + Parameter-Server cluster
//!    ([`ClusterSpec`]),
//! 3. trace warm-up iterations and estimate the time oracle (min-of-5, §5),
//! 4. compute a transfer schedule ([`SchedulerKind`]: baseline, random,
//!    TIC or TAC) on the reference worker and replicate it,
//! 5. execute measured iterations on a pluggable [`ExecutionBackend`] —
//!    the discrete-event simulator ([`SimBackend`], default) or the
//!    in-process multi-threaded runtime ([`ThreadedBackend`]) — and
//!    report throughput, scheduling efficiency (Equation 3) and
//!    straggler impact.
//!
//! # Example
//!
//! ```
//! use tictac_core::{ClusterSpec, Mode, Model, SchedulerKind, Session, SimConfig};
//!
//! let report = Session::builder(tictac_core::tiny_mlp(Mode::Training, 8))
//!     .cluster(ClusterSpec::new(2, 1))
//!     .config(SimConfig::cloud_gpu())
//!     .scheduler(SchedulerKind::Tic)
//!     .iterations(3)
//!     .build()?
//!     .run();
//! assert_eq!(report.iterations.len(), 3);
//! # Ok::<(), tictac_core::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cache;
mod experiments;
pub mod optimal;
mod session;
pub mod training;
mod tune;

pub use backend::{ExecError, ExecutionBackend, SimBackend, ThreadedBackend, TimeDomain};
pub use cache::{CacheStats, DeployCache};
pub use experiments::{count_unique_recv_orders, speedup_pct};
pub use optimal::{makespan_of_order, optimal_order, OptimalSearch};
pub use session::{
    IterationRecord, RunOptions, RunReport, ScenarioBuildError, SchedulerKind, Session,
    SessionBuilder, SessionConfig,
};
pub use tune::{auto_tune_with, TuneOptions, TuneResult};

// Re-export the substrate so downstream users need only one dependency.
pub use tictac_cluster::{
    deploy, deploy_all_reduce, AllReduceDeployment, ClusterSpec, CommConfig, DeployError,
    DeployedModel, Sharding,
};
pub use tictac_exec::{
    run_iteration, run_iteration_injected, run_iteration_with_plan, ExecOptions, ExecPlan,
    RuntimeError,
};
pub use tictac_graph::{
    Channel, ChannelId, CommRole, Cost, Device, DeviceId, DeviceKind, Graph, GraphBuilder,
    GraphError, ModelGraph, ModelGraphBuilder, ModelOpId, ModelOpKind, NameId, NameTable, OpId,
    OpKind, OpName, ParamId, Resource, RingStage,
};
pub use tictac_metrics::{ols, percentile, Cdf, Histogram, OlsFit, Streaming, Summary};
pub use tictac_models::{tiny_mlp, Mode, Model};
pub use tictac_obs::{
    overlap_report, perfetto_json, priority_inversions, realized_efficiency, validate_perfetto,
    BucketHistogram, ChannelUsage, Counter, DeviceUsage, Gauge, HistogramStats, InversionRecord,
    InversionReport, MetricValue, OverlapReport, PerfettoStats, RealizedEfficiency, Registry,
    Snapshot, Timer, TimerStats,
};
pub use tictac_scenario::{
    self as scenario, BackendKind, EnvPreset, ParseError as ScenarioParseError, Scenario,
};
pub use tictac_sched::{
    efficiency, merge_schedules, no_ordering, random_order, tac, tac_observed, tac_order,
    tac_order_naive, tac_order_observed, tic, tic_observed, worst_case, Baseline, OpProperties,
    PartitionGraph, Random, Schedule, Scheduler, TacComparator, TacScheduler, TicScheduler,
};
pub use tictac_sim::{
    selected_engine, simulate, simulate_with_plan, simulate_with_plan_observed, try_simulate,
    try_simulate_observed, Blackout, Crash, EngineChoice, FaultClock, FaultCounters, FaultPlan,
    FaultSpec, IterationMetrics, SimConfig, SimError, Stall, DEFAULT_PAR_THRESHOLD,
};
pub use tictac_store::{
    self as store, diff_records, group_key, regress, MemorySink, Payload, RegressPolicy,
    RegressReport, RunFilter, RunRecord, RunSink, RunStore, SessionSummary,
};
pub use tictac_timing::{
    CostOracle, GeneralOracle, MeasuredProfile, NoiseModel, Platform, RetryPolicy, SimDuration,
    SimTime, TimeOracle,
};
pub use tictac_trace::{
    analyze, estimate_profile, gantt, straggler_pct, ExecutionTrace, FaultEvent, FaultEventKind,
    OpRecord, TraceBuilder,
};
