//! Exhaustive-search optimal transfer order for small graphs.
//!
//! Finding the optimal schedule is NP-hard (the paper maps it to flow-shop
//! makespan minimization, §3.1, citing Garey et al. 1976), which is why
//! TicTac uses heuristics. For *small* graphs the optimum is computable by
//! enumerating all recv permutations and simulating each one — this module
//! does exactly that, so tests can quantify how close TIC/TAC get.

use tictac_graph::{DeviceId, Graph, OpId};
use tictac_sched::Schedule;
use tictac_sim::{simulate, SimConfig};
use tictac_timing::{NoiseModel, SimDuration};

/// The outcome of an exhaustive search over transfer orders.
#[derive(Debug, Clone)]
pub struct OptimalSearch {
    /// The best order found (recv ops, first transfer first).
    pub best_order: Vec<OpId>,
    /// Iteration makespan under the best order.
    pub best_makespan: SimDuration,
    /// Iteration makespan under the worst order (for the spread).
    pub worst_makespan: SimDuration,
    /// Number of permutations evaluated.
    pub evaluated: usize,
}

impl OptimalSearch {
    /// The best-vs-worst spread, as the paper's speedup `S` would see it:
    /// `(worst − best) / best`.
    pub fn spread(&self) -> f64 {
        (self.worst_makespan.as_secs_f64() - self.best_makespan.as_secs_f64())
            / self.best_makespan.as_secs_f64()
    }
}

/// Evaluates the makespan of one fully-specified transfer order
/// (deterministically: noise and reorder errors disabled).
pub fn makespan_of_order(graph: &Graph, order: &[OpId], config: &SimConfig) -> SimDuration {
    let mut schedule = Schedule::empty(graph.len());
    for (rank, &op) in order.iter().enumerate() {
        schedule.set(op, rank as u64);
    }
    let exact = config
        .clone()
        .with_noise(NoiseModel::none())
        .with_reorder_error(0.0);
    simulate(graph, &schedule, &exact, 0).makespan()
}

/// Exhaustively searches all permutations of `worker`'s recv ops.
///
/// # Panics
///
/// Panics if the worker has more than 9 recv ops (9! = 362 880
/// permutations is the practical limit; the whole point of TIC/TAC is
/// that real models are far beyond it).
pub fn optimal_order(graph: &Graph, worker: DeviceId, config: &SimConfig) -> OptimalSearch {
    let recvs = graph.recv_ops_on(worker);
    assert!(
        recvs.len() <= 9,
        "exhaustive search is limited to 9 transfers, got {}",
        recvs.len()
    );

    let mut best: Option<(SimDuration, Vec<OpId>)> = None;
    let mut worst = SimDuration::ZERO;
    let mut evaluated = 0usize;
    let mut order = recvs;
    permute(&mut order, 0, &mut |candidate| {
        let makespan = makespan_of_order(graph, candidate, config);
        evaluated += 1;
        worst = worst.max(makespan);
        if best.as_ref().is_none_or(|(b, _)| makespan < *b) {
            best = Some((makespan, candidate.to_vec()));
        }
    });
    let (best_makespan, best_order) = best.expect("at least one permutation");
    OptimalSearch {
        best_order,
        best_makespan,
        worst_makespan: worst,
        evaluated,
    }
}

/// Heap's algorithm, calling `visit` on every permutation of `items`.
fn permute<T, F: FnMut(&[T])>(items: &mut [T], k: usize, visit: &mut F) {
    if k == items.len().saturating_sub(1) || items.is_empty() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};
    use tictac_timing::Platform;

    /// Figure-1a-style graph with `n` transfers feeding a compute chain.
    fn chain(n: usize) -> (Graph, DeviceId) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mut prev = None;
        for i in 0..n {
            let bytes = 1_000_000 * (i as u64 % 3 + 1);
            let p = b.add_param(format!("p{i}"), bytes);
            let read = b.add_op(
                format!("read{i}"),
                ps,
                OpKind::Read { param: p },
                Cost::flops(1.0),
                &[],
            );
            let send = b.add_op(
                format!("send{i}"),
                ps,
                OpKind::send(p, ch),
                Cost::bytes(bytes),
                &[read],
            );
            let recv = b.add_op(
                format!("recv{i}"),
                w,
                OpKind::recv(p, ch),
                Cost::bytes(bytes),
                &[send],
            );
            let deps = match prev {
                Some(l) => vec![l, recv],
                None => vec![recv],
            };
            prev = Some(b.add_op(format!("c{i}"), w, OpKind::Compute, Cost::flops(2e9), &deps));
        }
        (b.build().unwrap(), w)
    }

    #[test]
    fn search_enumerates_all_permutations() {
        let (g, w) = chain(4);
        let result = optimal_order(&g, w, &SimConfig::deterministic(Platform::cloud_gpu()));
        assert_eq!(result.evaluated, 24);
        assert_eq!(result.best_order.len(), 4);
        assert!(result.best_makespan <= result.worst_makespan);
    }

    #[test]
    fn chain_optimum_is_forward_order() {
        let (g, w) = chain(5);
        let cfg = SimConfig::deterministic(Platform::cloud_gpu());
        let result = optimal_order(&g, w, &cfg);
        // In a chain the i-th transfer unblocks the i-th compute op:
        // forward order is optimal.
        let forward: Vec<OpId> = g.recv_ops_on(w);
        assert_eq!(makespan_of_order(&g, &forward, &cfg), result.best_makespan);
        // And the spread is meaningful: a bad order is measurably worse.
        assert!(result.spread() > 0.01, "spread {}", result.spread());
    }

    #[test]
    fn tic_and_tac_are_near_optimal_on_small_chains() {
        use tictac_sched::{tac_order, tic};
        use tictac_timing::CostOracle;
        let (g, w) = chain(6);
        let cfg = SimConfig::deterministic(Platform::cloud_gpu());
        let optimum = optimal_order(&g, w, &cfg);

        let oracle = CostOracle::new(Platform::cloud_gpu());
        let tac_makespan = makespan_of_order(&g, &tac_order(&g, w, &oracle), &cfg);

        let tic_schedule = tic(&g, w);
        let mut tic_seq = g.recv_ops_on(w);
        tic_seq.sort_by_key(|&op| (tic_schedule.priority(op), op));
        let tic_makespan = makespan_of_order(&g, &tic_seq, &cfg);

        let tolerance = optimum.best_makespan.mul_f64(1.05);
        assert!(
            tac_makespan <= tolerance,
            "TAC {tac_makespan} vs optimal {} (worst {})",
            optimum.best_makespan,
            optimum.worst_makespan
        );
        assert!(
            tic_makespan <= tolerance,
            "TIC {tic_makespan} vs optimal {}",
            optimum.best_makespan
        );
    }

    #[test]
    #[should_panic(expected = "exhaustive search")]
    fn search_rejects_large_graphs() {
        let (g, w) = chain(10);
        optimal_order(&g, w, &SimConfig::deterministic(Platform::cloud_gpu()));
    }
}
