//! The end-to-end session: model → cluster → schedule → measure.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tictac_cluster::{ClusterSpec, DeployError, DeployedModel};
use tictac_graph::{ModelGraph, OpId};
use tictac_obs::Registry;
use tictac_scenario::{BackendKind, Scenario};
use tictac_sched::{
    efficiency, no_ordering, Baseline, Random, Schedule, Scheduler, TacScheduler, TicScheduler,
};
use tictac_sim::{simulate, FaultCounters, FaultSpec, SimConfig};
use tictac_store::{IterationEvidence, Payload, RunRecord, RunSink, SessionEvidence};
use tictac_timing::MeasuredProfile;
use tictac_timing::{GeneralOracle, SimDuration, TimeOracle};
use tictac_trace::{analyze, estimate_profile, ExecutionTrace};

use crate::backend::{ExecError, ExecutionBackend, SimBackend, TimeDomain};

// `SchedulerKind` moved to `tictac-sched` (re-exported here for API
// compatibility) so policy-naming surfaces — scenario files, run records
// — need not depend on the whole session layer.
pub use tictac_sched::SchedulerKind;

/// The declarative half of a session: every knob that determines *what*
/// runs — and therefore the run's recorded identity — separate from the
/// process-local attachments (metrics registry, backend instance, record
/// sink). [`SessionBuilder`] is a thin imperative layer over this struct,
/// and [`Session::from_scenario`] fills it from a parsed scenario file;
/// both construction paths flow through the same `build`.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Cluster shape, including heterogeneity factors.
    pub cluster: ClusterSpec,
    /// Simulation configuration: platform, noise, faults, seed.
    pub config: SimConfig,
    /// Transfer-scheduling policy.
    pub scheduler: SchedulerKind,
    /// Discarded warm-up iterations.
    pub warmup: usize,
    /// Measured iterations.
    pub iterations: usize,
    /// `Scenario::fingerprint` of the driving scenario (0 when the
    /// session was assembled imperatively).
    pub scenario_fp: u64,
}

impl Default for SessionConfig {
    /// The paper's defaults: 2 workers / 1 PS, envG with noise, baseline
    /// scheduling, 2 warm-up + 10 measured iterations (§6).
    fn default() -> Self {
        Self {
            cluster: ClusterSpec::new(2, 1),
            config: SimConfig::cloud_gpu(),
            scheduler: SchedulerKind::Baseline,
            warmup: 2,
            iterations: 10,
            scenario_fp: 0,
        }
    }
}

/// Builder for [`Session`].
#[derive(Debug)]
pub struct SessionBuilder {
    model: ModelGraph,
    settings: SessionConfig,
    registry: Registry,
    backend: Option<Box<dyn ExecutionBackend>>,
    sink: Option<std::sync::Arc<dyn RunSink>>,
}

impl SessionBuilder {
    /// Replaces the whole declarative configuration at once.
    pub fn settings(mut self, settings: SessionConfig) -> Self {
        self.settings = settings;
        self
    }

    /// Sets the cluster shape (default: 2 workers, 1 PS).
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.settings.cluster = cluster;
        self
    }

    /// Sets the simulation configuration (default: envG with noise).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.settings.config = config;
        self
    }

    /// Sets the scheduling policy (default: baseline).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.settings.scheduler = scheduler;
        self
    }

    /// Number of discarded warm-up iterations (default 2, as in §6).
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.settings.warmup = warmup;
        self
    }

    /// Number of measured iterations (default 10, as in §6).
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.settings.iterations = iterations;
        self
    }

    /// Attaches a metrics registry (default: disabled). An enabled
    /// registry observes schedule derivation (`sched.*`), the simulator
    /// (`sim.*`) and the training loop (`session.*`) without perturbing
    /// any simulated outcome: traces and reports are byte-identical
    /// whether or not observation is on.
    pub fn observe(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the execution backend (default: the discrete-event simulator,
    /// [`SimBackend`], built from this session's config).
    ///
    /// Schedules — including TAC's profiled one — are computed identically
    /// for every backend, so runs of one configuration differ only in how
    /// the iteration is *executed*.
    pub fn backend(mut self, backend: impl ExecutionBackend + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Routes this session's finished runs into `sink` as
    /// [`RunRecord`]s, overriding the process-global store. Without this
    /// call, runs are recorded only when a global store is configured
    /// (`TICTAC_RUN_STORE` or [`tictac_store::set_global_store`]) — the
    /// default is no recording at all.
    pub fn record_to(mut self, sink: std::sync::Arc<dyn RunSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Deploys the model and computes the schedule, consulting the
    /// process-wide [`DeployCache`](crate::DeployCache): sessions sharing
    /// a `(model, cluster, scheduler, config)` configuration share one
    /// deployed graph and one schedule vector behind `Arc`s.
    ///
    /// # Errors
    ///
    /// Returns a [`DeployError`] if the cluster spec or model is invalid.
    pub fn build(self) -> Result<Session, DeployError> {
        let started = Instant::now();
        let s = &self.settings;
        let (deployed, schedule) = crate::DeployCache::global().schedule(
            &self.model,
            &s.cluster,
            s.scheduler,
            &s.config,
            &self.registry,
        )?;
        let schedule_compute_time = started.elapsed();
        let backend = self
            .backend
            .unwrap_or_else(|| Box::new(SimBackend::new(s.config.clone())));
        let sink = self
            .sink
            .or_else(|| tictac_store::global_store().map(|s| s as std::sync::Arc<dyn RunSink>));
        Ok(Session {
            model_name: self.model.name().to_string(),
            model_fp: self.model.fingerprint(),
            batch: self.model.batch_size(),
            model: std::sync::Arc::new(self.model),
            cluster: s.cluster.clone(),
            sim_config: s.config.clone(),
            deployed,
            scheduler: s.scheduler,
            warmup: s.warmup,
            iterations: s.iterations,
            schedule,
            schedule_compute_time,
            registry: self.registry,
            backend,
            seed: s.config.seed,
            fault_fp: s.config.faults.fingerprint(),
            scenario_fp: s.scenario_fp,
            comm_fp: s.cluster.comm().fingerprint(),
            sink,
        })
    }
}

/// Error turning a [`Scenario`] into a runnable [`Session`]: the
/// deployment can be invalid, or the scenario can ask the threaded
/// backend for a configuration it does not support.
#[derive(Debug)]
pub enum ScenarioBuildError {
    /// The model/cluster deployment failed.
    Deploy(DeployError),
    /// The threaded backend rejected the scenario's configuration.
    Runtime(tictac_exec::RuntimeError),
}

impl std::fmt::Display for ScenarioBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioBuildError::Deploy(e) => write!(f, "invalid deployment: {e}"),
            ScenarioBuildError::Runtime(e) => write!(f, "unsupported backend config: {e}"),
        }
    }
}

impl std::error::Error for ScenarioBuildError {}

impl From<DeployError> for ScenarioBuildError {
    fn from(e: DeployError) -> Self {
        ScenarioBuildError::Deploy(e)
    }
}

impl From<tictac_exec::RuntimeError> for ScenarioBuildError {
    fn from(e: tictac_exec::RuntimeError) -> Self {
        ScenarioBuildError::Runtime(e)
    }
}

/// Iteration-index offset for the TAC profiling runs, far from measured
/// iterations so their random streams do not collide.
const PROFILE_ITERATION_BASE: u64 = 1 << 40;

/// Tracing module + time-oracle estimator (§5): execute 5 unscheduled
/// iterations, keep the per-op minimum. Profiling always runs fault-free —
/// the paper profiles on a healthy cluster, and a crash-riddled profile
/// would poison the estimated op durations. It also always runs on the
/// *simulator*, whatever backend executes the session: schedules stay
/// identical across backends, so sim and threaded runs are comparable.
fn profile_oracle(deployed: &DeployedModel, config: &SimConfig) -> MeasuredProfile {
    let graph = deployed.graph();
    let profile_config = config.clone().with_faults(FaultSpec::none());
    let unordered = no_ordering(graph);
    let traces: Vec<_> = (0..5)
        .map(|i| {
            simulate(
                graph,
                &unordered,
                &profile_config,
                PROFILE_ITERATION_BASE + i,
            )
        })
        .collect();
    estimate_profile(&traces)
}

pub(crate) fn compute_schedule(
    deployed: &DeployedModel,
    scheduler: SchedulerKind,
    config: &SimConfig,
    registry: &Registry,
) -> Schedule {
    let graph = deployed.graph();
    let reference = deployed.workers()[0];
    // Policy selection is the only per-kind branching left: everything
    // downstream (assign on the reference worker, replicate across
    // workers) is one uniform path through the `Scheduler` trait.
    let policy: Box<dyn Scheduler> = match scheduler {
        SchedulerKind::Baseline => Box::new(Baseline),
        SchedulerKind::Random => Box::new(Random {
            seed: config.seed ^ 0x5EED,
        }),
        SchedulerKind::Tic => Box::new(TicScheduler),
        SchedulerKind::Tac => Box::new(TacScheduler),
    };
    let oracle: Box<dyn TimeOracle> = match scheduler {
        SchedulerKind::Tac => Box::new(profile_oracle(deployed, config)),
        _ => Box::new(GeneralOracle),
    };
    deployed.replicate_schedule(&policy.assign(graph, reference, oracle.as_ref(), Some(registry)))
}

/// One measured iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration makespan.
    pub makespan: SimDuration,
    /// Throughput, samples/second (global batch over makespan).
    pub throughput: f64,
    /// Straggler time, % of the iteration (§6.3).
    pub straggler_pct: f64,
    /// Scheduling efficiency `E` of the iteration (Equation 3, clamped to
    /// [0, 1]): the minimum per-worker-partition efficiency — the slowest
    /// worker's schedule determines the synchronous step time.
    pub efficiency: f64,
    /// Speedup potential `S` on the reference worker's partition
    /// (Equation 4; partitions are identical replicas).
    pub speedup_potential: f64,
    /// Fault and recovery activity observed this iteration (all-zero when
    /// fault injection is quiet).
    pub faults: FaultCounters,
    /// Percentage of graph ops that executed this iteration — below 100
    /// only when a degraded barrier deferred work.
    pub goodput_pct: f64,
}

/// The result of [`Session::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Scheduling policy used.
    pub scheduler: SchedulerKind,
    /// Number of workers.
    pub workers: usize,
    /// Number of parameter servers.
    pub parameter_servers: usize,
    /// Per-worker batch size.
    pub batch: usize,
    /// One record per measured iteration.
    pub iterations: Vec<IterationRecord>,
    /// Wall-clock time spent computing the schedule (the paper reports
    /// ~10 s offline; ours is milliseconds because the substrate is
    /// smaller).
    pub schedule_compute_seconds: f64,
}

impl RunReport {
    /// Mean throughput across measured iterations (the paper's headline
    /// metric, §6).
    pub fn mean_throughput(&self) -> f64 {
        self.iterations.iter().map(|r| r.throughput).sum::<f64>() / self.iterations.len() as f64
    }

    /// Mean iteration makespan.
    pub fn mean_makespan(&self) -> SimDuration {
        let total: SimDuration = self.iterations.iter().map(|r| r.makespan).sum();
        total / self.iterations.len() as u64
    }

    /// Maximum straggler percentage across iterations (the paper reports
    /// the maximum, §6).
    pub fn max_straggler_pct(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.straggler_pct)
            .fold(0.0, f64::max)
    }

    /// Maximum scheduling efficiency across iterations (as reported for
    /// Fig. 11a).
    pub fn max_efficiency(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.efficiency)
            .fold(0.0, f64::max)
    }

    /// Mean scheduling efficiency.
    pub fn mean_efficiency(&self) -> f64 {
        self.iterations.iter().map(|r| r.efficiency).sum::<f64>() / self.iterations.len() as f64
    }

    /// Fault and recovery activity accumulated over all measured
    /// iterations.
    pub fn total_faults(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for r in &self.iterations {
            total.merge(&r.faults);
        }
        total
    }

    /// Mean goodput percentage across measured iterations (100 unless a
    /// degraded barrier deferred work).
    pub fn mean_goodput_pct(&self) -> f64 {
        self.iterations.iter().map(|r| r.goodput_pct).sum::<f64>() / self.iterations.len() as f64
    }
}

/// A fully-configured deployment ready to simulate.
///
/// Create with [`Session::builder`].
#[derive(Debug)]
pub struct Session {
    model: std::sync::Arc<ModelGraph>,
    model_name: String,
    model_fp: u64,
    batch: usize,
    cluster: ClusterSpec,
    sim_config: SimConfig,
    deployed: std::sync::Arc<DeployedModel>,
    scheduler: SchedulerKind,
    warmup: usize,
    iterations: usize,
    schedule: std::sync::Arc<Schedule>,
    schedule_compute_time: std::time::Duration,
    registry: Registry,
    backend: Box<dyn ExecutionBackend>,
    seed: u64,
    fault_fp: u64,
    scenario_fp: u64,
    comm_fp: u64,
    sink: Option<std::sync::Arc<dyn RunSink>>,
}

/// Options for [`Session::run_with`] / [`Session::try_run_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Iteration-index offset, so repeated runs observe fresh random
    /// streams (used for the 1000-run experiments of §6.2/6.3). Default 0.
    pub offset: u64,
    /// Overrides the session's measured-iteration count for this run
    /// (warm-up is unchanged). Default: the session's configured count.
    pub iterations: Option<usize>,
}

impl RunOptions {
    /// The defaults: offset 0, the session's configured iteration count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration-index offset.
    #[must_use]
    pub fn offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Overrides the measured-iteration count for this run.
    #[must_use]
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }
}

/// Makespan histogram bounds, in microseconds: decades from 100 µs to
/// 1000 s.
const MAKESPAN_BUCKETS_US: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

impl Session {
    /// Starts building a session around a model graph.
    pub fn builder(model: ModelGraph) -> SessionBuilder {
        SessionBuilder {
            model,
            settings: SessionConfig::default(),
            registry: Registry::disabled(),
            backend: None,
            sink: None,
        }
    }

    /// Assembles a runnable session from a parsed [`Scenario`] — the
    /// declarative counterpart of [`Session::builder`]. The scenario's
    /// fingerprint is carried into every [`RunRecord`] the session emits
    /// (`scenario_fp`), and a scenario-level `store:` target becomes the
    /// session's record sink.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioBuildError`] if the deployment is invalid or
    /// the threaded backend rejects the scenario's configuration.
    pub fn from_scenario(scenario: &Scenario) -> Result<Session, ScenarioBuildError> {
        let model = scenario
            .model
            .build_with_batch(scenario.mode, scenario.batch);
        let config = scenario.sim_config();
        let mut builder = Session::builder(model).settings(SessionConfig {
            cluster: scenario.cluster.clone(),
            config: config.clone(),
            scheduler: scenario.scheduler,
            warmup: scenario.warmup,
            iterations: scenario.iterations,
            scenario_fp: scenario.fingerprint(),
        });
        if scenario.backend == BackendKind::Threaded {
            let mut threaded = crate::backend::ThreadedBackend::from_config(&config)?;
            if let Some(scale) = scenario.time_scale {
                threaded = threaded.with_time_scale(scale);
            }
            builder = builder.backend(threaded);
        }
        if let Some(path) = &scenario.store {
            builder = builder.record_to(std::sync::Arc::new(tictac_store::RunStore::at(path)));
        }
        Ok(builder.build()?)
    }

    /// The deployed model.
    pub fn deployed(&self) -> &DeployedModel {
        &self.deployed
    }

    /// Searches for the communication granularity ([`CommConfig`]) that
    /// minimises this session's fault-free makespan under its own
    /// scheduler, via [`auto_tune_with`](crate::auto_tune_with) against
    /// the process-wide [`DeployCache`](crate::DeployCache). The
    /// session itself is unchanged; rebuild with
    /// `cluster.with_comm(result.best)` to run the tuned deployment.
    ///
    /// # Errors
    ///
    /// Returns a [`DeployError`] if a candidate deployment fails (e.g.
    /// a zero threshold in the options' ladders).
    pub fn auto_tune(
        &self,
        options: &crate::TuneOptions,
    ) -> Result<crate::TuneResult, DeployError> {
        crate::tune::auto_tune_with(
            crate::DeployCache::global(),
            &self.model,
            &self.cluster,
            self.scheduler,
            &self.sim_config,
            options,
        )
    }

    /// The enforced schedule (empty for the baseline).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The scheduling policy.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The metrics registry attached via
    /// [`SessionBuilder::observe`] (disabled by default).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The execution backend running this session's iterations.
    pub fn backend(&self) -> &dyn ExecutionBackend {
        self.backend.as_ref()
    }

    /// Executes one iteration on the session's backend and returns its
    /// trace, exactly as [`try_run`](Session::try_run) would execute it at
    /// the same iteration index (warm-up included: index 0 is the first
    /// warm-up iteration).
    ///
    /// # Errors
    ///
    /// Returns the [`ExecError`] of an unrecoverable iteration.
    pub fn trace_iteration(&self, iteration: u64) -> Result<ExecutionTrace, ExecError> {
        self.backend
            .execute(&self.deployed, &self.schedule, iteration, &self.registry)
    }

    /// Renders one iteration as Chrome/Perfetto `trace_event` JSON (load
    /// it at `ui.perfetto.dev` or `chrome://tracing`): one lane per
    /// device and channel, fault instants, degraded-barrier flows.
    ///
    /// The export is backend-aware: timestamps are taken from the trace in
    /// the backend's own clock domain (virtual ticks for the simulator,
    /// wall-clock nanoseconds for the threaded runtime — never re-derived
    /// from sim ticks), and wall-clock traces are labeled with the backend
    /// name so the two domains cannot be confused in a trace viewer.
    ///
    /// # Errors
    ///
    /// Returns the [`ExecError`] of an unrecoverable iteration.
    pub fn perfetto_json(&self, iteration: u64) -> Result<String, ExecError> {
        let trace = self.trace_iteration(iteration)?;
        let label = match self.backend.time_domain() {
            TimeDomain::Virtual => {
                format!("{}/{}/iter{}", self.model_name, self.scheduler, iteration)
            }
            TimeDomain::WallClock => format!(
                "{}/{}/{}/iter{} [wall-clock]",
                self.model_name,
                self.scheduler,
                self.backend.name(),
                iteration
            ),
        };
        Ok(tictac_obs::perfetto_json(
            self.deployed.graph(),
            &trace,
            &label,
        ))
    }

    /// Runs warm-up plus measured iterations and reports metrics.
    ///
    /// This is the zero-config sugar for
    /// [`run_with`](Session::run_with)`(RunOptions::default())` — use
    /// [`try_run`](Session::try_run) when fault injection is configured
    /// and unrecoverable failures are expected outcomes.
    ///
    /// # Panics
    ///
    /// Panics if an iteration fails with an [`ExecError`].
    pub fn run(&self) -> RunReport {
        self.run_with(RunOptions::default())
    }

    /// Like [`run`](Session::run), with explicit [`RunOptions`].
    ///
    /// # Panics
    ///
    /// Panics if an iteration fails with an [`ExecError`].
    pub fn run_with(&self, options: RunOptions) -> RunReport {
        self.try_run_with(options).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs warm-up plus measured iterations, surfacing execution
    /// failures (exhausted retry budgets with no degraded barrier,
    /// deadlocks, threaded-runtime stalls) as typed errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecError`] any iteration produces.
    pub fn try_run(&self) -> Result<RunReport, ExecError> {
        self.try_run_with(RunOptions::default())
    }

    /// Like [`try_run`](Session::try_run), with explicit [`RunOptions`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecError`] any iteration produces.
    pub fn try_run_with(&self, options: RunOptions) -> Result<RunReport, ExecError> {
        let offset = options.offset;
        let iterations = options.iterations.unwrap_or(self.iterations);
        let graph = self.deployed.graph();
        let worker_ops: Vec<Vec<OpId>> = self
            .deployed
            .workers()
            .iter()
            .map(|&w| graph.ops_on(w).collect())
            .collect();

        let m_iterations = self.registry.counter("session.iterations");
        let m_retries = self.registry.counter("session.retries");
        let g_goodput = self.registry.gauge("session.goodput_pct");
        let g_throughput = self.registry.gauge("session.throughput");
        let h_makespan = self
            .registry
            .histogram("session.makespan_us", &MAKESPAN_BUCKETS_US);

        let mut records = Vec::with_capacity(iterations);
        // Inversion detection walks the whole trace, so it runs only when
        // the run is being recorded into a store.
        let mut inversions = Vec::with_capacity(if self.sink.is_some() { iterations } else { 0 });
        for i in 0..(self.warmup + iterations) as u64 {
            let trace = self.trace_iteration(offset + i)?;
            if (i as usize) < self.warmup {
                continue;
            }
            if self.sink.is_some() {
                let report =
                    tictac_obs::priority_inversions(graph, &trace, |op| self.schedule.priority(op));
                inversions.push(report.count() as u64);
            }
            let metrics = analyze(graph, self.deployed.workers(), &trace);
            // Scheduling efficiency per worker partition with measured
            // per-op durations (§3.2); the iteration's efficiency is the
            // slowest worker's.
            let mut min_e = 1.0_f64;
            let mut potential = 0.0;
            for (&w, ops) in self.deployed.workers().iter().zip(&worker_ops) {
                let finish = trace
                    .device_finish(graph, w)
                    .map(|t| t.duration_since(tictac_timing::SimTime::ZERO))
                    .unwrap_or(SimDuration::ZERO);
                let report = efficiency::evaluate(graph, ops, |op| trace.duration(op), finish);
                min_e = min_e.min(report.efficiency_clamped());
                potential = report.speedup_potential;
            }
            let throughput = metrics.throughput(self.batch, self.deployed.workers().len());
            m_iterations.inc();
            m_retries.add(metrics.faults.retransmits);
            g_goodput.set(metrics.goodput_pct);
            g_throughput.set(throughput);
            h_makespan.observe(metrics.makespan.as_nanos() / 1_000);
            records.push(IterationRecord {
                makespan: metrics.makespan,
                throughput,
                straggler_pct: metrics.straggler_pct,
                efficiency: min_e,
                speedup_potential: potential,
                faults: metrics.faults,
                goodput_pct: metrics.goodput_pct,
            });
        }

        let report = RunReport {
            model: self.model_name.clone(),
            scheduler: self.scheduler,
            workers: self.deployed.workers().len(),
            parameter_servers: self.deployed.parameter_servers().len(),
            batch: self.batch,
            iterations: records,
            schedule_compute_seconds: self.schedule_compute_time.as_secs_f64(),
        };
        if let Some(sink) = &self.sink {
            sink.record(self.run_record(&report, &inversions));
        }
        Ok(report)
    }

    /// Assembles the [`RunRecord`] of one finished run. Everything in the
    /// payload derives from *simulated* observations (virtual time on the
    /// sim backend), so same-seed runs produce byte-identical payloads;
    /// the wall-clock `schedule_compute_seconds` is deliberately left
    /// out.
    fn run_record(&self, report: &RunReport, inversions: &[u64]) -> RunRecord {
        let evidence = SessionEvidence {
            iterations: report
                .iterations
                .iter()
                .zip(inversions)
                .map(|(r, &inv)| IterationEvidence {
                    makespan_ns: r.makespan.as_nanos(),
                    throughput: r.throughput,
                    straggler_pct: r.straggler_pct,
                    efficiency: r.efficiency,
                    speedup_potential: r.speedup_potential,
                    goodput_pct: r.goodput_pct,
                    inversions: inv,
                })
                .collect(),
            faults: report.total_faults(),
            snapshot: self.registry.snapshot(),
        };
        RunRecord {
            id: String::new(),
            time_ms: 0,
            source: "session".into(),
            workload: self.model_name.clone(),
            model_fp: self.model_fp,
            workers: report.workers as u32,
            ps: report.parameter_servers as u32,
            scheduler: self.scheduler.to_string(),
            backend: self.backend.name().to_string(),
            seed: self.seed,
            fault_fp: self.fault_fp,
            scenario_fp: self.scenario_fp,
            comm_fp: self.comm_fp,
            provenance: std::env::var("TICTAC_PROVENANCE").unwrap_or_default(),
            payload: Payload::Session(evidence),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{tiny_mlp, Mode};

    fn session(kind: SchedulerKind) -> Session {
        Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(2, 1))
            .config(SimConfig::cloud_gpu())
            .scheduler(kind)
            .warmup(1)
            .iterations(4)
            .build()
            .unwrap()
    }

    #[test]
    fn run_produces_requested_iterations() {
        let report = session(SchedulerKind::Tic).run();
        assert_eq!(report.iterations.len(), 4);
        assert_eq!(report.workers, 2);
        assert_eq!(report.parameter_servers, 1);
        assert!(report.mean_throughput() > 0.0);
        assert!(report.mean_makespan() > SimDuration::ZERO);
        assert!(report.max_efficiency() <= 1.0);
    }

    #[test]
    fn baseline_has_empty_schedule_tic_does_not() {
        assert!(session(SchedulerKind::Baseline).schedule().is_unordered());
        assert!(!session(SchedulerKind::Tic).schedule().is_unordered());
        assert!(!session(SchedulerKind::Tac).schedule().is_unordered());
        assert!(!session(SchedulerKind::Random).schedule().is_unordered());
    }

    #[test]
    fn runs_are_reproducible_and_offsets_differ() {
        let s = session(SchedulerKind::Baseline);
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
        let c = s.run_with(RunOptions::new().offset(1_000));
        assert_ne!(a.iterations, c.iterations);
        // The offset shifts iteration indices, not the count.
        assert_eq!(a.iterations.len(), c.iterations.len());
        let short = s.run_with(RunOptions::new().iterations(2));
        assert_eq!(short.iterations.len(), 2);
        assert_eq!(short.iterations, a.iterations[..2]);
    }

    #[test]
    fn faulty_sessions_report_counters_and_errors() {
        use tictac_timing::{RetryPolicy, SimDuration as D};
        // Recoverable drops: run succeeds and counters are non-zero.
        let s = Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(2, 1))
            .config(
                SimConfig::cloud_gpu().with_faults(
                    tictac_sim::FaultSpec::none()
                        .with_drop_prob(0.3)
                        .with_retry(RetryPolicy::fixed(D::from_micros(50), 40)),
                ),
            )
            .scheduler(SchedulerKind::Tac)
            .warmup(1)
            .iterations(4)
            .build()
            .unwrap();
        let report = s.try_run().expect("drops are recoverable");
        assert!(report.total_faults().drops > 0);
        assert_eq!(
            report.total_faults().retransmits,
            report.total_faults().drops,
            "every recovered drop retransmits exactly once per timeout"
        );
        assert_eq!(report.mean_goodput_pct(), 100.0);

        // Unrecoverable drops without a barrier: a typed error, and the
        // panicking wrapper panics with its message.
        let doomed = Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(2, 1))
            .config(
                SimConfig::cloud_gpu().with_faults(
                    tictac_sim::FaultSpec::none()
                        .with_drop_prob(1.0)
                        .with_retry(RetryPolicy::fixed(D::from_micros(50), 1)),
                ),
            )
            .warmup(0)
            .iterations(1)
            .build()
            .unwrap();
        match doomed.try_run() {
            Err(ExecError::Sim(tictac_sim::SimError::RetriesExhausted { .. })) => {}
            other => panic!("expected retry exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn tac_profiles_fault_free() {
        use tictac_timing::{RetryPolicy, SimDuration as D};
        // TAC under heavy faults must still compute the same schedule it
        // computes on a healthy cluster: profiling ignores the fault spec.
        let faulty = Session::builder(tiny_mlp(Mode::Training, 8))
            .config(
                SimConfig::cloud_gpu().with_faults(
                    tictac_sim::FaultSpec::none()
                        .with_drop_prob(0.5)
                        .with_retry(RetryPolicy::fixed(D::from_micros(50), 40)),
                ),
            )
            .scheduler(SchedulerKind::Tac)
            .build()
            .unwrap();
        let healthy = session(SchedulerKind::Tac);
        assert_eq!(faulty.schedule(), healthy.schedule());
    }

    #[test]
    fn observed_session_matches_unobserved_and_records_metrics() {
        let plain = session(SchedulerKind::Tac).run();
        let registry = Registry::enabled();
        let observed = Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(2, 1))
            .config(SimConfig::cloud_gpu())
            .scheduler(SchedulerKind::Tac)
            .warmup(1)
            .iterations(4)
            .observe(registry.clone())
            .build()
            .unwrap();
        let report = observed.run();
        // Observation never perturbs results (schedule-compute wall time
        // legitimately differs).
        assert_eq!(report.iterations, plain.iterations);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("session.iterations"), Some(4));
        assert_eq!(snap.counter("session.retries"), Some(0));
        assert!(snap.counter("sched.tac.merges").is_some());
        assert!(snap.counter("sim.events").unwrap() > 0);
        match snap.get("session.goodput_pct") {
            Some(tictac_obs::MetricValue::Gauge(v)) => assert_eq!(*v, 100.0),
            other => panic!("expected goodput gauge, got {other:?}"),
        }
    }

    #[test]
    fn recorded_sessions_emit_deterministic_run_records() {
        use tictac_store::{diff_records, MemorySink, Payload};
        let sink = std::sync::Arc::new(MemorySink::new());
        let run = || {
            Session::builder(tiny_mlp(Mode::Training, 8))
                .cluster(ClusterSpec::new(2, 1))
                .config(SimConfig::cloud_gpu())
                .scheduler(SchedulerKind::Tac)
                .warmup(1)
                .iterations(4)
                .record_to(sink.clone())
                .build()
                .unwrap()
                .run()
        };
        let report = run();
        run();
        let mut records = sink.take();
        assert_eq!(records.len(), 2);
        let (a, b) = (records.remove(0), records.remove(0));
        assert_eq!(a.workload, "tiny_mlp");
        assert_eq!(a.scheduler, "tac");
        assert_eq!(a.backend, "sim");
        assert_eq!(a.seed, SimConfig::cloud_gpu().seed);
        assert_eq!(a.workers, 2);
        assert_eq!(a.ps, 1);
        assert_ne!(a.model_fp, 0);
        // Same seed, same config: payloads are byte-identical and the
        // diff reports zero drift.
        let (pa, pb) = match (&a.payload, &b.payload) {
            (Payload::Session(pa), Payload::Session(pb)) => (pa, pb),
            other => panic!("expected session payloads, got {other:?}"),
        };
        assert_eq!(pa, pb);
        assert!(diff_records(&a, &b).is_zero());
        // The payload mirrors the report the caller saw.
        assert_eq!(pa.iterations.len(), report.iterations.len());
        assert_eq!(
            pa.iterations[0].makespan_ns,
            report.iterations[0].makespan.as_nanos()
        );
        // An enforced TAC schedule on the in-order sim executes without
        // inversions.
        assert!(pa.iterations.iter().all(|i| i.inversions == 0));
    }

    #[test]
    fn session_exports_valid_perfetto_trace() {
        let s = session(SchedulerKind::Tic);
        let json = s.perfetto_json(0).unwrap();
        let stats = tictac_obs::validate_perfetto(&json).unwrap();
        assert!(stats.slices > 0);
        // Every device renders at least one slice.
        assert!(stats.slices_per_process.iter().all(|(_, n)| *n > 0));
        // The exported trace matches the iteration the run loop simulates.
        let trace = s.trace_iteration(0).unwrap();
        assert_eq!(
            json,
            tictac_obs::perfetto_json(s.deployed().graph(), &trace, "tiny_mlp/tic/iter0")
        );
    }

    #[test]
    fn from_scenario_builds_equivalent_sessions() {
        let doc = "\
model: alexnet_v2
cluster:
  workers: 2
  parameter_servers: 1
scheduler: tic
iterations: 3
warmup: 1
";
        let scenario = Scenario::parse(doc).unwrap();
        let from_scenario = Session::from_scenario(&scenario).unwrap();
        let by_hand = Session::builder(
            tictac_models::Model::AlexNetV2.build_with_batch(Mode::Training, scenario.batch),
        )
        .cluster(ClusterSpec::new(2, 1))
        .config(SimConfig::cloud_gpu())
        .scheduler(SchedulerKind::Tic)
        .warmup(1)
        .iterations(3)
        .build()
        .unwrap();
        // Both construction paths produce the same schedule and the same
        // measured iterations.
        assert_eq!(from_scenario.schedule(), by_hand.schedule());
        assert_eq!(from_scenario.run().iterations, by_hand.run().iterations);
    }

    #[test]
    fn scenario_sessions_stamp_records_with_the_fingerprint() {
        use tictac_store::MemorySink;
        let doc = "\
model: alexnet_v2
cluster:
  workers: 2
  parameter_servers: 1
scheduler: tac
backend: threaded
time_scale: 0.5
iterations: 2
warmup: 0
";
        let scenario = Scenario::parse(doc).unwrap();
        let sink = std::sync::Arc::new(MemorySink::new());
        // `record_to` after from_scenario is not available (from_scenario
        // returns a Session), so go through the builder path with the
        // same settings to verify the fp lands in records.
        let session = Session::builder(
            scenario
                .model
                .build_with_batch(scenario.mode, scenario.batch),
        )
        .settings(SessionConfig {
            cluster: scenario.cluster.clone(),
            config: scenario.sim_config(),
            scheduler: scenario.scheduler,
            warmup: scenario.warmup,
            iterations: scenario.iterations,
            scenario_fp: scenario.fingerprint(),
        })
        .record_to(sink.clone())
        .build()
        .unwrap();
        session.run();
        let records = sink.take();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].scenario_fp, scenario.fingerprint());
        assert_ne!(records[0].scenario_fp, 0);
        // The threaded scenario builds too, and carries its own backend.
        let threaded = Session::from_scenario(&scenario).unwrap();
        assert_eq!(threaded.backend().name(), "threaded");
        assert_eq!(threaded.schedule(), session.schedule());
    }

    #[test]
    fn scheduler_kinds_display() {
        assert_eq!(SchedulerKind::Tic.to_string(), "tic");
        assert_eq!(SchedulerKind::ALL.len(), 4);
    }

    fn threaded_session(kind: SchedulerKind) -> Session {
        Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(2, 1))
            .config(SimConfig::cloud_gpu())
            .scheduler(kind)
            .backend(
                crate::backend::ThreadedBackend::from_config(&SimConfig::cloud_gpu())
                    .expect("preset config is supported")
                    .with_time_scale(0.5),
            )
            .warmup(1)
            .iterations(2)
            .build()
            .unwrap()
    }

    #[test]
    fn threaded_backend_runs_and_labels_wall_clock_traces() {
        let s = threaded_session(SchedulerKind::Tac);
        assert_eq!(s.backend().name(), "threaded");
        let report = s.run();
        assert_eq!(report.iterations.len(), 2);
        assert!(report.mean_throughput() > 0.0);
        assert!(report.mean_makespan() > SimDuration::ZERO);
        let json = s.perfetto_json(0).unwrap();
        assert!(
            json.contains("[wall-clock]"),
            "wall-clock traces are labeled"
        );
        let stats = tictac_obs::validate_perfetto(&json).unwrap();
        assert!(stats.slices > 0);
    }

    #[test]
    fn backend_choice_never_changes_the_schedule() {
        for kind in SchedulerKind::ALL {
            assert_eq!(
                session(kind).schedule(),
                threaded_session(kind).schedule(),
                "{kind}: schedules must be identical across backends"
            );
        }
    }
}
