//! A real (small) SGD learner for the Fig. 8 experiment.
//!
//! Figure 8 of the paper shows that enforcing a transfer order does not
//! alter training convergence: the loss curves with and without ordering
//! coincide, because scheduling only changes *when* parameters arrive, not
//! their values. We reproduce the experiment with an actual numeric
//! learner: a two-layer MLP trained with synchronous data-parallel SGD on
//! synthetic data. The transfer order enters only as the order in which
//! worker gradients are accumulated at the parameter server — which
//! perturbs nothing beyond floating-point round-off.
//!
//! The learner also models the *degraded-mode barrier* of the fault
//! subsystem: when an iteration releases with a slow worker's update still
//! in flight ([`step_degraded`](Trainer::step_degraded)), that gradient is
//! deferred and folded into the next iteration's aggregation — a one-step
//! stale gradient, the numeric counterpart of a deferred transfer.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the Fig. 8 learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training-set size.
    pub samples: usize,
    /// Global batch per iteration.
    pub batch: usize,
    /// Number of data-parallel workers.
    pub workers: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// RNG seed (data, init and batch order all derive from it).
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            input_dim: 32,
            hidden: 64,
            classes: 10,
            samples: 512,
            batch: 64,
            workers: 4,
            lr: 0.1,
            seed: 7,
        }
    }
}

/// A two-layer MLP with data-parallel synchronous SGD.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainingConfig,
    /// Row-major `[input_dim][hidden]`.
    w1: Vec<f64>,
    /// Row-major `[hidden][classes]`.
    w2: Vec<f64>,
    data: Vec<Vec<f64>>,
    labels: Vec<usize>,
    order_rng: SmallRng,
    /// Whether gradient accumulation follows a fixed (enforced) worker
    /// order or a per-iteration random order (baseline).
    ordered: bool,
    /// Gradients deferred by a degraded barrier, applied (stale) at the
    /// next aggregation.
    pending: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Trainer {
    /// Creates a trainer; `ordered` selects enforced vs random gradient
    /// accumulation order (the knob scheduling turns).
    pub fn new(cfg: TrainingConfig, ordered: bool) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Class-conditional Gaussian blobs.
        let means: Vec<Vec<f64>> = (0..cfg.classes)
            .map(|_| {
                (0..cfg.input_dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect()
            })
            .collect();
        let mut data = Vec::with_capacity(cfg.samples);
        let mut labels = Vec::with_capacity(cfg.samples);
        for i in 0..cfg.samples {
            let class = i % cfg.classes;
            let x: Vec<f64> = means[class]
                .iter()
                .map(|m| m + 0.3 * standard_normal(&mut rng))
                .collect();
            data.push(x);
            labels.push(class);
        }
        let scale1 = (2.0 / cfg.input_dim as f64).sqrt();
        let w1 = (0..cfg.input_dim * cfg.hidden)
            .map(|_| scale1 * standard_normal(&mut rng))
            .collect();
        let scale2 = (2.0 / cfg.hidden as f64).sqrt();
        let w2 = (0..cfg.hidden * cfg.classes)
            .map(|_| scale2 * standard_normal(&mut rng))
            .collect();
        Self {
            order_rng: SmallRng::seed_from_u64(cfg.seed ^ 0xDEAD),
            cfg,
            w1,
            w2,
            data,
            labels,
            ordered,
            pending: Vec::new(),
        }
    }

    /// Runs one synchronous iteration and returns the mean training loss
    /// of the global batch (before the update).
    pub fn step(&mut self, iteration: usize) -> f64 {
        self.step_degraded(iteration, &[])
    }

    /// Like [`step`](Trainer::step), but the iteration's barrier released
    /// in degraded mode: gradients of `deferred_workers` do not reach the
    /// parameter server in time and are folded into the *next*
    /// aggregation instead (one-step-stale updates).
    ///
    /// Workers still compute their shards (the reported loss covers the
    /// full global batch); only the update is late.
    pub fn step_degraded(&mut self, iteration: usize, deferred_workers: &[usize]) -> f64 {
        let cfg = self.cfg;
        let start = (iteration * cfg.batch) % cfg.samples;
        let idx: Vec<usize> = (0..cfg.batch).map(|i| (start + i) % cfg.samples).collect();

        // Shard the batch across workers; each computes its gradient sum.
        let shard = cfg.batch / cfg.workers;
        let mut grads: Vec<(Vec<f64>, Vec<f64>, f64)> = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let lo = w * shard;
            let hi = if w + 1 == cfg.workers {
                cfg.batch
            } else {
                lo + shard
            };
            grads.push(self.worker_grad(&idx[lo..hi]));
        }

        // Parameter-server aggregation. The arrival order is the only
        // thing scheduling changes; floating-point addition order is the
        // only possible effect on the math.
        let mut order: Vec<usize> = (0..cfg.workers).collect();
        if !self.ordered {
            order.shuffle(&mut self.order_rng);
        }
        let mut g1 = vec![0.0; self.w1.len()];
        let mut g2 = vec![0.0; self.w2.len()];
        // Late arrivals from a previous degraded barrier land first.
        for (p1, p2) in std::mem::take(&mut self.pending) {
            for (a, b) in g1.iter_mut().zip(&p1) {
                *a += b;
            }
            for (a, b) in g2.iter_mut().zip(&p2) {
                *a += b;
            }
        }
        let mut loss = 0.0;
        for &w in &order {
            let (gw1, gw2, l) = &grads[w];
            loss += l;
            if deferred_workers.contains(&w) {
                self.pending.push((gw1.clone(), gw2.clone()));
                continue;
            }
            for (a, b) in g1.iter_mut().zip(gw1) {
                *a += b;
            }
            for (a, b) in g2.iter_mut().zip(gw2) {
                *a += b;
            }
        }
        let scale = cfg.lr / cfg.batch as f64;
        for (w, g) in self.w1.iter_mut().zip(&g1) {
            *w -= scale * g;
        }
        for (w, g) in self.w2.iter_mut().zip(&g2) {
            *w -= scale * g;
        }
        loss / cfg.batch as f64
    }

    /// Forward + backward over a shard; returns gradient sums and loss sum.
    fn worker_grad(&self, idx: &[usize]) -> (Vec<f64>, Vec<f64>, f64) {
        let cfg = self.cfg;
        let mut g1 = vec![0.0; self.w1.len()];
        let mut g2 = vec![0.0; self.w2.len()];
        let mut loss = 0.0;
        for &i in idx {
            let x = &self.data[i];
            let y = self.labels[i];
            // h = relu(x W1)
            let mut h = vec![0.0; cfg.hidden];
            for (j, hj) in h.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, xk) in x.iter().enumerate() {
                    acc += xk * self.w1[k * cfg.hidden + j];
                }
                *hj = acc.max(0.0);
            }
            // logits = h W2, softmax cross-entropy.
            let mut logits = vec![0.0; cfg.classes];
            for (c, lc) in logits.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (j, hj) in h.iter().enumerate() {
                    acc += hj * self.w2[j * cfg.classes + c];
                }
                *lc = acc;
            }
            let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
            let z: f64 = exps.iter().sum();
            let probs: Vec<f64> = exps.iter().map(|e| e / z).collect();
            loss -= probs[y].max(1e-300).ln();

            // dlogits = probs - onehot(y)
            let mut dlogits = probs;
            dlogits[y] -= 1.0;
            // dW2 and dh.
            let mut dh = vec![0.0; cfg.hidden];
            for (j, hj) in h.iter().enumerate() {
                for (c, dl) in dlogits.iter().enumerate() {
                    g2[j * cfg.classes + c] += hj * dl;
                    dh[j] += self.w2[j * cfg.classes + c] * dl;
                }
            }
            // Through relu, then dW1.
            for (j, d) in dh.iter_mut().enumerate() {
                if h[j] <= 0.0 {
                    *d = 0.0;
                }
            }
            for (k, xk) in x.iter().enumerate() {
                for (j, d) in dh.iter().enumerate() {
                    g1[k * cfg.hidden + j] += xk * d;
                }
            }
        }
        (g1, g2, loss)
    }
}

/// Runs `iterations` of training and returns the loss curve.
pub fn loss_curve(cfg: TrainingConfig, ordered: bool, iterations: usize) -> Vec<f64> {
    let mut t = Trainer::new(cfg, ordered);
    (0..iterations).map(|i| t.step(i)).collect()
}

/// Loss curve with degraded barriers injected: at each iteration in
/// `degraded_at`, `worker`'s gradient arrives one iteration late (the
/// training-side picture of the simulator's deferred transfers).
pub fn loss_curve_degraded(
    cfg: TrainingConfig,
    ordered: bool,
    iterations: usize,
    degraded_at: &[usize],
    worker: usize,
) -> Vec<f64> {
    let mut t = Trainer::new(cfg, ordered);
    (0..iterations)
        .map(|i| {
            if degraded_at.contains(&i) {
                t.step_degraded(i, &[worker])
            } else {
                t.step(i)
            }
        })
        .collect()
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases() {
        let curve = loss_curve(TrainingConfig::default(), true, 60);
        let head: f64 = curve[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = curve[50..].iter().sum::<f64>() / 10.0;
        assert!(
            tail < 0.7 * head,
            "training failed to converge: head {head:.3} tail {tail:.3}"
        );
    }

    #[test]
    fn ordering_does_not_change_convergence() {
        // Fig. 8: the curves coincide (up to float round-off from the
        // different accumulation order).
        let cfg = TrainingConfig::default();
        let ordered = loss_curve(cfg, true, 40);
        let unordered = loss_curve(cfg, false, 40);
        for (a, b) in ordered.iter().zip(&unordered) {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "loss diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn training_is_reproducible() {
        let cfg = TrainingConfig::default();
        assert_eq!(loss_curve(cfg, true, 10), loss_curve(cfg, true, 10));
    }

    #[test]
    fn deferred_gradients_still_converge() {
        // Degraded barriers early in training (worker 1's update one step
        // stale at iterations 3, 9 and 15) must not break convergence —
        // the stale gradients are applied, just late.
        let cfg = TrainingConfig::default();
        let curve = loss_curve_degraded(cfg, true, 60, &[3, 9, 15], 1);
        let head: f64 = curve[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = curve[50..].iter().sum::<f64>() / 10.0;
        assert!(
            tail < 0.7 * head,
            "degraded training failed to converge: head {head:.3} tail {tail:.3}"
        );
        // And it must actually differ from the clean run (the update path
        // changed), while staying reproducible.
        let clean = loss_curve(cfg, true, 60);
        assert_ne!(curve, clean);
        assert_eq!(curve, loss_curve_degraded(cfg, true, 60, &[3, 9, 15], 1));
    }

    #[test]
    fn deferral_with_no_deferred_workers_is_a_plain_step() {
        let cfg = TrainingConfig::default();
        let a = loss_curve(cfg, true, 12);
        let b = loss_curve_degraded(cfg, true, 12, &[], 0);
        assert_eq!(a, b);
    }
}
