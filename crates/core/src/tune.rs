//! Online search for communication granularity.
//!
//! TicTac fixes the transfer *order* but inherits the model's tensor
//! *granularity*. This module searches over [`CommConfig`] — the
//! partition/fusion thresholds lowered by
//! [`deploy`](tictac_cluster::deploy) — for the configuration that
//! minimises the simulated iteration makespan under the session's own
//! scheduler. Following "Automatic Configuration for Optimal
//! Communication Scheduling in DNN Training" (see PAPERS.md), the
//! thresholds are searched per `(model, cluster)` point rather than
//! hand-tuned: a seeded coordinate-descent loop walks a small ladder of
//! candidate sizes per axis, evaluating each candidate with the fast
//! discrete-event simulator and memoizing every evaluation in the
//! [`DeployCache`] so warm re-tunes are free.
//!
//! The default configuration (both passes off) is always the first
//! candidate and a new candidate must be *strictly* better to displace
//! the incumbent, so the tuned result can never regress below plain
//! deployment on the metric it optimises.

use tictac_cluster::{ClusterSpec, CommConfig, DeployError};
use tictac_graph::ModelGraph;
use tictac_sim::{simulate, FaultSpec, SimConfig};

use crate::cache::DeployCache;
use crate::session::SchedulerKind;

/// Iteration-index base for tuning simulations, far away from the
/// ranges used by sessions (run offsets) and experiments, so the noise
/// streams a tuner observes never collide with a later measured run.
const EVAL_ITER_BASE: u64 = 0x7 << 40;

/// Search-space and budget knobs for [`auto_tune_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneOptions {
    /// Seed for the search's probe order. Two searches with the same
    /// seed (and identical inputs) visit candidates in the same order
    /// and return the same result.
    pub seed: u64,
    /// Candidate partition thresholds; `None` disables the pass.
    pub partition_ladder: Vec<Option<u64>>,
    /// Candidate fusion thresholds; `None` disables the pass.
    pub fusion_ladder: Vec<Option<u64>>,
    /// Coordinate-descent sweeps over the two axes.
    pub sweeps: usize,
    /// Fault-free simulated iterations averaged per candidate.
    pub samples: u32,
}

impl Default for TuneOptions {
    /// Power-of-two ladders around the sizes that matter for the zoo:
    /// partitions of 1–32 MiB (VGG's fc6 is ~411 MB) and fusions of
    /// 16 KiB–1 MiB (Inception's conv params are a few KiB each).
    fn default() -> Self {
        Self {
            seed: 0x71C_7AC,
            partition_ladder: ladder(&[1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20]),
            fusion_ladder: ladder(&[16 << 10, 64 << 10, 256 << 10, 1 << 20]),
            sweeps: 2,
            samples: 2,
        }
    }
}

impl TuneOptions {
    /// A reduced search for smoke tests and benchmarks: one sweep over
    /// coarse ladders, one sample per candidate.
    pub fn quick() -> Self {
        Self {
            seed: 0x71C_7AC,
            partition_ladder: ladder(&[4 << 20, 16 << 20]),
            fusion_ladder: ladder(&[64 << 10]),
            sweeps: 1,
            samples: 1,
        }
    }
}

/// `None` (pass off) followed by each size in `bytes`.
fn ladder(bytes: &[u64]) -> Vec<Option<u64>> {
    std::iter::once(None)
        .chain(bytes.iter().copied().map(Some))
        .collect()
}

/// Outcome of [`auto_tune_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneResult {
    /// The argmin-makespan configuration found.
    pub best: CommConfig,
    /// Mean fault-free makespan under `best`, in seconds.
    pub best_makespan_s: f64,
    /// Mean fault-free makespan under the default (untuned)
    /// configuration, in seconds.
    pub baseline_makespan_s: f64,
    /// Distinct candidate configurations evaluated (including the
    /// baseline).
    pub evaluations: usize,
}

impl TuneResult {
    /// Makespan improvement of `best` over the untuned baseline, in
    /// percent (0 when tuning found nothing better).
    pub fn speedup_pct(&self) -> f64 {
        (self.baseline_makespan_s / self.best_makespan_s - 1.0) * 100.0
    }
}

/// Searches for the [`CommConfig`] minimising the mean fault-free
/// makespan of `model` on `cluster` under `scheduler`.
///
/// Coordinate descent: starting from the default configuration, each
/// sweep probes the full ladder of one axis (partition or fusion) while
/// holding the other at the incumbent, keeping a candidate only when it
/// is strictly better. The seed permutes which axis each sweep probes
/// first. Every candidate evaluation — deploy, schedule, `samples`
/// fault-free simulated iterations — flows through
/// [`DeployCache::tune_eval`], so repeated searches over overlapping
/// ladders re-simulate nothing.
///
/// The comm thresholds of `cluster` itself are ignored: the search
/// always starts from (and may return) the default configuration.
///
/// # Errors
///
/// Returns a [`DeployError`] if the model does not fit the cluster or a
/// ladder contains a zero threshold.
pub fn auto_tune_with(
    cache: &DeployCache,
    model: &ModelGraph,
    cluster: &ClusterSpec,
    scheduler: SchedulerKind,
    config: &SimConfig,
    options: &TuneOptions,
) -> Result<TuneResult, DeployError> {
    // Candidates are ranked on quiet simulations: injected faults would
    // make the objective depend on the fault stream rather than the
    // granularity under test.
    let mut config = config.clone();
    config.faults = FaultSpec::default();
    let samples = options.samples.max(1);
    let mut evaluations = 0usize;
    let mut eval = |comm: CommConfig| -> Result<f64, DeployError> {
        evaluations += 1;
        let candidate = cluster.clone().with_comm(comm);
        cache.tune_eval(
            model,
            &candidate,
            scheduler,
            &config,
            samples,
            |d, sched| {
                let sum: f64 = (0..u64::from(samples))
                    .map(|i| {
                        simulate(d.graph(), sched, &config, EVAL_ITER_BASE + i)
                            .makespan()
                            .as_secs_f64()
                    })
                    .sum();
                sum / f64::from(samples)
            },
        )
    };

    let baseline = eval(CommConfig::default())?;
    let mut best = CommConfig::default();
    let mut best_cost = baseline;
    let mut rng = options.seed;
    for _ in 0..options.sweeps {
        // xorshift64*: which axis this sweep probes first.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let axes = if rng.is_multiple_of(2) {
            [0, 1]
        } else {
            [1, 0]
        };
        for axis in axes {
            let steps = if axis == 0 {
                &options.partition_ladder
            } else {
                &options.fusion_ladder
            };
            for &threshold in steps {
                let mut candidate = best;
                if axis == 0 {
                    candidate.partition_bytes = threshold;
                } else {
                    candidate.fusion_bytes = threshold;
                }
                if candidate == best {
                    continue;
                }
                let cost = eval(candidate)?;
                if cost < best_cost {
                    best = candidate;
                    best_cost = cost;
                }
            }
        }
    }
    Ok(TuneResult {
        best,
        best_makespan_s: best_cost,
        baseline_makespan_s: baseline,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_models::{tiny_mlp, Mode, Model};

    fn setup() -> (ModelGraph, ClusterSpec, SimConfig) {
        let model = Model::InceptionV1.build_with_batch(Mode::Training, 4);
        let cluster = ClusterSpec::new(4, 2);
        (model, cluster, SimConfig::cloud_gpu())
    }

    #[test]
    fn search_is_deterministic_under_a_fixed_seed() {
        let (model, cluster, config) = setup();
        let opts = TuneOptions::quick();
        let cache = DeployCache::new();
        let a =
            auto_tune_with(&cache, &model, &cluster, SchedulerKind::Tac, &config, &opts).unwrap();
        let b =
            auto_tune_with(&cache, &model, &cluster, SchedulerKind::Tac, &config, &opts).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn tuned_result_never_regresses_below_the_baseline() {
        let (model, cluster, config) = setup();
        let cache = DeployCache::new();
        let r = auto_tune_with(
            &cache,
            &model,
            &cluster,
            SchedulerKind::Tac,
            &config,
            &TuneOptions::quick(),
        )
        .unwrap();
        assert!(r.best_makespan_s <= r.baseline_makespan_s);
        assert!(r.speedup_pct() >= 0.0);
        assert!(r.evaluations >= 2);
    }

    #[test]
    fn warm_retunes_are_served_from_the_cache() {
        let (model, cluster, config) = setup();
        let opts = TuneOptions::quick();
        let cache = DeployCache::new();
        auto_tune_with(&cache, &model, &cluster, SchedulerKind::Tic, &config, &opts).unwrap();
        let cold = cache.stats();
        assert_eq!(cold.eval_hits, 0);
        assert!(cold.eval_misses > 0);
        auto_tune_with(&cache, &model, &cluster, SchedulerKind::Tic, &config, &opts).unwrap();
        let warm = cache.stats();
        // The second search replays the identical candidate walk without
        // a single fresh deploy/schedule/simulate.
        assert_eq!(warm.eval_misses, cold.eval_misses);
        assert_eq!(warm.eval_hits, cold.eval_misses);
    }

    #[test]
    fn fused_transfers_win_on_a_tiny_many_param_model() {
        // tiny_mlp's parameters are all small, so fusing them removes
        // per-transfer latency without hurting overlap; the search must
        // find a config at least as good as default and keep the
        // default when nothing beats it.
        let model = tiny_mlp(Mode::Training, 8);
        let cluster = ClusterSpec::new(2, 1);
        let cache = DeployCache::new();
        let r = auto_tune_with(
            &cache,
            &model,
            &cluster,
            SchedulerKind::Tac,
            &SimConfig::cloud_gpu(),
            &TuneOptions::default(),
        )
        .unwrap();
        assert!(r.best_makespan_s <= r.baseline_makespan_s);
    }
}
