//! In-process multi-threaded PS/worker runtime.
//!
//! Where `tictac-sim` *models* a Model-Replica + Parameter-Server cluster
//! with a discrete-event engine, this crate *runs* one: every device
//! (worker or PS shard) and every worker–PS channel is an OS thread,
//! parameter transfers flow through prioritized queues (binary heaps keyed
//! by the [`Schedule`] rank), and compute is a wall-clock busy-loop
//! calibrated by the same cost oracle the simulator uses. The paper's
//! enforcement mechanism (§5.1) is reproduced at the sender: per-channel
//! counters hold a ranked transfer back until every lower-ranked transfer
//! of that channel has been handed off, exactly as TicTac gates gRPC
//! hand-offs.
//!
//! The runtime emits the same [`ExecutionTrace`] the simulator does —
//! with *wall-clock* timestamps (nanoseconds since iteration start) — so
//! every trace consumer (metrics, `tictac-obs` analyzers, Perfetto
//! export) works on real concurrent executions unchanged.
//!
//! Unprioritized queue entries (all compute, and every transfer under
//! the unscheduled baseline) pop in a seeded per-iteration-shuffled
//! order, physically reproducing the arbitrary ready-queue servicing the
//! paper attributes to DAG frameworks (§3) — the behavior TIC/TAC exist
//! to fix.
//!
//! Seeded faults are reproduced on the wall clock via
//! [`run_iteration_injected`]: the same [`FaultPlan`] the simulator
//! samples is delivered by a supervisor thread as real timer-driven
//! retransmits, channel blackouts, worker crash/respawn cycles, PS
//! stalls and straggler slowdowns. What is deliberately *not*
//! reproduced: modeled noise and reorder errors — a threaded run's
//! variance is physical (scheduler jitter, cache effects), which is the
//! point of having this backend.
//!
//! [`Schedule`]: tictac_sched::Schedule
//! [`ExecutionTrace`]: tictac_trace::ExecutionTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runtime;

pub use runtime::{
    run_iteration, run_iteration_injected, run_iteration_with_plan, ExecOptions, ExecPlan,
    RuntimeError,
};
pub use tictac_faults::{FaultClock, FaultPlan};
