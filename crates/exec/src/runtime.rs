//! The threaded cluster runtime.
//!
//! Topology: one OS thread per device (worker or PS shard) draining a
//! priority ready-queue of compute ops, and one OS thread per worker–PS
//! channel draining a rank-keyed transfer queue. Dependency tracking is
//! lock-free (atomic indegrees); queues are `Mutex` + `Condvar`. All
//! timestamps are wall-clock nanoseconds since iteration start, recorded
//! into a [`TraceBuilder`] and returned as an [`ExecutionTrace`].
//!
//! Enforcement (§5.1) mirrors the simulator's sender-side mechanism: each
//! channel keeps a hand-off counter; a ranked send is handed to the
//! channel only when the counter equals its rank, otherwise it parks in a
//! rank-keyed blocked map and is released by the hand-off that advances
//! the counter. Because the chain of releases is observed by the channel
//! thread in arbitrary interleavings, the channel additionally gates
//! ranked *starts* on `next_rank_to_fly`, which closes the window where a
//! later rank is queued before an earlier one has been pushed.
//!
//! Unprioritized work — every compute op, and every transfer under the
//! baseline — pops in a *seeded-shuffle* order rather than FIFO readiness
//! order. The paper's whole premise (§3) is that DAG frameworks service
//! ready queues in an arbitrary, per-iteration-random order; a FIFO pop
//! would hand the baseline a consistent near-layer order and erase the
//! effect TIC/TAC exist to fix. The shuffle key is a hash of
//! [`ExecOptions::shuffle_seed`] and the op id, so a given seed is
//! reproducible and different seeds (one per iteration, see
//! `ThreadedBackend`) give different arbitrary orders.
//!
//! Seeded faults ([`run_iteration_injected`]) bring the simulator's
//! fault model to the wall clock: the same [`FaultPlan`] both backends
//! sample is delivered here by a supervisor walking a wall-clock agenda
//! (instants mapped through [`FaultClock::wall_clock`]), with keyed
//! per-attempt drop decisions shared with the simulator — identical
//! seeds inject the identical fault set on either backend.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use tictac_faults::{FaultClock, FaultPlan};
use tictac_graph::{ChannelId, DeviceId, Graph, OpId, OpKind};
use tictac_sched::Schedule;
use tictac_timing::{CostOracle, Platform, SimTime, TimeOracle};
use tictac_trace::{ExecutionTrace, FaultEvent, FaultEventKind, TraceBuilder};

/// Cap on op names reported by [`RuntimeError::Stalled`]; past it a
/// single `+ N more` entry summarizes the rest.
const STALL_REPORT_CAP: usize = 12;

/// Configuration of one threaded iteration.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Hardware model supplying compute and wire times for the calibrated
    /// busy-loops.
    pub platform: Platform,
    /// Whether sender-side rank enforcement is active (the paper's §5.1
    /// mechanism). Without it, ranked sends are handed off as they become
    /// ready and the channel still prefers the lowest queued rank.
    pub enforcement: bool,
    /// Multiplier on every modeled duration (compute and wire). `1.0`
    /// replays model time 1:1 on the wall clock; smaller values shrink
    /// wall time at the cost of a larger relative scheduling overhead.
    pub time_scale: f64,
    /// Fair-share divisor for wire time; `None` derives it from the
    /// topology exactly as the simulator does (PS fan-out).
    pub bandwidth_share: Option<f64>,
    /// Wall-clock budget for the whole iteration; exceeding it aborts the
    /// run with [`RuntimeError::Stalled`].
    pub watchdog: Duration,
    /// Seed for the arbitrary pop order of *unprioritized* queue entries
    /// (see the module docs). Ranked transfers are unaffected. Same seed,
    /// same order; vary it per iteration to reproduce the paper's
    /// "unique order in every run" baseline behavior.
    pub shuffle_seed: u64,
}

impl ExecOptions {
    /// Options for `platform` with enforcement on, 1:1 time scale and a
    /// 30-second watchdog.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            enforcement: true,
            time_scale: 1.0,
            bandwidth_share: None,
            watchdog: Duration::from_secs(30),
            shuffle_seed: 0x71C7AC,
        }
    }

    /// Sets the time scale (see [`ExecOptions::time_scale`]).
    #[must_use]
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Enables or disables sender-side enforcement.
    #[must_use]
    pub fn with_enforcement(mut self, on: bool) -> Self {
        self.enforcement = on;
        self
    }

    /// Overrides the fair-share bandwidth divisor.
    #[must_use]
    pub fn with_bandwidth_share(mut self, share: f64) -> Self {
        self.bandwidth_share = Some(share);
        self
    }

    /// Sets the stall watchdog budget.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the unprioritized-pop shuffle seed (see
    /// [`ExecOptions::shuffle_seed`]).
    #[must_use]
    pub fn with_shuffle_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = seed;
        self
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of `(seed, x)` used to
/// impose an arbitrary-but-reproducible pop order on unprioritized work.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self::new(Platform::cloud_gpu())
    }
}

/// Failures of the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The schedule covers a different graph.
    ScheduleMismatch {
        /// Ops covered by the schedule.
        schedule_len: usize,
        /// Ops in the graph.
        graph_len: usize,
    },
    /// The watchdog expired with work outstanding (a wedged thread or an
    /// impossible schedule).
    Stalled {
        /// Ops that completed before the abort.
        completed: usize,
        /// Ops still outstanding.
        remaining: usize,
        /// How long the watchdog waited.
        waited: Duration,
        /// Names of the outstanding ops, capped at [`STALL_REPORT_CAP`]
        /// (a trailing `+ N more` entry summarizes any excess).
        outstanding: Vec<String>,
        /// Queued-transfer depth per channel at the abort (ranked +
        /// unranked + enforcement-blocked entries).
        channel_depths: Vec<usize>,
    },
    /// A transfer exhausted its retry budget with no degraded barrier
    /// configured to absorb the loss.
    RetriesExhausted {
        /// The recv op of the abandoned transfer.
        op: OpId,
        /// Attempts made (the initial send plus every retransmit).
        attempts: u32,
    },
    /// A `SimConfig` knob was set that the threaded backend cannot honor;
    /// refusing it loudly beats silently dropping it.
    UnsupportedConfig {
        /// The offending configuration field.
        knob: &'static str,
        /// Why the backend cannot honor it.
        reason: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ScheduleMismatch {
                schedule_len,
                graph_len,
            } => write!(
                f,
                "schedule covers {schedule_len} ops but the graph has {graph_len}"
            ),
            RuntimeError::Stalled {
                completed,
                remaining,
                waited,
                outstanding,
                channel_depths,
            } => {
                write!(
                    f,
                    "runtime stalled after {waited:?}: {completed} ops done, {remaining} outstanding"
                )?;
                if !outstanding.is_empty() {
                    write!(f, " [{}]", outstanding.join(", "))?;
                }
                write!(f, "; channel queue depths {channel_depths:?}")
            }
            RuntimeError::RetriesExhausted { op, attempts } => write!(
                f,
                "transfer {op:?} was lost on all {attempts} attempts and no degraded barrier is configured"
            ),
            RuntimeError::UnsupportedConfig { knob, reason } => {
                write!(f, "threaded backend cannot honor `{knob}`: {reason}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Precomputed, schedule-derived execution state: enforcement ranks per
/// channel, the send feeding each recv, the fair-share bandwidth divisor
/// and the cost oracle.
///
/// Deriving this is the only super-constant setup work of an iteration
/// (sorting each channel's recvs by rank, two graph sweeps, a platform
/// clone), and it is a pure function of `(graph, schedule, opts)` — so a
/// session running many iterations of one schedule should build the plan
/// once and pass it to [`run_iteration_with_plan`]. `ThreadedBackend`
/// does exactly that, keyed by [`ExecPlan::key`].
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// Enforcement rank per op: on the PS-side send of each prioritized
    /// transfer, and on the recv itself (both for queue keying and for
    /// sendless hand-built graphs).
    rank: Vec<Option<u64>>,
    /// The send op feeding each recv, for transfer-interval attribution.
    send_of: Vec<Option<OpId>>,
    /// Per-channel wire-time stretch: the fair-share divisor (PS
    /// fan-out, or the override) divided by the channel's relative
    /// bandwidth factor. Uniform graphs divide by exactly `1.0`,
    /// preserving the homogeneous durations bit-for-bit.
    chan_share: Vec<f64>,
    /// Duration oracle on the plan's platform.
    oracle: CostOracle,
}

impl ExecPlan {
    /// Derives the plan for one `(graph, schedule, opts)` configuration.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ScheduleMismatch`] if `schedule` does not cover
    /// `graph`.
    pub fn new(
        graph: &Graph,
        schedule: &Schedule,
        opts: &ExecOptions,
    ) -> Result<Self, RuntimeError> {
        if schedule.len() != graph.len() {
            return Err(RuntimeError::ScheduleMismatch {
                schedule_len: schedule.len(),
                graph_len: graph.len(),
            });
        }
        let n = graph.len();

        // Enforcement ranks: per-channel priorities normalized to [0, n),
        // attached to the PS-side send (the sender enforces before
        // hand-off) and mirrored on the recv for queue keying.
        let mut rank = vec![None; n];
        let mut send_of = vec![None; n];
        for recvs in schedule.ordered_recvs_per_channel(graph) {
            for (r, recv) in recvs.into_iter().enumerate() {
                rank[recv.index()] = Some(r as u64);
                if let Some(send) = graph
                    .preds(recv)
                    .iter()
                    .copied()
                    .find(|&p| graph.op(p).kind().is_send())
                {
                    rank[send.index()] = Some(r as u64);
                }
            }
        }
        for id in graph.op_ids() {
            if graph.op(id).is_recv() {
                send_of[id.index()] = graph
                    .preds(id)
                    .iter()
                    .copied()
                    .find(|&p| graph.op(p).kind().is_send());
            }
        }

        let bandwidth_share = opts.bandwidth_share.unwrap_or_else(|| {
            // Same derivation as the simulator: PS deployments fan every
            // server out to all workers; peer topologies keep one stream.
            if graph.channels().iter().all(tictac_graph::Channel::is_peer) {
                1.0
            } else {
                let workers = graph.workers().count();
                let servers = graph.parameter_servers().count();
                workers.max(servers).max(1) as f64
            }
        });

        let chan_share: Vec<f64> = (0..graph.channels().len())
            .map(|c| {
                bandwidth_share / graph.channel_bandwidth(tictac_graph::ChannelId::from_index(c))
            })
            .collect();

        Ok(Self {
            rank,
            send_of,
            chan_share,
            oracle: CostOracle::new(opts.platform.clone()),
        })
    }

    /// A content fingerprint of the plan-relevant inputs (graph shape and
    /// every schedule priority): two calls agree exactly when a cached
    /// plan derived from one is valid for the other. FNV-1a, cheap enough
    /// to compute per iteration — unlike re-deriving the plan, it
    /// allocates nothing and sorts nothing.
    pub fn key(graph: &Graph, schedule: &Schedule) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(graph.len() as u64);
        fold(graph.devices().len() as u64);
        fold(graph.channels().len() as u64);
        // Heterogeneity tables change the baked-in per-channel shares and
        // oracle durations, so they are plan-relevant. Uniform graphs have
        // empty tables and fold nothing — their keys are unchanged.
        for d in 0..graph.devices().len() {
            let speed = graph.device_speed(tictac_graph::DeviceId::from_index(d));
            if speed != 1.0 {
                fold(d as u64);
                fold(speed.to_bits());
            }
        }
        for c in 0..graph.channels().len() {
            let bw = graph.channel_bandwidth(tictac_graph::ChannelId::from_index(c));
            if bw != 1.0 {
                fold(c as u64);
                fold(bw.to_bits());
            }
        }
        for op in graph.op_ids() {
            match schedule.priority(op) {
                Some(r) => {
                    fold(1);
                    fold(r);
                }
                None => fold(0),
            }
        }
        h
    }
}

/// Executes one iteration of `graph` under `schedule` on real threads and
/// returns its wall-clock [`ExecutionTrace`].
///
/// Spawns one thread per device plus one per channel for the duration of
/// the call; the calling thread blocks until completion. A stall is
/// detected within `opts.watchdog`; the abort then drains every queue
/// and cuts in-flight busy-waits short, so the call returns within a few
/// milliseconds of the watchdog firing.
/// Timestamps are nanoseconds since iteration start, so traces are
/// directly comparable to simulator traces — ordering-exact, timing-real.
///
/// Derives a fresh [`ExecPlan`] each call; loops running one schedule
/// many times should build the plan once and use
/// [`run_iteration_with_plan`].
///
/// # Errors
///
/// [`RuntimeError::ScheduleMismatch`] if `schedule` does not cover
/// `graph`; [`RuntimeError::Stalled`] if the watchdog expires.
pub fn run_iteration(
    graph: &Graph,
    schedule: &Schedule,
    opts: &ExecOptions,
) -> Result<ExecutionTrace, RuntimeError> {
    let plan = ExecPlan::new(graph, schedule, opts)?;
    run_iteration_with_plan(graph, schedule, opts, &plan)
}

/// [`run_iteration`] with a prebuilt [`ExecPlan`], skipping the
/// per-iteration schedule derivation.
///
/// `plan` must have been built by [`ExecPlan::new`] from this same
/// `(graph, schedule)` pair and from options agreeing with `opts` on
/// `platform` and `bandwidth_share` (the fields a plan bakes in; the
/// shuffle seed, time scale, watchdog and enforcement flag may differ
/// freely) — [`ExecPlan::key`] decides graph/schedule reusability.
///
/// # Errors
///
/// [`RuntimeError::ScheduleMismatch`] if `schedule` (or the plan) does
/// not cover `graph`; [`RuntimeError::Stalled`] if the watchdog expires.
pub fn run_iteration_with_plan(
    graph: &Graph,
    schedule: &Schedule,
    opts: &ExecOptions,
    plan: &ExecPlan,
) -> Result<ExecutionTrace, RuntimeError> {
    run_iteration_injected(graph, schedule, opts, plan, &FaultPlan::quiet())
}

/// [`run_iteration_with_plan`] with seeded fault injection: the concrete
/// faults of `faults` are brought to the wall clock.
///
/// A supervisor thread walks the plan's fault agenda (instants mapped
/// through [`FaultClock::wall_clock`] at `opts.time_scale`): transfer
/// drops wedge the channel until the [`RetryPolicy`] timeout fires and
/// then retransmit; blackouts park the channel thread for the window;
/// worker crashes kill the device thread mid-iteration (lost compute is
/// requeued) and respawn it at the recovery instant; PS stalls park the
/// shard and pause in-flight updates; stragglers scale the calibrated
/// busy-loops. If the plan carries a degraded barrier, an iteration that
/// cannot finish closes with the missing ops deferred (mirroring the
/// simulator's degraded-mode barrier) instead of erroring.
///
/// A quiet plan ([`FaultPlan::quiet`]) makes this exactly
/// [`run_iteration_with_plan`].
///
/// # Errors
///
/// [`RuntimeError::ScheduleMismatch`] as above;
/// [`RuntimeError::RetriesExhausted`] if a transfer burns its whole retry
/// budget with no barrier configured; [`RuntimeError::Stalled`] if the
/// watchdog expires (with the outstanding ops and channel depths named).
///
/// [`RetryPolicy`]: tictac_timing::RetryPolicy
pub fn run_iteration_injected(
    graph: &Graph,
    schedule: &Schedule,
    opts: &ExecOptions,
    plan: &ExecPlan,
    faults: &FaultPlan,
) -> Result<ExecutionTrace, RuntimeError> {
    if schedule.len() != graph.len() || plan.rank.len() != graph.len() {
        return Err(RuntimeError::ScheduleMismatch {
            schedule_len: schedule.len().min(plan.rank.len()),
            graph_len: graph.len(),
        });
    }
    let shared = Shared::new(graph, schedule, opts, plan, faults);
    for &(device, _) in &faults.stragglers {
        shared.log_fault(SimTime::ZERO, FaultEventKind::StragglerApplied { device });
    }
    let agenda = shared.build_agenda();

    std::thread::scope(|scope| {
        for dev in 0..graph.devices().len() {
            let shared = &shared;
            std::thread::Builder::new()
                .name(format!("tictac-dev{dev}"))
                .spawn_scoped(scope, move || shared.device_loop(dev))
                .expect("spawn device thread");
        }
        for ch in 0..graph.channels().len() {
            let shared = &shared;
            std::thread::Builder::new()
                .name(format!("tictac-ch{ch}"))
                .spawn_scoped(scope, move || shared.channel_loop(ch))
                .expect("spawn channel thread");
        }

        // Release the roots only once every thread can observe them.
        for op in graph.roots() {
            shared.dispatch(op);
        }
        shared.supervise(scope, agenda)
    })?;

    if let Some(err) = shared.error.lock().expect("error lock").take() {
        return Err(err);
    }

    let mut builder = shared
        .trace
        .into_inner()
        .expect("no thread panicked holding the trace");
    let mut log = shared
        .fault_log
        .into_inner()
        .expect("no thread panicked holding the fault log");
    // Concurrent threads appended out of order; the trace contract is
    // time-sorted events (stable, so same-instant events keep log order).
    log.sort_by_key(|e| e.at);
    for e in log {
        builder.push_fault(e.at, e.kind);
    }
    Ok(builder.finish())
}

/// Per-device ready queue: a binary heap keyed by `(schedule priority,
/// tiebreak)`, so prioritized ops run lowest-number-first; unprioritized
/// ops (key `u64::MAX`) run behind them in seeded-shuffle order — the
/// arbitrary ready-queue servicing the paper attributes to DAG frameworks.
#[derive(Debug, Default)]
struct DeviceQueue {
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Crash mailbox: a pending kill (value = recovery instant, wall ns).
    /// The device thread takes it, marks itself `dead` and exits; the
    /// supervisor respawns the loop at the recovery instant.
    crash: Option<u64>,
    /// Set by the dying thread; consumed by the supervisor's respawn.
    dead: bool,
}

/// One due item of the supervisor's fault agenda (wall-clock ordered).
enum FaultDue {
    BlackoutStart { ch: usize },
    BlackoutEnd { ch: usize },
    CrashStart { dev: usize, until: u64 },
    CrashEnd { dev: usize },
    StallStart { dev: usize },
    StallEnd { dev: usize },
    Barrier,
}

/// How a fault-aware busy-wait ended.
enum WaitOutcome {
    /// The deadline passed.
    Elapsed,
    /// The shutdown latch flipped (completion or abort).
    Shutdown,
    /// The interrupt flag flipped (a crash kill for this device).
    Interrupted,
}

/// The end instant of the availability window covering `now`, if any.
fn down_until(windows: &[(u64, u64)], now: u64) -> Option<u64> {
    windows
        .iter()
        .find(|&&(s, e)| s <= now && now < e)
        .map(|&(_, e)| e)
}

/// End instant of an op starting at `t0` with busy time `d`, paused by
/// every overlapping stall window (the simulator's pause semantics: the
/// op finishes late by the overlap). `windows` is sorted by start, so a
/// pause that pushes the end into a later window extends again.
fn stall_adjusted_end(windows: &[(u64, u64)], t0: u64, d: u64) -> u64 {
    let mut end = t0.saturating_add(d);
    for &(s, e) in windows {
        if s < end && e > t0 {
            end = end.saturating_add(e - s.max(t0));
        }
    }
    end
}

/// Per-channel transfer queue plus the sender-side enforcement state.
#[derive(Debug, Default)]
struct ChanQueue {
    /// Queued ranked transfers (recv ops), keyed by enforcement rank.
    ranked: BinaryHeap<Reverse<(u64, usize)>>,
    /// Queued unranked transfers, keyed by seeded-shuffle hash: an
    /// arbitrary, per-seed-stable wire order (the baseline's behavior).
    unranked: BinaryHeap<Reverse<(u64, usize)>>,
    /// Sender-side counter: ranked hand-offs completed so far (§5.1).
    counter: u64,
    /// Ranked sends parked until the counter reaches their rank.
    blocked: BTreeMap<u64, usize>,
    /// Next rank allowed to *start* on the wire; closes the hand-off
    /// interleaving window (see module docs).
    next_rank_to_fly: u64,
}

struct Shared<'g> {
    graph: &'g Graph,
    schedule: &'g Schedule,
    opts: &'g ExecOptions,
    /// Schedule-derived state (ranks, send pairing, bandwidth share,
    /// oracle) — precomputed once per schedule, not per iteration.
    plan: &'g ExecPlan,
    started: Instant,

    /// Outstanding predecessor count per op.
    indegree: Vec<AtomicU32>,
    /// Ops not yet completed.
    remaining: AtomicUsize,
    /// Set on completion or watchdog abort; threads drain and exit.
    shutdown: AtomicBool,

    devices: Vec<(Mutex<DeviceQueue>, Condvar)>,
    channels: Vec<(Mutex<ChanQueue>, Condvar)>,

    /// Completion signal for the supervisor.
    done: (Mutex<bool>, Condvar),
    trace: Mutex<TraceBuilder>,

    /// The iteration's concrete fault set ([`FaultPlan::quiet`] when no
    /// injection is active).
    faults: &'g FaultPlan,
    /// Maps plan instants onto the wall clock at `opts.time_scale`.
    clock: FaultClock,
    /// False for a quiet plan: every fault check short-circuits.
    faulty: bool,
    /// Per-op completion flags (for the degraded-barrier scan and stall
    /// diagnostics; `remaining` only counts).
    completed: Vec<AtomicBool>,
    /// Per-recv transfer attempt counter (keyed drop decisions).
    attempts: Vec<AtomicU32>,
    /// Per-device straggler slowdown factor (1.0 = none).
    slowdown: Vec<f64>,
    /// Per-device PS-stall windows, wall ns since start, sorted.
    stall_windows: Vec<Vec<(u64, u64)>>,
    /// Per-channel dark windows (blackouts, plus the owning worker's
    /// crash downtimes), wall ns since start, sorted.
    chan_windows: Vec<Vec<(u64, u64)>>,
    /// Per-device crash interrupt: cuts the busy-loop of an op short.
    crash_pending: Vec<AtomicBool>,
    /// Set when the degraded barrier closed the iteration.
    degraded: AtomicBool,
    /// First fatal runtime error (a thread latches it and shuts down).
    error: Mutex<Option<RuntimeError>>,
    /// Fault events accumulated across threads, merged into the trace at
    /// the end of the iteration.
    fault_log: Mutex<Vec<FaultEvent>>,
}

impl<'g> Shared<'g> {
    fn new(
        graph: &'g Graph,
        schedule: &'g Schedule,
        opts: &'g ExecOptions,
        plan: &'g ExecPlan,
        faults: &'g FaultPlan,
    ) -> Self {
        let n = graph.len();
        let ndev = graph.devices().len();
        let clock = FaultClock::wall_clock(opts.time_scale);

        let mut slowdown = vec![1.0f64; ndev];
        for &(device, factor) in &faults.stragglers {
            slowdown[device.index()] = factor;
        }
        let mut stall_windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); ndev];
        for s in &faults.stalls {
            stall_windows[s.device.index()].push((
                clock.instant(s.at).as_nanos(),
                clock.instant(s.until).as_nanos(),
            ));
        }
        let mut chan_windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); graph.channels().len()];
        for b in &faults.blackouts {
            chan_windows[b.channel.index()].push((
                clock.instant(b.at).as_nanos(),
                clock.instant(b.until).as_nanos(),
            ));
        }
        for c in &faults.crashes {
            // A crashed worker's channels go dark for the whole downtime,
            // exactly as the simulator darkens them.
            for (ch, channel) in graph.channels().iter().enumerate() {
                if channel.worker() == c.device {
                    chan_windows[ch].push((
                        clock.instant(c.at).as_nanos(),
                        clock.instant(c.until).as_nanos(),
                    ));
                }
            }
        }
        for w in stall_windows.iter_mut().chain(chan_windows.iter_mut()) {
            w.sort_unstable();
        }

        Self {
            graph,
            schedule,
            opts,
            plan,
            started: Instant::now(),
            indegree: (0..n)
                .map(|i| AtomicU32::new(graph.preds(OpId::from_index(i)).len() as u32))
                .collect(),
            remaining: AtomicUsize::new(n),
            shutdown: AtomicBool::new(false),
            devices: (0..ndev).map(|_| Default::default()).collect(),
            channels: (0..graph.channels().len())
                .map(|_| Default::default())
                .collect(),
            done: (Mutex::new(false), Condvar::new()),
            trace: Mutex::new(TraceBuilder::new(n)),
            faults,
            clock,
            faulty: !faults.is_quiet(),
            completed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            slowdown,
            stall_windows,
            chan_windows,
            crash_pending: (0..ndev).map(|_| AtomicBool::new(false)).collect(),
            degraded: AtomicBool::new(false),
            error: Mutex::new(None),
            fault_log: Mutex::new(Vec::new()),
        }
    }

    /// Appends a timestamped fault event to the iteration's log.
    fn log_fault(&self, at: SimTime, kind: FaultEventKind) {
        self.fault_log
            .lock()
            .expect("fault log lock")
            .push(FaultEvent { at, kind });
    }

    /// Wall-clock time since iteration start, in the trace's clock domain.
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    /// Busy-waits until `deadline`: sleeps through the bulk, yields close
    /// in, spins the last few microseconds for precision.
    ///
    /// Returns `false` if the shutdown latch flipped before the deadline
    /// (a watchdog abort — during normal completion no op can be in
    /// flight when the latch is set, since the latch requires every op to
    /// have completed). Sleeps are capped so an abort cuts even a long
    /// modeled duration short within a few milliseconds.
    fn wait_until(&self, deadline: Instant) -> bool {
        matches!(
            self.wait_interruptible(deadline, None),
            WaitOutcome::Elapsed
        )
    }

    /// [`Shared::wait_until`] that can additionally be cut short by an
    /// interrupt flag (a crash kill aimed at the waiting device). The
    /// sleep cap bounds both abort and kill delivery latency.
    fn wait_interruptible(&self, deadline: Instant, interrupt: Option<&AtomicBool>) -> WaitOutcome {
        const SLEEP_CAP: Duration = Duration::from_millis(2);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return WaitOutcome::Shutdown;
            }
            if let Some(flag) = interrupt {
                if flag.load(Ordering::Acquire) {
                    return WaitOutcome::Interrupted;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return WaitOutcome::Elapsed;
            }
            let left = deadline - now;
            if left > Duration::from_micros(400) {
                std::thread::sleep((left - Duration::from_micros(200)).min(SLEEP_CAP));
            } else if left > Duration::from_micros(20) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Scaled wall-clock stand-in for a modeled duration.
    fn scaled(&self, d: tictac_timing::SimDuration) -> Duration {
        Duration::from_nanos(d.mul_f64(self.opts.time_scale).as_nanos())
    }

    /// Routes an op whose dependencies are all satisfied.
    fn dispatch(&self, op: OpId) {
        match self.graph.op(op).kind() {
            OpKind::Send { .. } => self.handoff(op),
            OpKind::Recv { .. } => {
                let ch = self
                    .graph
                    .op(op)
                    .kind()
                    .channel()
                    .expect("recv has a channel")
                    .index();
                let (lock, cv) = &self.channels[ch];
                {
                    let mut q = lock.lock().expect("channel lock");
                    match self.plan.rank[op.index()] {
                        Some(r) => q.ranked.push(Reverse((r, op.index()))),
                        None => {
                            let key = mix(self.opts.shuffle_seed, op.index() as u64);
                            q.unranked.push(Reverse((key, op.index())));
                        }
                    }
                }
                cv.notify_all();
            }
            _ => {
                let dev = self.graph.op(op).device().index();
                let priority = self.schedule.priority(op).unwrap_or(u64::MAX);
                let (lock, cv) = &self.devices[dev];
                {
                    let mut q = lock.lock().expect("device lock");
                    q.seq += 1;
                    // Prioritized ops tie-break on arrival; unprioritized
                    // ops pop in seeded-shuffle order (module docs).
                    let tiebreak = if priority == u64::MAX {
                        mix(self.opts.shuffle_seed, op.index() as u64)
                    } else {
                        q.seq
                    };
                    q.heap.push(Reverse((priority, tiebreak, op.index())));
                }
                cv.notify_all();
            }
        }
    }

    /// Sender-side enforcement: hands `send` to its channel if the counter
    /// has reached its rank, else parks it. Hand-off is instantaneous and
    /// completes the send (its wire interval is recorded later, with the
    /// recv); completing it may release further parked sends — the whole
    /// chain is collected under the channel lock, then completed outside.
    fn handoff(&self, send: OpId) {
        let ch = self
            .graph
            .op(send)
            .kind()
            .channel()
            .expect("send has a channel")
            .index();
        let mut chain = Vec::new();
        {
            let (lock, _) = &self.channels[ch];
            let mut q = lock.lock().expect("channel lock");
            match self.plan.rank[send.index()] {
                Some(r) if self.opts.enforcement && q.counter != r => {
                    q.blocked.insert(r, send.index());
                }
                ranked => {
                    chain.push(send);
                    if self.opts.enforcement && ranked.is_some() {
                        q.counter += 1;
                        while let Some(next) = {
                            let c = q.counter;
                            q.blocked.remove(&c)
                        } {
                            chain.push(OpId::from_index(next));
                            q.counter += 1;
                        }
                    }
                }
            }
        }
        for s in chain {
            self.complete(s);
        }
    }

    /// Marks `op` complete and dispatches newly-ready successors
    /// (iteratively — released send chains can be long).
    fn complete(&self, op: OpId) {
        let mut work = vec![op];
        while let Some(op) = work.pop() {
            self.completed[op.index()].store(true, Ordering::Release);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.finish();
            }
            for &succ in self.graph.succs(op) {
                if self.indegree[succ.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.dispatch(succ);
                }
            }
        }
    }

    /// Flips the shutdown latch and wakes every sleeper.
    ///
    /// Each notification is issued while holding that queue's mutex: the
    /// worker loops check `shutdown` and then block on the condvar under
    /// the same mutex, so taking it here serializes the store against the
    /// check-then-wait — a worker that read `shutdown == false` either
    /// still holds the lock (we block until it reaches `wait`, which gets
    /// the notification) or has already released it inside `wait` (the
    /// notification wakes it). A lock-free notify could land in the gap
    /// between check and wait and be lost, sleeping the thread forever.
    fn finish(&self) {
        self.shutdown.store(true, Ordering::Release);
        for (lock, cv) in &self.devices {
            drop(lock.lock().expect("device lock"));
            cv.notify_all();
        }
        for (lock, cv) in &self.channels {
            drop(lock.lock().expect("channel lock"));
            cv.notify_all();
        }
        let (lock, cv) = &self.done;
        *lock.lock().expect("done lock") = true;
        cv.notify_all();
    }

    /// The iteration's fault agenda: every plan instant mapped onto the
    /// wall clock, sorted. Fault events are logged at their *scheduled*
    /// instants, so the event stream is a deterministic function of the
    /// plan even when the supervisor delivers an item a bit late.
    fn build_agenda(&self) -> VecDeque<(u64, FaultDue)> {
        let mut items: Vec<(u64, FaultDue)> = Vec::new();
        for b in &self.faults.blackouts {
            let ch = b.channel.index();
            items.push((
                self.clock.instant(b.at).as_nanos(),
                FaultDue::BlackoutStart { ch },
            ));
            items.push((
                self.clock.instant(b.until).as_nanos(),
                FaultDue::BlackoutEnd { ch },
            ));
        }
        for c in &self.faults.crashes {
            let dev = c.device.index();
            let until = self.clock.instant(c.until).as_nanos();
            items.push((
                self.clock.instant(c.at).as_nanos(),
                FaultDue::CrashStart { dev, until },
            ));
            items.push((until, FaultDue::CrashEnd { dev }));
        }
        for s in &self.faults.stalls {
            let dev = s.device.index();
            items.push((
                self.clock.instant(s.at).as_nanos(),
                FaultDue::StallStart { dev },
            ));
            items.push((
                self.clock.instant(s.until).as_nanos(),
                FaultDue::StallEnd { dev },
            ));
        }
        if let Some(t) = self.faults.barrier_timeout {
            items.push((self.clock.duration(t).as_nanos(), FaultDue::Barrier));
        }
        items.sort_by_key(|&(at, _)| at);
        items.into()
    }

    /// The grown-up watchdog: waits for completion while delivering the
    /// fault agenda, aborting with diagnostics (or degrading, when a
    /// barrier is configured and a quorum of work survived) on expiry.
    fn supervise<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        mut agenda: VecDeque<(u64, FaultDue)>,
    ) -> Result<(), RuntimeError> {
        let watchdog_deadline = self.started + self.opts.watchdog;
        let (lock, cv) = &self.done;
        loop {
            // Deliver due agenda items before taking the done lock
            // (applying a fault takes queue locks).
            let now_ns = self.started.elapsed().as_nanos() as u64;
            while agenda.front().is_some_and(|&(at, _)| at <= now_ns) {
                let (at, due) = agenda.pop_front().expect("checked non-empty");
                if self.remaining.load(Ordering::Acquire) == 0 {
                    // Iteration already complete: late faults are moot,
                    // mirroring the simulator's remaining-work gate.
                    agenda.clear();
                    break;
                }
                if matches!(due, FaultDue::Barrier) {
                    self.degrade(SimTime::from_nanos(at));
                    return Ok(());
                }
                self.apply_fault(scope, SimTime::from_nanos(at), due);
            }
            let done = lock.lock().expect("done lock");
            if *done {
                return Ok(());
            }
            let now = Instant::now();
            if now >= watchdog_deadline {
                drop(done);
                return self.abort_stalled();
            }
            let next_due = agenda
                .front()
                .map(|&(at, _)| self.started + Duration::from_nanos(at));
            let deadline = next_due.map_or(watchdog_deadline, |d| d.min(watchdog_deadline));
            let timeout = deadline
                .saturating_duration_since(now)
                .max(Duration::from_micros(100));
            let _ = cv.wait_timeout(done, timeout).expect("done lock");
        }
    }

    /// Delivers one due fault to the runtime.
    fn apply_fault<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        at: SimTime,
        due: FaultDue,
    ) {
        match due {
            FaultDue::BlackoutStart { ch } => {
                // The window itself is enforced by the channel thread's
                // dark-window check; unlike the simulator, an attempt
                // already on the wire finishes (DESIGN.md §11).
                self.log_fault(
                    at,
                    FaultEventKind::BlackoutStart {
                        channel: ChannelId::from_index(ch),
                    },
                );
            }
            FaultDue::BlackoutEnd { ch } => {
                self.log_fault(
                    at,
                    FaultEventKind::BlackoutEnd {
                        channel: ChannelId::from_index(ch),
                    },
                );
            }
            FaultDue::CrashStart { dev, until } => {
                self.log_fault(
                    at,
                    FaultEventKind::WorkerCrashed {
                        device: DeviceId::from_index(dev),
                    },
                );
                let (lock, cv) = &self.devices[dev];
                {
                    // Mailbox first (under the queue lock), interrupt flag
                    // second: a busy thread observing the interrupt is
                    // then guaranteed to find the mailbox when it aborts.
                    let mut q = lock.lock().expect("device lock");
                    q.crash = Some(until);
                }
                self.crash_pending[dev].store(true, Ordering::Release);
                cv.notify_all();
            }
            FaultDue::CrashEnd { dev } => {
                self.log_fault(
                    at,
                    FaultEventKind::WorkerRecovered {
                        device: DeviceId::from_index(dev),
                    },
                );
                let (lock, _) = &self.devices[dev];
                let respawn = {
                    let mut q = lock.lock().expect("device lock");
                    self.crash_pending[dev].store(false, Ordering::Release);
                    if q.dead {
                        q.dead = false;
                        true
                    } else {
                        // The kill was never delivered (the thread stayed
                        // busy through the whole window): retract it so
                        // the device does not die after "recovering".
                        q.crash = None;
                        false
                    }
                };
                if respawn && !self.shutdown.load(Ordering::Acquire) {
                    std::thread::Builder::new()
                        .name(format!("tictac-dev{dev}-r"))
                        .spawn_scoped(scope, move || self.device_loop(dev))
                        .expect("respawn device thread");
                }
            }
            FaultDue::StallStart { dev } => {
                self.log_fault(
                    at,
                    FaultEventKind::PsStallStart {
                        device: DeviceId::from_index(dev),
                    },
                );
            }
            FaultDue::StallEnd { dev } => {
                self.log_fault(
                    at,
                    FaultEventKind::PsStallEnd {
                        device: DeviceId::from_index(dev),
                    },
                );
            }
            FaultDue::Barrier => unreachable!("the barrier is handled by supervise"),
        }
    }

    /// Watchdog expiry: degrade if a configured barrier can absorb the
    /// loss and any work survived, else abort with diagnostics.
    fn abort_stalled(&self) -> Result<(), RuntimeError> {
        let remaining = self.remaining.load(Ordering::Acquire);
        if self.faults.barrier_timeout.is_some() && remaining < self.graph.len() {
            self.degrade(self.now());
            return Ok(());
        }
        let err = self.stall_error();
        self.finish(); // abort: release every thread
        Err(err)
    }

    /// Assembles [`RuntimeError::Stalled`] diagnostics: which ops are
    /// outstanding (by name, capped) and how deep each channel queue is.
    fn stall_error(&self) -> RuntimeError {
        let waited = self.started.elapsed();
        let remaining = self.remaining.load(Ordering::Acquire);
        let mut outstanding = Vec::new();
        let mut incomplete = 0usize;
        for (i, flag) in self.completed.iter().enumerate() {
            if !flag.load(Ordering::Acquire) {
                incomplete += 1;
                if outstanding.len() < STALL_REPORT_CAP {
                    outstanding.push(self.graph.op_name(OpId::from_index(i)).to_string());
                }
            }
        }
        if incomplete > STALL_REPORT_CAP {
            outstanding.push(format!("+ {} more", incomplete - STALL_REPORT_CAP));
        }
        let channel_depths = self
            .channels
            .iter()
            .map(|(lock, _)| {
                let q = lock.lock().expect("channel lock");
                q.ranked.len() + q.unranked.len() + q.blocked.len()
            })
            .collect();
        RuntimeError::Stalled {
            completed: self.graph.len() - remaining,
            remaining,
            waited,
            outstanding,
            channel_depths,
        }
    }

    /// Closes a degraded iteration at `at`: shuts every thread down,
    /// logs the incomplete ops as deferred plus the barrier event, and
    /// raises the trace's makespan to the barrier instant — the
    /// wall-clock analogue of the simulator's degraded-mode barrier
    /// (and of `Trainer::step_degraded`'s deferred gradients).
    fn degrade(&self, at: SimTime) {
        self.degraded.store(true, Ordering::Release);
        self.finish();
        // Let in-flight busy-waits observe the latch and retire (their
        // records, if any, land before the scan); the sleep cap bounds
        // this settle window.
        std::thread::sleep(Duration::from_millis(3));
        let deferred: Vec<OpId> = self
            .completed
            .iter()
            .enumerate()
            .filter(|(_, flag)| !flag.load(Ordering::Acquire))
            .map(|(i, _)| OpId::from_index(i))
            .collect();
        if deferred.is_empty() {
            return; // everything made it in before the barrier fired
        }
        {
            let mut log = self.fault_log.lock().expect("fault log lock");
            for &op in &deferred {
                log.push(FaultEvent {
                    at,
                    kind: FaultEventKind::DeferredOp { op },
                });
            }
            log.push(FaultEvent {
                at,
                kind: FaultEventKind::BarrierDegraded {
                    remaining: deferred.len() as u32,
                },
            });
        }
        self.trace.lock().expect("trace lock").raise_makespan(at);
    }

    /// Attempt `attempt` of `recv` was lost on the wire: the channel
    /// wedges on the dead stream until the loss-detection timeout fires,
    /// then retransmits (within budget), abandons the transfer to the
    /// degraded barrier, or latches [`RuntimeError::RetriesExhausted`].
    /// Returns `false` when the channel thread must exit.
    fn lose_attempt(&self, ch: usize, recv: OpId, attempt: u32) -> bool {
        let dropped_at = self.now();
        self.log_fault(
            dropped_at,
            FaultEventKind::TransferDropped { op: recv, attempt },
        );
        let timeout = self
            .clock
            .wall_duration(self.faults.retry.timeout_for(attempt));
        let deadline = self.started + Duration::from_nanos(dropped_at.as_nanos()) + timeout;
        if !self.wait_until(deadline) {
            return false;
        }
        let detected = self.now();
        self.log_fault(
            detected,
            FaultEventKind::TransferTimeout { op: recv, attempt },
        );
        let next = attempt + 1;
        self.attempts[recv.index()].store(next, Ordering::Release);
        if self.faults.retry.attempt_allowed(next) {
            self.log_fault(
                detected,
                FaultEventKind::Retransmit {
                    op: recv,
                    attempt: next,
                },
            );
            let (lock, _) = &self.channels[ch];
            let mut q = lock.lock().expect("channel lock");
            match self.plan.rank[recv.index()] {
                Some(r) => q.ranked.push(Reverse((r, recv.index()))),
                None => {
                    let key = mix(self.opts.shuffle_seed, recv.index() as u64);
                    q.unranked.push(Reverse((key, recv.index())));
                }
            }
            // No notify needed: we are this channel's own thread and loop
            // straight back to the pop.
            true
        } else if self.faults.barrier_timeout.is_some() {
            // Abandoned: the degraded barrier defers its downstream work.
            true
        } else {
            let mut err = self.error.lock().expect("error lock");
            if err.is_none() {
                *err = Some(RuntimeError::RetriesExhausted {
                    op: recv,
                    attempts: next,
                });
            }
            drop(err);
            self.finish();
            false
        }
    }

    /// Device thread: pop the lowest-priority ready op, busy-loop its
    /// modeled duration, record it, release successors.
    ///
    /// Shutdown is checked *before* popping, so a watchdog abort drops
    /// queued ops instead of busy-waiting through them (during normal
    /// completion the latch implies an empty queue, so nothing is lost).
    fn device_loop(&self, dev: usize) {
        let (lock, cv) = &self.devices[dev];
        let stall_windows: &[(u64, u64)] = &self.stall_windows[dev];
        loop {
            let op = {
                let mut q = lock.lock().expect("device lock");
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if q.crash.take().is_some() {
                        // Killed while idle; the supervisor respawns this
                        // loop at the recovery instant.
                        q.dead = true;
                        return;
                    }
                    if !stall_windows.is_empty() {
                        let now = self.started.elapsed().as_nanos() as u64;
                        if let Some(end) = down_until(stall_windows, now) {
                            // A PS stall covers this instant: the shard's
                            // update thread is wedged; park until it
                            // resumes.
                            drop(q);
                            if !self.wait_until(self.started + Duration::from_nanos(end)) {
                                return;
                            }
                            q = lock.lock().expect("device lock");
                            continue;
                        }
                    }
                    if let Some(Reverse((_, _, op))) = q.heap.pop() {
                        break OpId::from_index(op);
                    }
                    q = cv.wait(q).expect("device lock");
                }
            };
            let start = self.now();
            let mut modeled = self.plan.oracle.duration(self.graph, op);
            let factor = self.slowdown[dev];
            if factor != 1.0 {
                // Persistent straggler: the whole iteration's compute
                // slows by the plan's factor.
                modeled = modeled.mul_f64(factor);
            }
            let dur = self.scaled(modeled);
            // PS stalls crossing the op pause it (simulator semantics):
            // it finishes late by the overlap with every stall window.
            let end_ns = stall_adjusted_end(stall_windows, start.as_nanos(), dur.as_nanos() as u64);
            let interrupt = if self.faulty {
                Some(&self.crash_pending[dev])
            } else {
                None
            };
            match self.wait_interruptible(self.started + Duration::from_nanos(end_ns), interrupt) {
                WaitOutcome::Shutdown => return, // aborted mid-op
                WaitOutcome::Interrupted => {
                    // Crashed mid-op: the in-flight compute is lost.
                    // Requeue it (the respawned loop re-runs it after
                    // recovery), then die — unless the kill was retracted
                    // before delivery, in which case stay alive.
                    let mut q = lock.lock().expect("device lock");
                    q.seq += 1;
                    let priority = self.schedule.priority(op).unwrap_or(u64::MAX);
                    let tiebreak = if priority == u64::MAX {
                        mix(self.opts.shuffle_seed, op.index() as u64)
                    } else {
                        q.seq
                    };
                    q.heap.push(Reverse((priority, tiebreak, op.index())));
                    if q.crash.take().is_some() {
                        q.dead = true;
                        return;
                    }
                    continue;
                }
                WaitOutcome::Elapsed => {}
            }
            let end = self.now();
            self.trace
                .lock()
                .expect("trace lock")
                .record(op, start, end);
            self.complete(op);
        }
    }

    /// Channel thread: fly transfers one at a time. Ranked transfers start
    /// strictly in rank order (`next_rank_to_fly`); unranked transfers
    /// fill in whenever the next rank has not arrived yet.
    fn channel_loop(&self, ch: usize) {
        let (lock, cv) = &self.channels[ch];
        let windows: &[(u64, u64)] = &self.chan_windows[ch];
        loop {
            let recv = {
                let mut q = lock.lock().expect("channel lock");
                loop {
                    // Shutdown first: a watchdog abort drops queued
                    // transfers instead of flying them (see device_loop).
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if !windows.is_empty() {
                        let now = self.started.elapsed().as_nanos() as u64;
                        if let Some(end) = down_until(windows, now) {
                            // The channel is dark (blackout, or its
                            // worker is down): park until the window
                            // closes. Unlike the simulator, an attempt
                            // already on the wire finishes (DESIGN.md
                            // §11).
                            drop(q);
                            if !self.wait_until(self.started + Duration::from_nanos(end)) {
                                return;
                            }
                            q = lock.lock().expect("channel lock");
                            continue;
                        }
                    }
                    // `<=` (not `==`): a retransmitted rank re-flies even
                    // though the counter already advanced past it. On the
                    // quiet path each rank is queued exactly once, so
                    // only equality occurs and the gate is unchanged.
                    let gate_open = q.ranked.peek().is_some_and(|Reverse((r, _))| {
                        !self.opts.enforcement || *r <= q.next_rank_to_fly
                    });
                    if gate_open {
                        let Reverse((r, op)) = q.ranked.pop().expect("peeked entry");
                        if r == q.next_rank_to_fly {
                            q.next_rank_to_fly += 1;
                        }
                        break OpId::from_index(op);
                    }
                    if let Some(Reverse((_, op))) = q.unranked.pop() {
                        break OpId::from_index(op);
                    }
                    q = cv.wait(q).expect("channel lock");
                }
            };
            if self.faulty {
                let attempt = self.attempts[recv.index()].load(Ordering::Acquire);
                if self.faults.drops_attempt(recv, attempt) {
                    if self.lose_attempt(ch, recv, attempt) {
                        continue;
                    }
                    return;
                }
            }
            let bytes = self.graph.op(recv).cost().bytes;
            let wire = self.scaled(
                self.opts
                    .platform
                    .transfer_time_scaled(bytes, self.plan.chan_share[ch]),
            );
            let start = self.now();
            if !self.wait_until(self.started + (self.started.elapsed() + wire)) {
                return; // aborted mid-transfer; the trace is discarded anyway
            }
            let end = self.now();
            {
                let mut trace = self.trace.lock().expect("trace lock");
                trace.record(recv, start, end);
                // The transfer interval is attributed to both endpoints,
                // as the simulator (and TF's tracer) does. A hand-built
                // graph may legally feed one send into several recvs; the
                // send keeps the interval of whichever recv flew first.
                if let Some(send) = self.plan.send_of[recv.index()] {
                    if !trace.is_recorded(send) {
                        trace.record(send, start, end);
                    }
                }
            }
            self.complete(recv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::{no_ordering, tic};

    fn opts() -> ExecOptions {
        ExecOptions::new(Platform::cloud_gpu())
            .with_time_scale(0.5)
            .with_watchdog(Duration::from_secs(20))
    }

    #[test]
    fn baseline_iteration_completes_every_op() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let trace = run_iteration(d.graph(), &no_ordering(d.graph()), &opts()).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert!(trace.makespan() > tictac_timing::SimDuration::ZERO);
    }

    #[test]
    fn enforced_schedule_fixes_the_recv_completion_order() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let w = d.workers()[0];
        let s = d.replicate_schedule(&tic(d.graph(), w));
        let expected: Vec<OpId> = {
            // Rank order per channel is the enforced completion order.
            let mut recvs: Vec<(u64, OpId)> = d
                .graph()
                .recv_ops_on(w)
                .into_iter()
                .map(|r| (s.priority(r).unwrap(), r))
                .collect();
            recvs.sort_unstable();
            recvs.into_iter().map(|(_, r)| r).collect()
        };
        // Single channel per worker here, so the worker-wide completion
        // order equals the channel rank order.
        let trace = run_iteration(d.graph(), &s, &opts()).unwrap();
        assert_eq!(trace.recv_completion_order(d.graph(), w), expected);
    }

    #[test]
    fn transfers_on_one_channel_serialize() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let trace = run_iteration(d.graph(), &no_ordering(d.graph()), &opts()).unwrap();
        for channel in d.graph().channels() {
            let mut intervals: Vec<(u64, u64)> = d
                .graph()
                .op_ids()
                .filter(|&id| {
                    let op = d.graph().op(id);
                    op.is_recv() && op.kind().channel() == Some(channel.id())
                })
                .map(|id| {
                    let r = trace.record(id).unwrap();
                    (r.start.as_nanos(), r.end.as_nanos())
                })
                .collect();
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0,
                    "overlapping transfers on one channel: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn schedule_mismatch_is_a_typed_error() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let bad = Schedule::empty(d.graph().len() + 1);
        match run_iteration(d.graph(), &bad, &opts()) {
            Err(RuntimeError::ScheduleMismatch { graph_len, .. }) => {
                assert_eq!(graph_len, d.graph().len());
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn repeated_tiny_iterations_shut_down_cleanly() {
        // Regression: finish() must notify under each queue mutex. A
        // lock-free notify could land between a worker's shutdown check
        // and its cv.wait, hanging the scoped join forever. Tiny, fast
        // iterations maximize pressure on that completion window.
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let s = no_ordering(d.graph());
        for seed in 0..40 {
            let o = opts().with_time_scale(0.01).with_shuffle_seed(seed);
            let trace = run_iteration(d.graph(), &s, &o).unwrap();
            assert_eq!(trace.executed_ops(), d.graph().len());
        }
    }

    #[test]
    fn watchdog_abort_returns_promptly() {
        // Regression: after the watchdog fires, threads must drop queued
        // ops and cut in-flight busy-waits short instead of draining the
        // full modeled makespan (seconds here, at 50x time scale).
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let o = ExecOptions::new(Platform::cloud_gpu())
            .with_time_scale(50.0)
            .with_watchdog(Duration::from_millis(10));
        let started = std::time::Instant::now();
        match run_iteration(d.graph(), &no_ordering(d.graph()), &o) {
            Err(RuntimeError::Stalled { remaining, .. }) => assert!(remaining > 0),
            other => panic!("expected a stall, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "abort took {:?}; threads kept draining after the watchdog",
            started.elapsed()
        );
    }

    #[test]
    fn send_shared_by_two_recvs_records_once() {
        // Regression: run_iteration is public API, and a hand-built graph
        // may feed one send into several recvs; recording the shared send
        // once per recv used to panic the trace builder.
        use tictac_graph::{Cost, GraphBuilder, OpKind};
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("p", 4096);
        b.assign_param_to_ps(p, ps);
        let send = b.add_op("send", ps, OpKind::send(p, ch), Cost::bytes(4096), &[]);
        b.add_op("recv_a", w, OpKind::recv(p, ch), Cost::bytes(4096), &[send]);
        b.add_op("recv_b", w, OpKind::recv(p, ch), Cost::bytes(4096), &[send]);
        let g = b.build().unwrap();
        let trace = run_iteration(&g, &no_ordering(&g), &opts()).unwrap();
        assert_eq!(trace.executed_ops(), g.len());
    }

    fn injected(
        d: &tictac_cluster::DeployedModel,
        opts: &ExecOptions,
        faults: &FaultPlan,
    ) -> Result<ExecutionTrace, RuntimeError> {
        let s = no_ordering(d.graph());
        let plan = ExecPlan::new(d.graph(), &s, opts).unwrap();
        run_iteration_injected(d.graph(), &s, opts, &plan, faults)
    }

    #[test]
    fn stalled_names_outstanding_ops_and_channel_depths() {
        // Satellite: Stalled must say *what* was outstanding, not just
        // how much.
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let o = ExecOptions::new(Platform::cloud_gpu())
            .with_time_scale(50.0)
            .with_watchdog(Duration::from_millis(10));
        match run_iteration(d.graph(), &no_ordering(d.graph()), &o) {
            Err(RuntimeError::Stalled {
                remaining,
                outstanding,
                channel_depths,
                ..
            }) => {
                assert!(remaining > 0);
                assert!(
                    !outstanding.is_empty() && outstanding.len() <= STALL_REPORT_CAP + 1,
                    "bad outstanding report: {outstanding:?}"
                );
                assert!(outstanding.iter().all(|n| !n.is_empty()));
                assert_eq!(channel_depths.len(), d.graph().channels().len());
            }
            other => panic!("expected a stall, got {other:?}"),
        }
    }

    #[test]
    fn dropped_transfers_retransmit_and_complete() {
        use tictac_timing::{RetryPolicy, SimDuration};
        use tictac_trace::FaultCounters;
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let mut faults = FaultPlan::quiet();
        faults.drop_prob = 0.5;
        faults.retry = RetryPolicy::fixed(SimDuration::from_micros(400), 40);
        let o = opts().with_time_scale(0.05);
        let trace = injected(&d, &o, &faults).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        let c = FaultCounters::from_trace(&trace);
        assert!(c.drops > 0, "p=0.5 over many transfers must drop some");
        assert_eq!(c.timeouts, c.drops);
        assert_eq!(c.retransmits, c.drops, "deep budget: every loss re-flies");
    }

    #[test]
    fn retries_exhausted_is_a_typed_error() {
        use tictac_timing::{RetryPolicy, SimDuration};
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let mut faults = FaultPlan::quiet();
        faults.drop_prob = 1.0;
        faults.retry = RetryPolicy::fixed(SimDuration::from_micros(200), 2);
        let o = opts().with_time_scale(0.05);
        match injected(&d, &o, &faults) {
            Err(RuntimeError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected exhausted retries, got {other:?}"),
        }
    }

    #[test]
    fn degraded_barrier_defers_instead_of_erroring() {
        use tictac_timing::{RetryPolicy, SimDuration};
        use tictac_trace::FaultCounters;
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let mut faults = FaultPlan::quiet();
        faults.drop_prob = 1.0;
        faults.retry = RetryPolicy::fixed(SimDuration::from_micros(200), 1);
        faults.barrier_timeout = Some(SimDuration::from_millis(40));
        let o = opts().with_time_scale(0.05);
        let trace = injected(&d, &o, &faults).unwrap();
        assert!(trace.executed_ops() < d.graph().len());
        let c = FaultCounters::from_trace(&trace);
        assert_eq!(c.degraded_barriers, 1);
        // Sends complete unrecorded at hand-off, so executed_ops can
        // undercount completions; deferred + executed never exceeds len.
        assert!(c.deferred_ops > 0);
        assert!(trace.executed_ops() + c.deferred_ops as usize <= d.graph().len());
    }

    #[test]
    fn crashed_worker_is_respawned_and_finishes() {
        use tictac_faults::Crash;
        use tictac_timing::SimDuration;
        use tictac_trace::FaultCounters;
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let mut faults = FaultPlan::quiet();
        faults.crashes.push(Crash {
            device: d.workers()[0],
            at: SimTime::ZERO + SimDuration::from_micros(80),
            until: SimTime::ZERO + SimDuration::from_micros(900),
        });
        let o = opts().with_time_scale(0.05);
        let trace = injected(&d, &o, &faults).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        let c = FaultCounters::from_trace(&trace);
        assert_eq!(c.crashes, 1);
    }

    #[test]
    fn blackout_parks_the_channel_and_finishes() {
        use tictac_faults::Blackout;
        use tictac_timing::SimDuration;
        use tictac_trace::FaultCounters;
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let mut faults = FaultPlan::quiet();
        faults.blackouts.push(Blackout {
            channel: d.graph().channels()[0].id(),
            at: SimTime::ZERO + SimDuration::from_micros(50),
            until: SimTime::ZERO + SimDuration::from_micros(700),
        });
        let o = opts().with_time_scale(0.05);
        let trace = injected(&d, &o, &faults).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert_eq!(FaultCounters::from_trace(&trace).blackouts, 1);
    }

    #[test]
    fn ps_stall_pauses_the_shard_and_finishes() {
        use tictac_faults::Stall;
        use tictac_timing::SimDuration;
        use tictac_trace::FaultCounters;
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let ps = d.graph().parameter_servers().next().unwrap();
        let mut faults = FaultPlan::quiet();
        faults.stalls.push(Stall {
            device: ps,
            at: SimTime::ZERO + SimDuration::from_micros(60),
            until: SimTime::ZERO + SimDuration::from_micros(500),
        });
        let o = opts().with_time_scale(0.05);
        let trace = injected(&d, &o, &faults).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert_eq!(FaultCounters::from_trace(&trace).ps_stalls, 1);
    }

    #[test]
    fn straggler_slows_the_worker_and_is_logged() {
        use tictac_trace::FaultCounters;
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let w = d.workers()[0];
        let mut faults = FaultPlan::quiet();
        faults.stragglers.push((w, 8.0));
        let o = opts().with_time_scale(0.2);
        let quiet = injected(&d, &o, &FaultPlan::quiet()).unwrap();
        let slowed = injected(&d, &o, &faults).unwrap();
        assert_eq!(slowed.executed_ops(), d.graph().len());
        assert_eq!(FaultCounters::from_trace(&slowed).stragglers, 1);
        // Jitter-robust check: the slowed worker's *largest* compute op
        // stretches by roughly the straggler factor (makespans are too
        // noisy at this scale). Preemption can only inflate a busy-loop,
        // so the quiet baseline may itself be stretched under parallel
        // test load — keep the multiplier well below the 8x factor.
        let biggest = d
            .graph()
            .op_ids()
            .filter(|&id| {
                let op = d.graph().op(id);
                op.device() == w && !op.is_recv() && !op.kind().is_send()
            })
            .max_by_key(|&id| quiet.record(id).map(|r| r.end - r.start))
            .unwrap();
        let q = quiet.record(biggest).unwrap();
        let s = slowed.record(biggest).unwrap();
        assert!(
            (s.end - s.start) > (q.end - q.start).mul_f64(2.0),
            "8x straggler barely stretched {biggest:?}: {:?} vs {:?}",
            s.end - s.start,
            q.end - q.start
        );
    }

    #[test]
    fn zero_priority_inversions_under_enforced_tic() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let s = d.replicate_schedule(&tic(d.graph(), d.workers()[0]));
        let trace = run_iteration(d.graph(), &s, &opts()).unwrap();
        let report = tictac_obs::priority_inversions(d.graph(), &trace, |op| s.priority(op));
        assert_eq!(
            report.count(),
            0,
            "enforced ranks must fly in order: {:?}",
            report.records
        );
    }
}
