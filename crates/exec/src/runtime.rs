//! The threaded cluster runtime.
//!
//! Topology: one OS thread per device (worker or PS shard) draining a
//! priority ready-queue of compute ops, and one OS thread per worker–PS
//! channel draining a rank-keyed transfer queue. Dependency tracking is
//! lock-free (atomic indegrees); queues are `Mutex` + `Condvar`. All
//! timestamps are wall-clock nanoseconds since iteration start, recorded
//! into a [`TraceBuilder`] and returned as an [`ExecutionTrace`].
//!
//! Enforcement (§5.1) mirrors the simulator's sender-side mechanism: each
//! channel keeps a hand-off counter; a ranked send is handed to the
//! channel only when the counter equals its rank, otherwise it parks in a
//! rank-keyed blocked map and is released by the hand-off that advances
//! the counter. Because the chain of releases is observed by the channel
//! thread in arbitrary interleavings, the channel additionally gates
//! ranked *starts* on `next_rank_to_fly`, which closes the window where a
//! later rank is queued before an earlier one has been pushed.
//!
//! Unprioritized work — every compute op, and every transfer under the
//! baseline — pops in a *seeded-shuffle* order rather than FIFO readiness
//! order. The paper's whole premise (§3) is that DAG frameworks service
//! ready queues in an arbitrary, per-iteration-random order; a FIFO pop
//! would hand the baseline a consistent near-layer order and erase the
//! effect TIC/TAC exist to fix. The shuffle key is a hash of
//! [`ExecOptions::shuffle_seed`] and the op id, so a given seed is
//! reproducible and different seeds (one per iteration, see
//! `ThreadedBackend`) give different arbitrary orders.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use tictac_graph::{Graph, OpId, OpKind};
use tictac_sched::Schedule;
use tictac_timing::{CostOracle, Platform, SimTime, TimeOracle};
use tictac_trace::{ExecutionTrace, TraceBuilder};

/// Configuration of one threaded iteration.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Hardware model supplying compute and wire times for the calibrated
    /// busy-loops.
    pub platform: Platform,
    /// Whether sender-side rank enforcement is active (the paper's §5.1
    /// mechanism). Without it, ranked sends are handed off as they become
    /// ready and the channel still prefers the lowest queued rank.
    pub enforcement: bool,
    /// Multiplier on every modeled duration (compute and wire). `1.0`
    /// replays model time 1:1 on the wall clock; smaller values shrink
    /// wall time at the cost of a larger relative scheduling overhead.
    pub time_scale: f64,
    /// Fair-share divisor for wire time; `None` derives it from the
    /// topology exactly as the simulator does (PS fan-out).
    pub bandwidth_share: Option<f64>,
    /// Wall-clock budget for the whole iteration; exceeding it aborts the
    /// run with [`RuntimeError::Stalled`].
    pub watchdog: Duration,
    /// Seed for the arbitrary pop order of *unprioritized* queue entries
    /// (see the module docs). Ranked transfers are unaffected. Same seed,
    /// same order; vary it per iteration to reproduce the paper's
    /// "unique order in every run" baseline behavior.
    pub shuffle_seed: u64,
}

impl ExecOptions {
    /// Options for `platform` with enforcement on, 1:1 time scale and a
    /// 30-second watchdog.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            enforcement: true,
            time_scale: 1.0,
            bandwidth_share: None,
            watchdog: Duration::from_secs(30),
            shuffle_seed: 0x71C7AC,
        }
    }

    /// Sets the time scale (see [`ExecOptions::time_scale`]).
    #[must_use]
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Enables or disables sender-side enforcement.
    #[must_use]
    pub fn with_enforcement(mut self, on: bool) -> Self {
        self.enforcement = on;
        self
    }

    /// Overrides the fair-share bandwidth divisor.
    #[must_use]
    pub fn with_bandwidth_share(mut self, share: f64) -> Self {
        self.bandwidth_share = Some(share);
        self
    }

    /// Sets the stall watchdog budget.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the unprioritized-pop shuffle seed (see
    /// [`ExecOptions::shuffle_seed`]).
    #[must_use]
    pub fn with_shuffle_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = seed;
        self
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of `(seed, x)` used to
/// impose an arbitrary-but-reproducible pop order on unprioritized work.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self::new(Platform::cloud_gpu())
    }
}

/// Failures of the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The schedule covers a different graph.
    ScheduleMismatch {
        /// Ops covered by the schedule.
        schedule_len: usize,
        /// Ops in the graph.
        graph_len: usize,
    },
    /// The watchdog expired with work outstanding (a wedged thread or an
    /// impossible schedule).
    Stalled {
        /// Ops that completed before the abort.
        completed: usize,
        /// Ops still outstanding.
        remaining: usize,
        /// How long the watchdog waited.
        waited: Duration,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ScheduleMismatch {
                schedule_len,
                graph_len,
            } => write!(
                f,
                "schedule covers {schedule_len} ops but the graph has {graph_len}"
            ),
            RuntimeError::Stalled {
                completed,
                remaining,
                waited,
            } => write!(
                f,
                "runtime stalled after {waited:?}: {completed} ops done, {remaining} outstanding"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Precomputed, schedule-derived execution state: enforcement ranks per
/// channel, the send feeding each recv, the fair-share bandwidth divisor
/// and the cost oracle.
///
/// Deriving this is the only super-constant setup work of an iteration
/// (sorting each channel's recvs by rank, two graph sweeps, a platform
/// clone), and it is a pure function of `(graph, schedule, opts)` — so a
/// session running many iterations of one schedule should build the plan
/// once and pass it to [`run_iteration_with_plan`]. `ThreadedBackend`
/// does exactly that, keyed by [`ExecPlan::key`].
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// Enforcement rank per op: on the PS-side send of each prioritized
    /// transfer, and on the recv itself (both for queue keying and for
    /// sendless hand-built graphs).
    rank: Vec<Option<u64>>,
    /// The send op feeding each recv, for transfer-interval attribution.
    send_of: Vec<Option<OpId>>,
    /// Fair-share divisor for wire time (PS fan-out, or the override).
    bandwidth_share: f64,
    /// Duration oracle on the plan's platform.
    oracle: CostOracle,
}

impl ExecPlan {
    /// Derives the plan for one `(graph, schedule, opts)` configuration.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ScheduleMismatch`] if `schedule` does not cover
    /// `graph`.
    pub fn new(
        graph: &Graph,
        schedule: &Schedule,
        opts: &ExecOptions,
    ) -> Result<Self, RuntimeError> {
        if schedule.len() != graph.len() {
            return Err(RuntimeError::ScheduleMismatch {
                schedule_len: schedule.len(),
                graph_len: graph.len(),
            });
        }
        let n = graph.len();

        // Enforcement ranks: per-channel priorities normalized to [0, n),
        // attached to the PS-side send (the sender enforces before
        // hand-off) and mirrored on the recv for queue keying.
        let mut rank = vec![None; n];
        let mut send_of = vec![None; n];
        for channel in graph.channels() {
            for (r, recv) in schedule
                .ordered_recvs(graph, channel.id())
                .into_iter()
                .enumerate()
            {
                rank[recv.index()] = Some(r as u64);
                if let Some(send) = graph
                    .preds(recv)
                    .iter()
                    .copied()
                    .find(|&p| graph.op(p).kind().is_send())
                {
                    rank[send.index()] = Some(r as u64);
                }
            }
        }
        for id in graph.op_ids() {
            if graph.op(id).is_recv() {
                send_of[id.index()] = graph
                    .preds(id)
                    .iter()
                    .copied()
                    .find(|&p| graph.op(p).kind().is_send());
            }
        }

        let bandwidth_share = opts.bandwidth_share.unwrap_or_else(|| {
            // Same derivation as the simulator: PS deployments fan every
            // server out to all workers; peer topologies keep one stream.
            if graph.channels().iter().all(tictac_graph::Channel::is_peer) {
                1.0
            } else {
                let workers = graph.workers().count();
                let servers = graph.parameter_servers().count();
                workers.max(servers).max(1) as f64
            }
        });

        Ok(Self {
            rank,
            send_of,
            bandwidth_share,
            oracle: CostOracle::new(opts.platform.clone()),
        })
    }

    /// A content fingerprint of the plan-relevant inputs (graph shape and
    /// every schedule priority): two calls agree exactly when a cached
    /// plan derived from one is valid for the other. FNV-1a, cheap enough
    /// to compute per iteration — unlike re-deriving the plan, it
    /// allocates nothing and sorts nothing.
    pub fn key(graph: &Graph, schedule: &Schedule) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(graph.len() as u64);
        fold(graph.devices().len() as u64);
        fold(graph.channels().len() as u64);
        for op in graph.op_ids() {
            match schedule.priority(op) {
                Some(r) => {
                    fold(1);
                    fold(r);
                }
                None => fold(0),
            }
        }
        h
    }
}

/// Executes one iteration of `graph` under `schedule` on real threads and
/// returns its wall-clock [`ExecutionTrace`].
///
/// Spawns one thread per device plus one per channel for the duration of
/// the call; the calling thread blocks until completion. A stall is
/// detected within `opts.watchdog`; the abort then drains every queue
/// and cuts in-flight busy-waits short, so the call returns within a few
/// milliseconds of the watchdog firing.
/// Timestamps are nanoseconds since iteration start, so traces are
/// directly comparable to simulator traces — ordering-exact, timing-real.
///
/// Derives a fresh [`ExecPlan`] each call; loops running one schedule
/// many times should build the plan once and use
/// [`run_iteration_with_plan`].
///
/// # Errors
///
/// [`RuntimeError::ScheduleMismatch`] if `schedule` does not cover
/// `graph`; [`RuntimeError::Stalled`] if the watchdog expires.
pub fn run_iteration(
    graph: &Graph,
    schedule: &Schedule,
    opts: &ExecOptions,
) -> Result<ExecutionTrace, RuntimeError> {
    let plan = ExecPlan::new(graph, schedule, opts)?;
    run_iteration_with_plan(graph, schedule, opts, &plan)
}

/// [`run_iteration`] with a prebuilt [`ExecPlan`], skipping the
/// per-iteration schedule derivation.
///
/// `plan` must have been built by [`ExecPlan::new`] from this same
/// `(graph, schedule)` pair and from options agreeing with `opts` on
/// `platform` and `bandwidth_share` (the fields a plan bakes in; the
/// shuffle seed, time scale, watchdog and enforcement flag may differ
/// freely) — [`ExecPlan::key`] decides graph/schedule reusability.
///
/// # Errors
///
/// [`RuntimeError::ScheduleMismatch`] if `schedule` (or the plan) does
/// not cover `graph`; [`RuntimeError::Stalled`] if the watchdog expires.
pub fn run_iteration_with_plan(
    graph: &Graph,
    schedule: &Schedule,
    opts: &ExecOptions,
    plan: &ExecPlan,
) -> Result<ExecutionTrace, RuntimeError> {
    if schedule.len() != graph.len() || plan.rank.len() != graph.len() {
        return Err(RuntimeError::ScheduleMismatch {
            schedule_len: schedule.len().min(plan.rank.len()),
            graph_len: graph.len(),
        });
    }
    let shared = Shared::new(graph, schedule, opts, plan);

    std::thread::scope(|scope| {
        for dev in 0..graph.devices().len() {
            let shared = &shared;
            std::thread::Builder::new()
                .name(format!("tictac-dev{dev}"))
                .spawn_scoped(scope, move || shared.device_loop(dev))
                .expect("spawn device thread");
        }
        for ch in 0..graph.channels().len() {
            let shared = &shared;
            std::thread::Builder::new()
                .name(format!("tictac-ch{ch}"))
                .spawn_scoped(scope, move || shared.channel_loop(ch))
                .expect("spawn channel thread");
        }

        // Release the roots only once every thread can observe them.
        for op in graph.roots() {
            shared.dispatch(op);
        }
        shared.await_completion()
    })?;

    let trace = shared
        .trace
        .into_inner()
        .expect("no thread panicked holding the trace")
        .finish();
    Ok(trace)
}

/// Per-device ready queue: a binary heap keyed by `(schedule priority,
/// tiebreak)`, so prioritized ops run lowest-number-first; unprioritized
/// ops (key `u64::MAX`) run behind them in seeded-shuffle order — the
/// arbitrary ready-queue servicing the paper attributes to DAG frameworks.
#[derive(Debug, Default)]
struct DeviceQueue {
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
}

/// Per-channel transfer queue plus the sender-side enforcement state.
#[derive(Debug, Default)]
struct ChanQueue {
    /// Queued ranked transfers (recv ops), keyed by enforcement rank.
    ranked: BinaryHeap<Reverse<(u64, usize)>>,
    /// Queued unranked transfers, keyed by seeded-shuffle hash: an
    /// arbitrary, per-seed-stable wire order (the baseline's behavior).
    unranked: BinaryHeap<Reverse<(u64, usize)>>,
    /// Sender-side counter: ranked hand-offs completed so far (§5.1).
    counter: u64,
    /// Ranked sends parked until the counter reaches their rank.
    blocked: BTreeMap<u64, usize>,
    /// Next rank allowed to *start* on the wire; closes the hand-off
    /// interleaving window (see module docs).
    next_rank_to_fly: u64,
}

struct Shared<'g> {
    graph: &'g Graph,
    schedule: &'g Schedule,
    opts: &'g ExecOptions,
    /// Schedule-derived state (ranks, send pairing, bandwidth share,
    /// oracle) — precomputed once per schedule, not per iteration.
    plan: &'g ExecPlan,
    started: Instant,

    /// Outstanding predecessor count per op.
    indegree: Vec<AtomicU32>,
    /// Ops not yet completed.
    remaining: AtomicUsize,
    /// Set on completion or watchdog abort; threads drain and exit.
    shutdown: AtomicBool,

    devices: Vec<(Mutex<DeviceQueue>, Condvar)>,
    channels: Vec<(Mutex<ChanQueue>, Condvar)>,

    /// Completion signal for the watchdog waiter.
    done: (Mutex<bool>, Condvar),
    trace: Mutex<TraceBuilder>,
}

impl<'g> Shared<'g> {
    fn new(
        graph: &'g Graph,
        schedule: &'g Schedule,
        opts: &'g ExecOptions,
        plan: &'g ExecPlan,
    ) -> Self {
        let n = graph.len();
        Self {
            graph,
            schedule,
            opts,
            plan,
            started: Instant::now(),
            indegree: (0..n)
                .map(|i| AtomicU32::new(graph.preds(OpId::from_index(i)).len() as u32))
                .collect(),
            remaining: AtomicUsize::new(n),
            shutdown: AtomicBool::new(false),
            devices: (0..graph.devices().len())
                .map(|_| Default::default())
                .collect(),
            channels: (0..graph.channels().len())
                .map(|_| Default::default())
                .collect(),
            done: (Mutex::new(false), Condvar::new()),
            trace: Mutex::new(TraceBuilder::new(n)),
        }
    }

    /// Wall-clock time since iteration start, in the trace's clock domain.
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    /// Busy-waits until `deadline`: sleeps through the bulk, yields close
    /// in, spins the last few microseconds for precision.
    ///
    /// Returns `false` if the shutdown latch flipped before the deadline
    /// (a watchdog abort — during normal completion no op can be in
    /// flight when the latch is set, since the latch requires every op to
    /// have completed). Sleeps are capped so an abort cuts even a long
    /// modeled duration short within a few milliseconds.
    fn wait_until(&self, deadline: Instant) -> bool {
        const SLEEP_CAP: Duration = Duration::from_millis(2);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let left = deadline - now;
            if left > Duration::from_micros(400) {
                std::thread::sleep((left - Duration::from_micros(200)).min(SLEEP_CAP));
            } else if left > Duration::from_micros(20) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Scaled wall-clock stand-in for a modeled duration.
    fn scaled(&self, d: tictac_timing::SimDuration) -> Duration {
        Duration::from_nanos(d.mul_f64(self.opts.time_scale).as_nanos())
    }

    /// Routes an op whose dependencies are all satisfied.
    fn dispatch(&self, op: OpId) {
        match self.graph.op(op).kind() {
            OpKind::Send { .. } => self.handoff(op),
            OpKind::Recv { .. } => {
                let ch = self
                    .graph
                    .op(op)
                    .kind()
                    .channel()
                    .expect("recv has a channel")
                    .index();
                let (lock, cv) = &self.channels[ch];
                {
                    let mut q = lock.lock().expect("channel lock");
                    match self.plan.rank[op.index()] {
                        Some(r) => q.ranked.push(Reverse((r, op.index()))),
                        None => {
                            let key = mix(self.opts.shuffle_seed, op.index() as u64);
                            q.unranked.push(Reverse((key, op.index())));
                        }
                    }
                }
                cv.notify_all();
            }
            _ => {
                let dev = self.graph.op(op).device().index();
                let priority = self.schedule.priority(op).unwrap_or(u64::MAX);
                let (lock, cv) = &self.devices[dev];
                {
                    let mut q = lock.lock().expect("device lock");
                    q.seq += 1;
                    // Prioritized ops tie-break on arrival; unprioritized
                    // ops pop in seeded-shuffle order (module docs).
                    let tiebreak = if priority == u64::MAX {
                        mix(self.opts.shuffle_seed, op.index() as u64)
                    } else {
                        q.seq
                    };
                    q.heap.push(Reverse((priority, tiebreak, op.index())));
                }
                cv.notify_all();
            }
        }
    }

    /// Sender-side enforcement: hands `send` to its channel if the counter
    /// has reached its rank, else parks it. Hand-off is instantaneous and
    /// completes the send (its wire interval is recorded later, with the
    /// recv); completing it may release further parked sends — the whole
    /// chain is collected under the channel lock, then completed outside.
    fn handoff(&self, send: OpId) {
        let ch = self
            .graph
            .op(send)
            .kind()
            .channel()
            .expect("send has a channel")
            .index();
        let mut chain = Vec::new();
        {
            let (lock, _) = &self.channels[ch];
            let mut q = lock.lock().expect("channel lock");
            match self.plan.rank[send.index()] {
                Some(r) if self.opts.enforcement && q.counter != r => {
                    q.blocked.insert(r, send.index());
                }
                ranked => {
                    chain.push(send);
                    if self.opts.enforcement && ranked.is_some() {
                        q.counter += 1;
                        while let Some(next) = {
                            let c = q.counter;
                            q.blocked.remove(&c)
                        } {
                            chain.push(OpId::from_index(next));
                            q.counter += 1;
                        }
                    }
                }
            }
        }
        for s in chain {
            self.complete(s);
        }
    }

    /// Marks `op` complete and dispatches newly-ready successors
    /// (iteratively — released send chains can be long).
    fn complete(&self, op: OpId) {
        let mut work = vec![op];
        while let Some(op) = work.pop() {
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.finish();
            }
            for &succ in self.graph.succs(op) {
                if self.indegree[succ.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.dispatch(succ);
                }
            }
        }
    }

    /// Flips the shutdown latch and wakes every sleeper.
    ///
    /// Each notification is issued while holding that queue's mutex: the
    /// worker loops check `shutdown` and then block on the condvar under
    /// the same mutex, so taking it here serializes the store against the
    /// check-then-wait — a worker that read `shutdown == false` either
    /// still holds the lock (we block until it reaches `wait`, which gets
    /// the notification) or has already released it inside `wait` (the
    /// notification wakes it). A lock-free notify could land in the gap
    /// between check and wait and be lost, sleeping the thread forever.
    fn finish(&self) {
        self.shutdown.store(true, Ordering::Release);
        for (lock, cv) in &self.devices {
            drop(lock.lock().expect("device lock"));
            cv.notify_all();
        }
        for (lock, cv) in &self.channels {
            drop(lock.lock().expect("channel lock"));
            cv.notify_all();
        }
        let (lock, cv) = &self.done;
        *lock.lock().expect("done lock") = true;
        cv.notify_all();
    }

    /// The caller's wait: completion or watchdog expiry.
    fn await_completion(&self) -> Result<(), RuntimeError> {
        let start = Instant::now();
        let (lock, cv) = &self.done;
        let mut done = lock.lock().expect("done lock");
        while !*done {
            let waited = start.elapsed();
            if waited >= self.opts.watchdog {
                drop(done);
                let remaining = self.remaining.load(Ordering::Acquire);
                self.finish(); // abort: release every thread
                return Err(RuntimeError::Stalled {
                    completed: self.graph.len() - remaining,
                    remaining,
                    waited,
                });
            }
            let (guard, _) = cv
                .wait_timeout(done, self.opts.watchdog - waited)
                .expect("done lock");
            done = guard;
        }
        Ok(())
    }

    /// Device thread: pop the lowest-priority ready op, busy-loop its
    /// modeled duration, record it, release successors.
    ///
    /// Shutdown is checked *before* popping, so a watchdog abort drops
    /// queued ops instead of busy-waiting through them (during normal
    /// completion the latch implies an empty queue, so nothing is lost).
    fn device_loop(&self, dev: usize) {
        let (lock, cv) = &self.devices[dev];
        loop {
            let op = {
                let mut q = lock.lock().expect("device lock");
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(Reverse((_, _, op))) = q.heap.pop() {
                        break OpId::from_index(op);
                    }
                    q = cv.wait(q).expect("device lock");
                }
            };
            let start = self.now();
            let dur = self.scaled(self.plan.oracle.duration(self.graph, op));
            if !self.wait_until(self.started + (self.started.elapsed() + dur)) {
                return; // aborted mid-op; the trace is discarded anyway
            }
            let end = self.now();
            self.trace
                .lock()
                .expect("trace lock")
                .record(op, start, end);
            self.complete(op);
        }
    }

    /// Channel thread: fly transfers one at a time. Ranked transfers start
    /// strictly in rank order (`next_rank_to_fly`); unranked transfers
    /// fill in whenever the next rank has not arrived yet.
    fn channel_loop(&self, ch: usize) {
        let (lock, cv) = &self.channels[ch];
        loop {
            let recv = {
                let mut q = lock.lock().expect("channel lock");
                loop {
                    // Shutdown first: a watchdog abort drops queued
                    // transfers instead of flying them (see device_loop).
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let gate_open = q.ranked.peek().is_some_and(|Reverse((r, _))| {
                        !self.opts.enforcement || *r == q.next_rank_to_fly
                    });
                    if gate_open {
                        let Reverse((_, op)) = q.ranked.pop().expect("peeked entry");
                        q.next_rank_to_fly += 1;
                        break OpId::from_index(op);
                    }
                    if let Some(Reverse((_, op))) = q.unranked.pop() {
                        break OpId::from_index(op);
                    }
                    q = cv.wait(q).expect("channel lock");
                }
            };
            let bytes = self.graph.op(recv).cost().bytes;
            let wire = self.scaled(
                self.opts
                    .platform
                    .transfer_time_shared(bytes, self.plan.bandwidth_share),
            );
            let start = self.now();
            if !self.wait_until(self.started + (self.started.elapsed() + wire)) {
                return; // aborted mid-transfer; the trace is discarded anyway
            }
            let end = self.now();
            {
                let mut trace = self.trace.lock().expect("trace lock");
                trace.record(recv, start, end);
                // The transfer interval is attributed to both endpoints,
                // as the simulator (and TF's tracer) does. A hand-built
                // graph may legally feed one send into several recvs; the
                // send keeps the interval of whichever recv flew first.
                if let Some(send) = self.plan.send_of[recv.index()] {
                    if !trace.is_recorded(send) {
                        trace.record(send, start, end);
                    }
                }
            }
            self.complete(recv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::{no_ordering, tic};

    fn opts() -> ExecOptions {
        ExecOptions::new(Platform::cloud_gpu())
            .with_time_scale(0.5)
            .with_watchdog(Duration::from_secs(20))
    }

    #[test]
    fn baseline_iteration_completes_every_op() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let trace = run_iteration(d.graph(), &no_ordering(d.graph()), &opts()).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert!(trace.makespan() > tictac_timing::SimDuration::ZERO);
    }

    #[test]
    fn enforced_schedule_fixes_the_recv_completion_order() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let w = d.workers()[0];
        let s = d.replicate_schedule(&tic(d.graph(), w));
        let expected: Vec<OpId> = {
            // Rank order per channel is the enforced completion order.
            let mut recvs: Vec<(u64, OpId)> = d
                .graph()
                .recv_ops_on(w)
                .into_iter()
                .map(|r| (s.priority(r).unwrap(), r))
                .collect();
            recvs.sort_unstable();
            recvs.into_iter().map(|(_, r)| r).collect()
        };
        // Single channel per worker here, so the worker-wide completion
        // order equals the channel rank order.
        let trace = run_iteration(d.graph(), &s, &opts()).unwrap();
        assert_eq!(trace.recv_completion_order(d.graph(), w), expected);
    }

    #[test]
    fn transfers_on_one_channel_serialize() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let trace = run_iteration(d.graph(), &no_ordering(d.graph()), &opts()).unwrap();
        for channel in d.graph().channels() {
            let mut intervals: Vec<(u64, u64)> = d
                .graph()
                .op_ids()
                .filter(|&id| {
                    let op = d.graph().op(id);
                    op.is_recv() && op.kind().channel() == Some(channel.id())
                })
                .map(|id| {
                    let r = trace.record(id).unwrap();
                    (r.start.as_nanos(), r.end.as_nanos())
                })
                .collect();
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0,
                    "overlapping transfers on one channel: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn schedule_mismatch_is_a_typed_error() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let bad = Schedule::empty(d.graph().len() + 1);
        match run_iteration(d.graph(), &bad, &opts()) {
            Err(RuntimeError::ScheduleMismatch { graph_len, .. }) => {
                assert_eq!(graph_len, d.graph().len());
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn repeated_tiny_iterations_shut_down_cleanly() {
        // Regression: finish() must notify under each queue mutex. A
        // lock-free notify could land between a worker's shutdown check
        // and its cv.wait, hanging the scoped join forever. Tiny, fast
        // iterations maximize pressure on that completion window.
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let s = no_ordering(d.graph());
        for seed in 0..40 {
            let o = opts().with_time_scale(0.01).with_shuffle_seed(seed);
            let trace = run_iteration(d.graph(), &s, &o).unwrap();
            assert_eq!(trace.executed_ops(), d.graph().len());
        }
    }

    #[test]
    fn watchdog_abort_returns_promptly() {
        // Regression: after the watchdog fires, threads must drop queued
        // ops and cut in-flight busy-waits short instead of draining the
        // full modeled makespan (seconds here, at 50x time scale).
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let o = ExecOptions::new(Platform::cloud_gpu())
            .with_time_scale(50.0)
            .with_watchdog(Duration::from_millis(10));
        let started = std::time::Instant::now();
        match run_iteration(d.graph(), &no_ordering(d.graph()), &o) {
            Err(RuntimeError::Stalled { remaining, .. }) => assert!(remaining > 0),
            other => panic!("expected a stall, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "abort took {:?}; threads kept draining after the watchdog",
            started.elapsed()
        );
    }

    #[test]
    fn send_shared_by_two_recvs_records_once() {
        // Regression: run_iteration is public API, and a hand-built graph
        // may feed one send into several recvs; recording the shared send
        // once per recv used to panic the trace builder.
        use tictac_graph::{Cost, GraphBuilder, OpKind};
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("p", 4096);
        b.assign_param_to_ps(p, ps);
        let send = b.add_op("send", ps, OpKind::send(p, ch), Cost::bytes(4096), &[]);
        b.add_op("recv_a", w, OpKind::recv(p, ch), Cost::bytes(4096), &[send]);
        b.add_op("recv_b", w, OpKind::recv(p, ch), Cost::bytes(4096), &[send]);
        let g = b.build().unwrap();
        let trace = run_iteration(&g, &no_ordering(&g), &opts()).unwrap();
        assert_eq!(trace.executed_ops(), g.len());
    }

    #[test]
    fn zero_priority_inversions_under_enforced_tic() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let s = d.replicate_schedule(&tic(d.graph(), d.workers()[0]));
        let trace = run_iteration(d.graph(), &s, &opts()).unwrap();
        let report = tictac_obs::priority_inversions(d.graph(), &trace, |op| s.priority(op));
        assert_eq!(
            report.count(),
            0,
            "enforced ranks must fly in order: {:?}",
            report.records
        );
    }
}
