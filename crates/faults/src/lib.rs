//! Backend-agnostic seeded fault injection: probabilistic specifications,
//! the concrete per-iteration plans sampled from them, and the clock that
//! maps plan instants onto an execution backend's time domain.
//!
//! A [`FaultSpec`] describes *rates* — how likely each fault class is per
//! iteration — and the recovery policy ([`RetryPolicy`], degraded-barrier
//! timeout). A [`FaultPlan`] is one reproducible draw from that
//! specification for a particular `(seed, iteration)`: the exact channels
//! blacked out, workers crashed, stragglers slowed and shards stalled,
//! plus a keyed hash stream deciding per-attempt transfer drops. Sampling
//! is independent of any engine's noise stream, so enabling faults
//! perturbs the injected failures only, never the underlying runtime
//! variance, and a quiet spec leaves execution byte-identical to a
//! fault-free run.
//!
//! Nothing here knows how faults are *applied*: the discrete-event
//! simulator schedules them as virtual-time events, while the threaded
//! runtime arms real timers and kills real threads. Both sample the same
//! plan from the same `(spec, graph, seed, iteration)` key, and both map
//! its instants through a [`FaultClock`] — which is why identical seeds
//! yield the identical fault set on either backend.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tictac_graph::{ChannelId, DeviceId, Graph, OpId};
use tictac_timing::{RetryPolicy, SimDuration, SimTime};

/// Stream tag separating fault sampling from any engine's noise RNG.
const FAULT_STREAM: u64 = 0xFA17_5EED_0DD5_ED17;

/// SplitMix64 finalizer: the keyed hash behind per-attempt drop decisions.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps the model-time instants of a [`FaultPlan`] onto an execution
/// backend's clock domain.
///
/// Plans are sampled in *model time* (the virtual nanoseconds the
/// simulator ticks in). The simulator consumes them through
/// [`FaultClock::virtual_time`], an exact identity; the threaded runtime
/// consumes them through [`FaultClock::wall_clock`] with its
/// `time_scale`, so a blackout sampled at model time 40 µs starts 40 µs ×
/// scale after iteration start on the wall. One plan, two clocks — the
/// fault *set* is identical on both backends by construction, and only
/// the domain its instants are expressed in differs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultClock {
    scale: f64,
}

impl FaultClock {
    /// The simulator's clock: plan instants are already in this domain,
    /// so the mapping is an exact identity (bit-for-bit; fault-free and
    /// faulty sim traces stay byte-reproducible).
    pub fn virtual_time() -> Self {
        Self { scale: 1.0 }
    }

    /// A wall-clock mapping scaling every instant and duration by
    /// `time_scale` (the threaded runtime's modeled-duration multiplier).
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not strictly positive and finite.
    pub fn wall_clock(time_scale: f64) -> Self {
        assert!(
            time_scale > 0.0 && time_scale.is_finite(),
            "time_scale must be positive and finite"
        );
        Self { scale: time_scale }
    }

    /// The scale factor applied to plan instants.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maps a plan instant into this clock's domain.
    pub fn instant(&self, at: SimTime) -> SimTime {
        if self.scale == 1.0 {
            at // exact: the identity branch keeps sim traces byte-stable
        } else {
            SimTime::from_nanos((at.as_nanos() as f64 * self.scale).round() as u64)
        }
    }

    /// Maps a plan duration into this clock's domain.
    pub fn duration(&self, d: SimDuration) -> SimDuration {
        if self.scale == 1.0 {
            d
        } else {
            d.mul_f64(self.scale)
        }
    }

    /// [`FaultClock::instant`] as a wall-clock offset from iteration start.
    pub fn wall_instant(&self, at: SimTime) -> std::time::Duration {
        std::time::Duration::from_nanos(self.instant(at).as_nanos())
    }

    /// [`FaultClock::duration`] as a wall-clock duration.
    pub fn wall_duration(&self, d: SimDuration) -> std::time::Duration {
        std::time::Duration::from_nanos(self.duration(d).as_nanos())
    }
}

/// Probabilistic fault model of one deployment.
///
/// All probabilities are per *iteration* (per channel, worker or
/// parameter server as appropriate). The quiet default —
/// [`FaultSpec::none`] — injects nothing and leaves a backend's
/// behaviour exactly as if the fault subsystem did not exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that any individual transfer attempt is lost on the
    /// wire (transient loss; detected by timeout, recovered by
    /// retransmit).
    pub drop_prob: f64,
    /// Probability that a channel suffers one blackout window during the
    /// iteration.
    pub blackout_prob: f64,
    /// Length of a channel blackout.
    pub blackout: SimDuration,
    /// Probability that a worker crashes once during the iteration.
    pub crash_prob: f64,
    /// Time a crashed worker is down before it recovers and re-runs lost
    /// work.
    pub crash_downtime: SimDuration,
    /// Probability that a worker is a persistent straggler for the whole
    /// iteration.
    pub straggler_prob: f64,
    /// Compute slowdown factor applied to a straggling worker (`>= 1`).
    pub straggler_factor: f64,
    /// Probability that a parameter server's update thread stalls once
    /// during the iteration.
    pub ps_stall_prob: f64,
    /// Length of a parameter-server stall.
    pub ps_stall: SimDuration,
    /// Fault onsets (blackouts, crashes, stalls) are sampled uniformly in
    /// `[0, onset_window)` of model time.
    pub onset_window: SimDuration,
    /// Loss detection and retransmit policy for dropped transfers.
    pub retry: RetryPolicy,
    /// Degraded-mode sync barrier: when set, the iteration completes at
    /// this model time even if ops are outstanding; the stragglers'
    /// updates are deferred to the next iteration. When `None`, an
    /// exhausted retry budget is a hard error.
    pub barrier_timeout: Option<SimDuration>,
}

impl FaultSpec {
    /// The quiet specification: no faults, no barrier.
    pub fn none() -> Self {
        Self {
            drop_prob: 0.0,
            blackout_prob: 0.0,
            blackout: SimDuration::from_millis(20),
            crash_prob: 0.0,
            crash_downtime: SimDuration::from_millis(100),
            straggler_prob: 0.0,
            straggler_factor: 2.0,
            ps_stall_prob: 0.0,
            ps_stall: SimDuration::from_millis(50),
            onset_window: SimDuration::from_millis(100),
            retry: RetryPolicy::grpc_default(),
            barrier_timeout: None,
        }
    }

    /// Whether this specification can never inject a fault.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob == 0.0
            && self.blackout_prob == 0.0
            && self.crash_prob == 0.0
            && self.straggler_prob == 0.0
            && self.ps_stall_prob == 0.0
    }

    /// FNV-1a hash over a canonical byte encoding of every field, used by
    /// the run store to tag records with the exact fault regime they ran
    /// under. Two specs hash equal iff every field is bit-identical
    /// (floats compare by `to_bits`, so `-0.0 != 0.0` — acceptable, since
    /// specs are constructed from literals, not arithmetic).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bits: u64| {
            for b in bits.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        eat(self.drop_prob.to_bits());
        eat(self.blackout_prob.to_bits());
        eat(self.blackout.as_nanos());
        eat(self.crash_prob.to_bits());
        eat(self.crash_downtime.as_nanos());
        eat(self.straggler_prob.to_bits());
        eat(self.straggler_factor.to_bits());
        eat(self.ps_stall_prob.to_bits());
        eat(self.ps_stall.as_nanos());
        eat(self.onset_window.as_nanos());
        eat(self.retry.timeout.as_nanos());
        eat(self.retry.backoff.to_bits());
        eat(u64::from(self.retry.max_retries));
        match self.barrier_timeout {
            None => eat(0),
            Some(t) => {
                eat(1);
                eat(t.as_nanos());
            }
        }
        h
    }

    /// Overrides the per-attempt transfer loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_prob must be in [0,1]");
        self.drop_prob = p;
        self
    }

    /// Overrides the per-channel blackout probability and duration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_blackouts(mut self, p: f64, duration: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "blackout_prob must be in [0,1]");
        self.blackout_prob = p;
        self.blackout = duration;
        self
    }

    /// Overrides the per-worker crash probability and downtime.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_crashes(mut self, p: f64, downtime: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "crash_prob must be in [0,1]");
        self.crash_prob = p;
        self.crash_downtime = downtime;
        self
    }

    /// Overrides the per-worker persistent-straggler probability and
    /// slowdown factor.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability or `factor < 1`.
    pub fn with_stragglers(mut self, p: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "straggler_prob must be in [0,1]");
        assert!(factor >= 1.0, "straggler_factor must be at least 1");
        self.straggler_prob = p;
        self.straggler_factor = factor;
        self
    }

    /// Overrides the per-PS stall probability and duration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_ps_stalls(mut self, p: f64, duration: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "ps_stall_prob must be in [0,1]");
        self.ps_stall_prob = p;
        self.ps_stall = duration;
        self
    }

    /// Overrides the onset-sampling window.
    pub fn with_onset_window(mut self, window: SimDuration) -> Self {
        self.onset_window = window;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables the degraded-mode barrier at `timeout`.
    pub fn with_barrier_timeout(mut self, timeout: SimDuration) -> Self {
        self.barrier_timeout = Some(timeout);
        self
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// One channel blackout window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blackout {
    /// The affected channel.
    pub channel: ChannelId,
    /// When the channel goes dark.
    pub at: SimTime,
    /// When it comes back.
    pub until: SimTime,
}

/// One worker crash/recover cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// The crashed worker.
    pub device: DeviceId,
    /// When the worker dies.
    pub at: SimTime,
    /// When it recovers.
    pub until: SimTime,
}

/// One parameter-server stall window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stall {
    /// The stalled parameter server.
    pub device: DeviceId,
    /// When the update thread wedges.
    pub at: SimTime,
    /// When it resumes.
    pub until: SimTime,
}

/// The concrete faults of one iteration, sampled from a [`FaultSpec`].
///
/// Plans compare with `==`, so tests can assert that identical
/// `(seed, iteration)` pairs produce identical plans — and, through the
/// backends, identical fault sets on virtual and wall clocks alike.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Channel blackout windows.
    pub blackouts: Vec<Blackout>,
    /// Worker crash/recover cycles.
    pub crashes: Vec<Crash>,
    /// Persistent stragglers: `(worker, slowdown factor)`.
    pub stragglers: Vec<(DeviceId, f64)>,
    /// Parameter-server stall windows.
    pub stalls: Vec<Stall>,
    /// Per-attempt transfer loss probability.
    pub drop_prob: f64,
    /// Loss detection and retransmit policy.
    pub retry: RetryPolicy,
    /// Degraded-barrier release time, if enabled.
    pub barrier_timeout: Option<SimDuration>,
    /// Seed of the keyed per-attempt drop hash (kept inside the plan so
    /// replaying a plan replays its drops, on any backend).
    drop_seed: u64,
}

impl FaultPlan {
    /// The plan that injects nothing: what a quiet spec always samples.
    pub fn quiet() -> Self {
        Self {
            blackouts: Vec::new(),
            crashes: Vec::new(),
            stragglers: Vec::new(),
            stalls: Vec::new(),
            drop_prob: 0.0,
            retry: RetryPolicy::grpc_default(),
            barrier_timeout: None,
            drop_seed: 0,
        }
    }

    /// Samples the iteration's faults from `spec` for the given graph.
    ///
    /// The draw is keyed by `(seed, iteration)` on a stream separate from
    /// any engine's noise RNG, so the same arguments always yield the same
    /// plan and fault sampling never perturbs fault-free behaviour.
    pub fn sample(spec: &FaultSpec, graph: &Graph, seed: u64, iteration: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(
            seed ^ FAULT_STREAM ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let onset = |rng: &mut SmallRng, window: SimDuration| -> SimTime {
            if window.is_zero() {
                SimTime::ZERO
            } else {
                SimTime::from_nanos(rng.gen_range(0..window.as_nanos()))
            }
        };

        let mut blackouts = Vec::new();
        if spec.blackout_prob > 0.0 {
            for channel in graph.channels() {
                if rng.gen::<f64>() < spec.blackout_prob {
                    let at = onset(&mut rng, spec.onset_window);
                    blackouts.push(Blackout {
                        channel: channel.id(),
                        at,
                        until: at + spec.blackout,
                    });
                }
            }
        }

        let mut crashes = Vec::new();
        let mut stragglers = Vec::new();
        if spec.crash_prob > 0.0 || spec.straggler_prob > 0.0 {
            for device in graph.devices() {
                if !device.is_worker() {
                    continue;
                }
                if spec.crash_prob > 0.0 && rng.gen::<f64>() < spec.crash_prob {
                    let at = onset(&mut rng, spec.onset_window);
                    crashes.push(Crash {
                        device: device.id(),
                        at,
                        until: at + spec.crash_downtime,
                    });
                }
                if spec.straggler_prob > 0.0 && rng.gen::<f64>() < spec.straggler_prob {
                    stragglers.push((device.id(), spec.straggler_factor));
                }
            }
        }

        let mut stalls = Vec::new();
        if spec.ps_stall_prob > 0.0 {
            for device in graph.devices() {
                if device.is_worker() {
                    continue;
                }
                if rng.gen::<f64>() < spec.ps_stall_prob {
                    let at = onset(&mut rng, spec.onset_window);
                    stalls.push(Stall {
                        device: device.id(),
                        at,
                        until: at + spec.ps_stall,
                    });
                }
            }
        }

        Self {
            blackouts,
            crashes,
            stragglers,
            stalls,
            drop_prob: spec.drop_prob,
            retry: spec.retry,
            barrier_timeout: spec.barrier_timeout,
            drop_seed: rng.gen(),
        }
    }

    /// Whether this plan can inject nothing.
    pub fn is_quiet(&self) -> bool {
        self.blackouts.is_empty()
            && self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.stalls.is_empty()
            && self.drop_prob == 0.0
            && self.barrier_timeout.is_none()
    }

    /// Decides whether attempt `attempt` of `recv`'s transfer is lost on
    /// the wire.
    ///
    /// A pure keyed hash of `(plan, op, attempt)` — not a sequential
    /// stream — so the decision is independent of the *order* in which a
    /// backend starts transfers. That is what lets the simulator and the
    /// threaded runtime, which interleave channel work very differently,
    /// lose exactly the same attempts and report identical drop,
    /// timeout and retransmit counters for one plan.
    pub fn drops_attempt(&self, recv: OpId, attempt: u32) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        if self.drop_prob >= 1.0 {
            return true;
        }
        let key = ((recv.index() as u64) << 32) | u64::from(attempt);
        let h = mix(self.drop_seed, key);
        // Top 53 bits → uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};

    fn graph() -> tictac_graph::Graph {
        deploy(&tiny_mlp(Mode::Training, 8), &ClusterSpec::new(3, 2))
            .unwrap()
            .graph()
            .clone()
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = FaultSpec::none();
        assert_eq!(base.fingerprint(), FaultSpec::none().fingerprint());
        let variants = [
            base.clone().with_drop_prob(0.1),
            base.clone()
                .with_blackouts(0.2, SimDuration::from_millis(5)),
            base.clone().with_crashes(0.3, SimDuration::from_millis(50)),
            base.clone().with_stragglers(0.4, 3.0),
            base.clone()
                .with_ps_stalls(0.5, SimDuration::from_millis(10)),
            base.clone()
                .with_barrier_timeout(SimDuration::from_millis(200)),
        ];
        let mut fps: Vec<u64> = variants.iter().map(FaultSpec::fingerprint).collect();
        fps.push(base.fingerprint());
        let distinct: std::collections::HashSet<u64> = fps.iter().copied().collect();
        assert_eq!(distinct.len(), fps.len(), "fingerprint collision: {fps:?}");
    }

    #[test]
    fn quiet_spec_samples_quiet_plans() {
        let g = graph();
        let plan = FaultPlan::sample(&FaultSpec::none(), &g, 1, 0);
        assert!(plan.is_quiet());
        assert!(FaultSpec::none().is_quiet());
        assert!(FaultPlan::quiet().is_quiet());
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_iteration() {
        let g = graph();
        let spec = FaultSpec::none()
            .with_drop_prob(0.1)
            .with_blackouts(0.8, SimDuration::from_millis(5))
            .with_crashes(0.5, SimDuration::from_millis(50))
            .with_stragglers(0.5, 3.0)
            .with_ps_stalls(0.5, SimDuration::from_millis(10));
        assert!(!spec.is_quiet());
        let a = FaultPlan::sample(&spec, &g, 7, 3);
        let b = FaultPlan::sample(&spec, &g, 7, 3);
        assert_eq!(a, b);
        let c = FaultPlan::sample(&spec, &g, 7, 4);
        let d = FaultPlan::sample(&spec, &g, 8, 3);
        assert!(a != c || a != d, "different keys should differ");
    }

    #[test]
    fn certain_faults_hit_every_target() {
        let g = graph();
        let spec = FaultSpec::none()
            .with_blackouts(1.0, SimDuration::from_millis(1))
            .with_crashes(1.0, SimDuration::from_millis(1))
            .with_stragglers(1.0, 2.5)
            .with_ps_stalls(1.0, SimDuration::from_millis(1));
        let plan = FaultPlan::sample(&spec, &g, 1, 0);
        let workers = g.workers().count();
        let servers = g.parameter_servers().count();
        assert_eq!(plan.blackouts.len(), g.channels().len());
        assert_eq!(plan.crashes.len(), workers);
        assert_eq!(plan.stragglers.len(), workers);
        assert_eq!(plan.stalls.len(), servers);
        for b in &plan.blackouts {
            assert!(b.until > b.at);
            assert!(b.at.as_nanos() < spec.onset_window.as_nanos());
        }
    }

    #[test]
    fn drop_decisions_are_keyed_and_order_independent() {
        let g = graph();
        let spec = FaultSpec::none().with_drop_prob(0.5);
        let plan = FaultPlan::sample(&spec, &g, 42, 0);
        let op = |i: usize| OpId::from_index(i);
        // The decision for one (op, attempt) key never changes, however
        // many times or in whatever order a backend asks.
        let forward: Vec<bool> = (0..64).map(|i| plan.drops_attempt(op(i), 0)).collect();
        let reverse: Vec<bool> = (0..64)
            .rev()
            .map(|i| plan.drops_attempt(op(i), 0))
            .collect();
        assert_eq!(forward, reverse.into_iter().rev().collect::<Vec<_>>());
        // With p = 0.5 across 64 ops × 4 attempts, both outcomes appear.
        let outcomes: Vec<bool> = (0..64)
            .flat_map(|i| (0..4).map(move |a| (i, a)))
            .map(|(i, a)| plan.drops_attempt(op(i), a))
            .collect();
        assert!(outcomes.iter().any(|&d| d) && outcomes.iter().any(|&d| !d));
        // Extremes never consult the hash.
        let certain = FaultPlan::sample(&spec.clone().with_drop_prob(1.0), &g, 42, 0);
        assert!((0..32).all(|i| certain.drops_attempt(op(i), 0)));
        assert!((0..32).all(|i| !FaultPlan::quiet().drops_attempt(op(i), 0)));
    }

    #[test]
    fn fault_clock_maps_identity_and_scaled_domains() {
        let at = SimTime::from_nanos(123_456);
        let d = SimDuration::from_nanos(10_000);
        let virt = FaultClock::virtual_time();
        assert_eq!(virt.instant(at), at);
        assert_eq!(virt.duration(d), d);
        let wall = FaultClock::wall_clock(0.5);
        assert_eq!(wall.instant(at).as_nanos(), 61_728);
        assert_eq!(wall.duration(d).as_nanos(), 5_000);
        assert_eq!(
            wall.wall_instant(at),
            std::time::Duration::from_nanos(61_728)
        );
        assert_eq!(wall.wall_duration(d), std::time::Duration::from_micros(5));
        assert_eq!(wall.scale(), 0.5);
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn rejects_invalid_drop_probability() {
        FaultSpec::none().with_drop_prob(1.5);
    }
}
