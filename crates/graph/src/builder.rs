//! Incremental, validated construction of [`Graph`]s.

use crate::device::{Channel, Device, DeviceKind};
use crate::error::GraphError;
use crate::graph::{Graph, ParamInfo};
use crate::ids::{ChannelId, DeviceId, OpId, ParamId};
use crate::op::{Cost, Op, OpKind};
use std::collections::HashSet;

/// Builder for [`Graph`].
///
/// Ids are handed out eagerly so that later ops can depend on earlier ones;
/// [`GraphBuilder::build`] validates the result (acyclicity, id bounds,
/// channel placement, name uniqueness).
///
/// # Example
///
/// ```
/// use tictac_graph::{Cost, GraphBuilder, OpKind};
///
/// let mut b = GraphBuilder::new();
/// let w = b.add_worker("worker/0");
/// let a = b.add_op("a", w, OpKind::Compute, Cost::flops(1.0), &[]);
/// let _b2 = b.add_op("b", w, OpKind::Compute, Cost::flops(1.0), &[a]);
/// let graph = b.build()?;
/// assert_eq!(graph.len(), 2);
/// # Ok::<(), tictac_graph::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    ops: Vec<Op>,
    preds: Vec<Vec<OpId>>,
    devices: Vec<Device>,
    channels: Vec<Channel>,
    params: Vec<ParamInfo>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with op capacity pre-allocated.
    pub fn with_capacity(ops: usize) -> Self {
        Self {
            ops: Vec::with_capacity(ops),
            preds: Vec::with_capacity(ops),
            ..Self::default()
        }
    }

    /// Registers a worker device and returns its id.
    pub fn add_worker(&mut self, name: impl Into<String>) -> DeviceId {
        self.add_device(DeviceKind::Worker, name)
    }

    /// Registers a parameter-server device and returns its id.
    pub fn add_parameter_server(&mut self, name: impl Into<String>) -> DeviceId {
        self.add_device(DeviceKind::ParameterServer, name)
    }

    /// Registers a device of the given kind and returns its id.
    pub fn add_device(&mut self, kind: DeviceKind, name: impl Into<String>) -> DeviceId {
        let id = DeviceId::from_index(self.devices.len());
        self.devices.push(Device::new(id, kind, name));
        id
    }

    /// Registers a communication channel between `worker` and `ps`.
    ///
    /// Endpoint roles are validated at [`build`](Self::build) time.
    pub fn add_channel(&mut self, worker: DeviceId, ps: DeviceId) -> ChannelId {
        let id = ChannelId::from_index(self.channels.len());
        self.channels.push(Channel::new(id, worker, ps));
        id
    }

    /// Registers a peer channel between two workers (all-reduce rings).
    ///
    /// Both endpoints must be distinct workers (validated at
    /// [`build`](Self::build) time).
    pub fn add_peer_channel(&mut self, a: DeviceId, b: DeviceId) -> ChannelId {
        let id = ChannelId::from_index(self.channels.len());
        self.channels.push(Channel::new_peer(id, a, b));
        id
    }

    /// Registers a parameter of `bytes` bytes and returns its id.
    pub fn add_param(&mut self, name: impl Into<String>, bytes: u64) -> ParamId {
        let id = ParamId::from_index(self.params.len());
        self.params.push(ParamInfo {
            name: name.into(),
            bytes,
            ps: None,
        });
        id
    }

    /// Assigns a parameter to a parameter-server shard.
    ///
    /// # Panics
    ///
    /// Panics if `param` was not created by this builder.
    pub fn assign_param_to_ps(&mut self, param: ParamId, ps: DeviceId) {
        self.params[param.index()].ps = Some(ps);
    }

    /// Adds an op and returns its id.
    ///
    /// `deps` are control/data dependencies: the op becomes ready only when
    /// all of them have finished.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        device: DeviceId,
        kind: OpKind,
        cost: Cost,
        deps: &[OpId],
    ) -> OpId {
        let id = OpId::from_index(self.ops.len());
        self.ops.push(Op {
            name: name.into(),
            kind,
            device,
            cost,
        });
        let mut p = deps.to_vec();
        p.sort_unstable();
        p.dedup();
        self.preds.push(p);
        id
    }

    /// Adds an extra dependency edge `from -> to` after both ops exist.
    ///
    /// # Panics
    ///
    /// Panics if `to` was not created by this builder.
    pub fn add_dep(&mut self, from: OpId, to: OpId) {
        let preds = &mut self.preds[to.index()];
        if !preds.contains(&from) {
            preds.push(from);
            preds.sort_unstable();
        }
    }

    /// Number of ops added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph contains a cycle, dangling ids,
    /// a channel whose endpoints are not a worker–PS pair, a communication op
    /// on a device its channel does not connect, or duplicate op names.
    pub fn build(self) -> Result<Graph, GraphError> {
        // Validate channel endpoints.
        for ch in &self.channels {
            let (a, b) = ch.endpoints();
            let in_bounds = a.index() < self.devices.len() && b.index() < self.devices.len();
            let endpoints_ok = in_bounds
                && if ch.is_peer() {
                    a != b
                        && self.devices[a.index()].is_worker()
                        && self.devices[b.index()].is_worker()
                } else {
                    self.devices[a.index()].is_worker()
                        && self.devices[b.index()].is_parameter_server()
                };
            if !endpoints_ok {
                return Err(GraphError::InvalidChannelEndpoints { worker: a, ps: b });
            }
        }

        // Validate op references and name uniqueness.
        let mut names = HashSet::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let id = OpId::from_index(i);
            if op.device.index() >= self.devices.len() {
                return Err(GraphError::UnknownDevice(op.device));
            }
            if let Some(ch) = op.kind.channel() {
                if ch.index() >= self.channels.len() {
                    return Err(GraphError::UnknownChannel(ch));
                }
                if !self.channels[ch.index()].connects(op.device) {
                    return Err(GraphError::ChannelMismatch {
                        op: id,
                        device: op.device,
                        channel: ch,
                    });
                }
            }
            if let Some(p) = op.kind.param() {
                if p.index() >= self.params.len() {
                    return Err(GraphError::UnknownParam(p));
                }
            }
            for &pr in &self.preds[i] {
                if pr.index() >= self.ops.len() {
                    return Err(GraphError::UnknownOp(pr));
                }
            }
            if !names.insert(op.name.as_str()) {
                return Err(GraphError::DuplicateOpName(op.name.clone()));
            }
        }

        // Derive successor lists.
        let mut succs: Vec<Vec<OpId>> = vec![Vec::new(); self.ops.len()];
        for (i, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                succs[p.index()].push(OpId::from_index(i));
            }
        }

        let graph = Graph {
            ops: self.ops,
            preds: self.preds,
            succs,
            devices: self.devices,
            channels: self.channels,
            params: self.params,
            name_index: std::sync::OnceLock::new(),
        };

        // Acyclicity.
        crate::topo::topo_order(&graph)?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_cycles() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::ZERO, &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::ZERO, &[a]);
        b.add_dep(c, a); // close the cycle a -> c -> a
        assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        b.add_op("x", w, OpKind::Compute, Cost::ZERO, &[]);
        b.add_op("x", w, OpKind::Compute, Cost::ZERO, &[]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateOpName("x".into())
        );
    }

    #[test]
    fn rejects_channel_between_two_workers() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        b.add_channel(w0, w1);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidChannelEndpoints { .. })
        ));
    }

    #[test]
    fn peer_channels_connect_two_workers() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        let ch = b.add_peer_channel(w0, w1);
        let g = b.build().unwrap();
        assert!(g.channel(ch).is_peer());
        assert_eq!(g.channel(ch).endpoints(), (w0, w1));
        assert!(g.channel(ch).connects(w0) && g.channel(ch).connects(w1));
    }

    #[test]
    fn rejects_peer_channel_to_self_or_ps() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        b.add_peer_channel(w0, w0);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidChannelEndpoints { .. })
        ));

        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        b.add_peer_channel(w0, ps);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidChannelEndpoints { .. })
        ));
    }

    #[test]
    fn rejects_comm_op_on_unconnected_device() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w0, ps);
        let p = b.add_param("p", 8);
        // recv placed on w1, but the channel connects w0 and ps.
        b.add_op("bad", w1, OpKind::recv(p, ch), Cost::bytes(8), &[]);
        assert!(matches!(b.build(), Err(GraphError::ChannelMismatch { .. })));
    }

    #[test]
    fn rejects_unknown_param() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let bogus = ParamId::from_index(5);
        b.add_op("r", w, OpKind::recv(bogus, ch), Cost::bytes(8), &[]);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownParam(bogus));
    }

    #[test]
    fn duplicate_deps_are_collapsed() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::ZERO, &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::ZERO, &[a, a, a]);
        let g = b.build().unwrap();
        assert_eq!(g.preds(c), &[a]);
        assert_eq!(g.succs(a), &[c]);
    }

    #[test]
    fn add_dep_is_idempotent() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::ZERO, &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::ZERO, &[]);
        b.add_dep(a, c);
        b.add_dep(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.preds(c), &[a]);
    }

    #[test]
    fn param_ps_assignment_is_recorded() {
        let mut b = GraphBuilder::new();
        let _w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let p = b.add_param("p", 64);
        b.assign_param_to_ps(p, ps);
        let g = b.build().unwrap();
        assert_eq!(g.param(p).ps(), Some(ps));
        assert_eq!(g.param(p).bytes(), 64);
        assert_eq!(g.param(p).name(), "p");
    }
}
