//! Incremental, validated construction of [`Graph`]s.

use crate::device::{Channel, Device, DeviceKind};
use crate::error::GraphError;
use crate::graph::{Graph, ParamInfo};
use crate::ids::{ChannelId, DeviceId, OpId, ParamId};
use crate::name::{NameId, NameTable, OpName};
use crate::op::{Cost, Op, OpKind};
use std::collections::HashSet;

/// Builder for [`Graph`].
///
/// Ids are handed out eagerly so that later ops can depend on earlier ones;
/// [`GraphBuilder::build`] validates the result (acyclicity, id bounds,
/// channel placement, name uniqueness).
///
/// # Example
///
/// ```
/// use tictac_graph::{Cost, GraphBuilder, OpKind};
///
/// let mut b = GraphBuilder::new();
/// let w = b.add_worker("worker/0");
/// let a = b.add_op("a", w, OpKind::Compute, Cost::flops(1.0), &[]);
/// let _b2 = b.add_op("b", w, OpKind::Compute, Cost::flops(1.0), &[a]);
/// let graph = b.build()?;
/// assert_eq!(graph.len(), 2);
/// # Ok::<(), tictac_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    ops: Vec<Op>,
    /// Flat predecessor arena in compressed sparse row form:
    /// op `i`'s deps are `pred_edges[pred_offsets[i]..pred_offsets[i+1]]`.
    /// One arena grows across the whole build instead of one `Vec` per op.
    pred_edges: Vec<OpId>,
    pred_offsets: Vec<u32>,
    devices: Vec<Device>,
    channels: Vec<Channel>,
    params: Vec<ParamInfo>,
    /// Sparse heterogeneity overrides; normalized away at `build` when
    /// every factor is exactly `1.0`.
    device_speeds: Vec<f64>,
    channel_bandwidths: Vec<f64>,
    names: NameTable,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self {
            ops: Vec::new(),
            pred_edges: Vec::new(),
            pred_offsets: vec![0],
            devices: Vec::new(),
            channels: Vec::new(),
            params: Vec::new(),
            device_speeds: Vec::new(),
            channel_bandwidths: Vec::new(),
            names: NameTable::new(),
        }
    }
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with op capacity pre-allocated.
    pub fn with_capacity(ops: usize) -> Self {
        let mut pred_offsets = Vec::with_capacity(ops + 1);
        pred_offsets.push(0);
        Self {
            ops: Vec::with_capacity(ops),
            // Most deployment ops carry 1–2 deps; 2× op count is a good
            // first reservation either way.
            pred_edges: Vec::with_capacity(ops * 2),
            pred_offsets,
            ..Self::default()
        }
    }

    /// Registers a worker device and returns its id.
    pub fn add_worker(&mut self, name: impl Into<String>) -> DeviceId {
        self.add_device(DeviceKind::Worker, name)
    }

    /// Registers a parameter-server device and returns its id.
    pub fn add_parameter_server(&mut self, name: impl Into<String>) -> DeviceId {
        self.add_device(DeviceKind::ParameterServer, name)
    }

    /// Registers a device of the given kind and returns its id.
    pub fn add_device(&mut self, kind: DeviceKind, name: impl Into<String>) -> DeviceId {
        let id = DeviceId::from_index(self.devices.len());
        self.devices.push(Device::new(id, kind, name));
        id
    }

    /// Registers a communication channel between `worker` and `ps`.
    ///
    /// Endpoint roles are validated at [`build`](Self::build) time.
    pub fn add_channel(&mut self, worker: DeviceId, ps: DeviceId) -> ChannelId {
        let id = ChannelId::from_index(self.channels.len());
        self.channels.push(Channel::new(id, worker, ps));
        id
    }

    /// Registers a peer channel between two workers (all-reduce rings).
    ///
    /// Both endpoints must be distinct workers (validated at
    /// [`build`](Self::build) time).
    pub fn add_peer_channel(&mut self, a: DeviceId, b: DeviceId) -> ChannelId {
        let id = ChannelId::from_index(self.channels.len());
        self.channels.push(Channel::new_peer(id, a, b));
        id
    }

    /// Sets the relative speed factor of `device` (`1.0` = platform
    /// reference; `2.0` = twice as fast).
    ///
    /// # Panics
    ///
    /// Panics if `device` was not created by this builder, or if `speed`
    /// is not a positive finite number.
    pub fn set_device_speed(&mut self, device: DeviceId, speed: f64) {
        assert!(
            device.index() < self.devices.len(),
            "unknown device {device:?}"
        );
        assert!(
            speed.is_finite() && speed > 0.0,
            "device speed must be positive and finite, got {speed}"
        );
        if self.device_speeds.len() <= device.index() {
            self.device_speeds.resize(device.index() + 1, 1.0);
        }
        self.device_speeds[device.index()] = speed;
    }

    /// Sets the relative bandwidth factor of `channel` (`1.0` = platform
    /// reference; `0.5` = half the bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `channel` was not created by this builder, or if
    /// `bandwidth` is not a positive finite number.
    pub fn set_channel_bandwidth(&mut self, channel: ChannelId, bandwidth: f64) {
        assert!(
            channel.index() < self.channels.len(),
            "unknown channel {channel:?}"
        );
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "channel bandwidth must be positive and finite, got {bandwidth}"
        );
        if self.channel_bandwidths.len() <= channel.index() {
            self.channel_bandwidths.resize(channel.index() + 1, 1.0);
        }
        self.channel_bandwidths[channel.index()] = bandwidth;
    }

    /// Registers a parameter of `bytes` bytes and returns its id.
    pub fn add_param(&mut self, name: impl Into<String>, bytes: u64) -> ParamId {
        let id = ParamId::from_index(self.params.len());
        self.params.push(ParamInfo {
            name: name.into(),
            bytes,
            ps: None,
        });
        id
    }

    /// Assigns a parameter to a parameter-server shard.
    ///
    /// # Panics
    ///
    /// Panics if `param` was not created by this builder.
    pub fn assign_param_to_ps(&mut self, param: ParamId, ps: DeviceId) {
        self.params[param.index()].ps = Some(ps);
    }

    /// Interns a string for use in structured [`OpName`]s.
    pub fn intern(&mut self, s: &str) -> NameId {
        self.names.intern(s)
    }

    /// Adds an op with an arbitrary string name and returns its id.
    ///
    /// The string is interned as [`OpName::Raw`]; deployment-style hot
    /// paths should prefer [`add_op_named`](Self::add_op_named), which
    /// avoids touching strings entirely.
    ///
    /// `deps` are control/data dependencies: the op becomes ready only when
    /// all of them have finished.
    pub fn add_op(
        &mut self,
        name: impl AsRef<str>,
        device: DeviceId,
        kind: OpKind,
        cost: Cost,
        deps: &[OpId],
    ) -> OpId {
        let name = OpName::Raw(self.names.intern(name.as_ref()));
        self.add_op_named(name, device, kind, cost, deps)
    }

    /// Adds an op with a structured, allocation-free name and returns its
    /// id.
    ///
    /// Interned components must come from [`intern`](Self::intern) on this
    /// builder.
    pub fn add_op_named(
        &mut self,
        name: OpName,
        device: DeviceId,
        kind: OpKind,
        cost: Cost,
        deps: &[OpId],
    ) -> OpId {
        let id = OpId::from_index(self.ops.len());
        self.ops.push(Op {
            name,
            kind,
            device,
            cost,
        });
        // Append, then sort + dedup the newly added range in place — no
        // per-op allocation.
        let start = self.pred_edges.len();
        self.pred_edges.extend_from_slice(deps);
        self.pred_edges[start..].sort_unstable();
        let mut w = start;
        for r in start..self.pred_edges.len() {
            if w == start || self.pred_edges[w - 1] != self.pred_edges[r] {
                self.pred_edges[w] = self.pred_edges[r];
                w += 1;
            }
        }
        self.pred_edges.truncate(w);
        self.pred_offsets.push(self.pred_edges.len() as u32);
        id
    }

    /// Adds an extra dependency edge `from -> to` after both ops exist.
    ///
    /// O(edges) when `to` is not the most recently added op (the edge
    /// arena is packed); fine for the occasional extra edge, not for bulk
    /// construction — pass deps to [`add_op`](Self::add_op) instead.
    ///
    /// # Panics
    ///
    /// Panics if `to` was not created by this builder.
    pub fn add_dep(&mut self, from: OpId, to: OpId) {
        let (start, end) = (
            self.pred_offsets[to.index()] as usize,
            self.pred_offsets[to.index() + 1] as usize,
        );
        if self.pred_edges[start..end].contains(&from) {
            return;
        }
        self.pred_edges.insert(end, from);
        self.pred_edges[start..=end].sort_unstable();
        for off in &mut self.pred_offsets[to.index() + 1..] {
            *off += 1;
        }
    }

    /// Number of ops added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph contains a cycle, dangling ids,
    /// a channel whose endpoints are not a worker–PS pair, a communication op
    /// on a device its channel does not connect, or duplicate op names.
    pub fn build(self) -> Result<Graph, GraphError> {
        // Validate channel endpoints.
        for ch in &self.channels {
            let (a, b) = ch.endpoints();
            let in_bounds = a.index() < self.devices.len() && b.index() < self.devices.len();
            let endpoints_ok = in_bounds
                && if ch.is_peer() {
                    a != b
                        && self.devices[a.index()].is_worker()
                        && self.devices[b.index()].is_worker()
                } else {
                    self.devices[a.index()].is_worker()
                        && self.devices[b.index()].is_parameter_server()
                };
            if !endpoints_ok {
                return Err(GraphError::InvalidChannelEndpoints { worker: a, ps: b });
            }
        }

        // Validate op references and name uniqueness. Names are compared
        // structurally (the interner dedups raw strings, so two identical
        // string names collide here exactly as before); a raw name that
        // *renders* like a structured one is not flagged — deployment only
        // emits structured names and hand-built graphs only raw ones.
        let mut names = HashSet::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let id = OpId::from_index(i);
            if op.device.index() >= self.devices.len() {
                return Err(GraphError::UnknownDevice(op.device));
            }
            if let Some(ch) = op.kind.channel() {
                if ch.index() >= self.channels.len() {
                    return Err(GraphError::UnknownChannel(ch));
                }
                if !self.channels[ch.index()].connects(op.device) {
                    return Err(GraphError::ChannelMismatch {
                        op: id,
                        device: op.device,
                        channel: ch,
                    });
                }
            }
            if let Some(p) = op.kind.param() {
                if p.index() >= self.params.len() {
                    return Err(GraphError::UnknownParam(p));
                }
            }
            let (s, e) = (
                self.pred_offsets[i] as usize,
                self.pred_offsets[i + 1] as usize,
            );
            for &pr in &self.pred_edges[s..e] {
                if pr.index() >= self.ops.len() {
                    return Err(GraphError::UnknownOp(pr));
                }
            }
            if !names.insert(op.name) {
                return Err(GraphError::DuplicateOpName(op.name.render(&self.names)));
            }
        }

        // Derive the successor CSR by counting sort: succ lists come out
        // sorted by successor id, as the per-op pushes used to produce.
        let n = self.ops.len();
        let mut succ_offsets = vec![0u32; n + 1];
        for &p in &self.pred_edges {
            succ_offsets[p.index() + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let mut cursor: Vec<u32> = succ_offsets[..n].to_vec();
        let mut succ_edges = vec![OpId::from_index(0); self.pred_edges.len()];
        for i in 0..n {
            let (s, e) = (
                self.pred_offsets[i] as usize,
                self.pred_offsets[i + 1] as usize,
            );
            for &p in &self.pred_edges[s..e] {
                let c = &mut cursor[p.index()];
                succ_edges[*c as usize] = OpId::from_index(i);
                *c += 1;
            }
        }

        // Canonicalize heterogeneity: an all-1.0 table IS the uniform
        // cluster, and the empty vector is its single representation —
        // uniform graphs stay byte-identical however they were built.
        let mut device_speeds = self.device_speeds;
        if device_speeds.iter().all(|&s| s == 1.0) {
            device_speeds = Vec::new();
        } else {
            device_speeds.resize(self.devices.len(), 1.0);
        }
        let mut channel_bandwidths = self.channel_bandwidths;
        if channel_bandwidths.iter().all(|&b| b == 1.0) {
            channel_bandwidths = Vec::new();
        } else {
            channel_bandwidths.resize(self.channels.len(), 1.0);
        }

        let graph = Graph {
            ops: self.ops,
            pred_edges: self.pred_edges,
            pred_offsets: self.pred_offsets,
            succ_edges,
            succ_offsets,
            devices: self.devices,
            channels: self.channels,
            params: self.params,
            device_speeds,
            channel_bandwidths,
            names: self.names,
            rendered: std::sync::OnceLock::new(),
            name_index: std::sync::OnceLock::new(),
            structured_index: std::sync::OnceLock::new(),
        };

        // Acyclicity.
        crate::topo::topo_order(&graph)?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_cycles() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::ZERO, &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::ZERO, &[a]);
        b.add_dep(c, a); // close the cycle a -> c -> a
        assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        b.add_op("x", w, OpKind::Compute, Cost::ZERO, &[]);
        b.add_op("x", w, OpKind::Compute, Cost::ZERO, &[]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateOpName("x".into())
        );
    }

    #[test]
    fn rejects_channel_between_two_workers() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        b.add_channel(w0, w1);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidChannelEndpoints { .. })
        ));
    }

    #[test]
    fn peer_channels_connect_two_workers() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        let ch = b.add_peer_channel(w0, w1);
        let g = b.build().unwrap();
        assert!(g.channel(ch).is_peer());
        assert_eq!(g.channel(ch).endpoints(), (w0, w1));
        assert!(g.channel(ch).connects(w0) && g.channel(ch).connects(w1));
    }

    #[test]
    fn rejects_peer_channel_to_self_or_ps() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        b.add_peer_channel(w0, w0);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidChannelEndpoints { .. })
        ));

        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        b.add_peer_channel(w0, ps);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidChannelEndpoints { .. })
        ));
    }

    #[test]
    fn rejects_comm_op_on_unconnected_device() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w0, ps);
        let p = b.add_param("p", 8);
        // recv placed on w1, but the channel connects w0 and ps.
        b.add_op("bad", w1, OpKind::recv(p, ch), Cost::bytes(8), &[]);
        assert!(matches!(b.build(), Err(GraphError::ChannelMismatch { .. })));
    }

    #[test]
    fn rejects_unknown_param() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let bogus = ParamId::from_index(5);
        b.add_op("r", w, OpKind::recv(bogus, ch), Cost::bytes(8), &[]);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownParam(bogus));
    }

    #[test]
    fn duplicate_deps_are_collapsed() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::ZERO, &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::ZERO, &[a, a, a]);
        let g = b.build().unwrap();
        assert_eq!(g.preds(c), &[a]);
        assert_eq!(g.succs(a), &[c]);
    }

    #[test]
    fn add_dep_is_idempotent() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::ZERO, &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::ZERO, &[]);
        b.add_dep(a, c);
        b.add_dep(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.preds(c), &[a]);
    }

    #[test]
    fn param_ps_assignment_is_recorded() {
        let mut b = GraphBuilder::new();
        let _w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let p = b.add_param("p", 64);
        b.assign_param_to_ps(p, ps);
        let g = b.build().unwrap();
        assert_eq!(g.param(p).ps(), Some(ps));
        assert_eq!(g.param(p).bytes(), 64);
        assert_eq!(g.param(p).name(), "p");
    }
}
