//! Devices (workers, parameter servers), channels and resources.
//!
//! TicTac's scheduling problem is defined over a *partitioned graph*: every
//! op is tagged with the resource that executes it. A device contributes one
//! compute resource; every worker–PS pair contributes one communication
//! channel (mirroring gRPC's single channel per pair, paper §5.1).

use crate::ids::{ChannelId, DeviceId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a device plays in a Model-Replica + Parameter-Server deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A training or inference worker holding a replica of the model.
    Worker,
    /// A parameter server holding a shard of the parameters.
    ParameterServer,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Worker => f.write_str("worker"),
            DeviceKind::ParameterServer => f.write_str("ps"),
        }
    }
}

/// A device participating in the deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    kind: DeviceKind,
    name: String,
}

impl Device {
    pub(crate) fn new(id: DeviceId, kind: DeviceKind, name: impl Into<String>) -> Self {
        Self {
            id,
            kind,
            name: name.into(),
        }
    }

    /// The device's identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's role.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The device's human-readable name (e.g. `"worker/0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this device is a worker.
    pub fn is_worker(&self) -> bool {
        self.kind == DeviceKind::Worker
    }

    /// Whether this device is a parameter server.
    pub fn is_parameter_server(&self) -> bool {
        self.kind == DeviceKind::ParameterServer
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A bidirectional communication channel between two devices.
///
/// Mirroring gRPC semantics in TensorFlow (paper §5.1): all transfers
/// between the pair share one queue and only one transfer is active at a
/// time. In a Parameter-Server deployment channels connect a worker to a
/// PS shard; peer channels (worker to worker) support the all-reduce
/// extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Channel {
    id: ChannelId,
    a: DeviceId,
    b: DeviceId,
    peer: bool,
}

impl Channel {
    pub(crate) fn new(id: ChannelId, worker: DeviceId, ps: DeviceId) -> Self {
        Self {
            id,
            a: worker,
            b: ps,
            peer: false,
        }
    }

    pub(crate) fn new_peer(id: ChannelId, a: DeviceId, b: DeviceId) -> Self {
        Self {
            id,
            a,
            b,
            peer: true,
        }
    }

    /// The channel's identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The first endpoint — the worker, for a worker–PS channel.
    pub fn worker(&self) -> DeviceId {
        self.a
    }

    /// The second endpoint — the parameter server, for a worker–PS channel.
    pub fn ps(&self) -> DeviceId {
        self.b
    }

    /// The two endpoints `(a, b)`.
    pub fn endpoints(&self) -> (DeviceId, DeviceId) {
        (self.a, self.b)
    }

    /// Whether this is a worker-to-worker peer channel (all-reduce rings).
    pub fn is_peer(&self) -> bool {
        self.peer
    }

    /// Whether `device` is one of the two endpoints.
    pub fn connects(&self, device: DeviceId) -> bool {
        self.a == device || self.b == device
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}<->{}]", self.id, self.a, self.b)
    }
}

/// An execution resource: either a device's compute unit or a communication
/// channel.
///
/// The scheduling-efficiency bounds of the paper (§3.2) are defined per
/// resource: the lower makespan bound is the busiest resource's total load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// The computation unit of a device (GPU or CPU).
    Compute(DeviceId),
    /// A worker–PS communication channel.
    Channel(ChannelId),
}

impl Resource {
    /// Whether this resource is a communication channel.
    pub fn is_channel(&self) -> bool {
        matches!(self, Resource::Channel(_))
    }

    /// Whether this resource is a compute unit.
    pub fn is_compute(&self) -> bool {
        matches!(self, Resource::Compute(_))
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Compute(d) => write!(f, "compute({d})"),
            Resource::Channel(c) => write!(f, "channel({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_accessors() {
        let d = Device::new(DeviceId::from_index(0), DeviceKind::Worker, "worker/0");
        assert!(d.is_worker());
        assert!(!d.is_parameter_server());
        assert_eq!(d.name(), "worker/0");
        assert_eq!(d.to_string(), "worker/0");
    }

    #[test]
    fn channel_connects_its_endpoints_only() {
        let w = DeviceId::from_index(0);
        let ps = DeviceId::from_index(1);
        let other = DeviceId::from_index(2);
        let ch = Channel::new(ChannelId::from_index(0), w, ps);
        assert!(ch.connects(w));
        assert!(ch.connects(ps));
        assert!(!ch.connects(other));
    }

    #[test]
    fn resource_kind_predicates() {
        let c = Resource::Compute(DeviceId::from_index(0));
        let ch = Resource::Channel(ChannelId::from_index(0));
        assert!(c.is_compute() && !c.is_channel());
        assert!(ch.is_channel() && !ch.is_compute());
    }

    #[test]
    fn display_formats() {
        let ch = Channel::new(
            ChannelId::from_index(2),
            DeviceId::from_index(0),
            DeviceId::from_index(4),
        );
        assert_eq!(ch.to_string(), "ch2[dev0<->dev4]");
        assert_eq!(Resource::Channel(ch.id()).to_string(), "channel(ch2)");
    }
}
