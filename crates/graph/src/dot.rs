//! Graphviz DOT export for debugging and documentation.

use crate::graph::Graph;
use crate::model::{ModelGraph, ModelOpKind};
use crate::op::OpKind;
use std::fmt::Write as _;

/// Renders a partitioned [`Graph`] as Graphviz DOT, clustering ops by
/// device and coloring communication ops.
pub fn to_dot(graph: &Graph) -> String {
    let mut out =
        String::from("digraph tictac {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for device in graph.devices() {
        let _ = writeln!(
            out,
            "  subgraph cluster_{} {{\n    label=\"{}\";",
            device.id().index(),
            device.name()
        );
        for id in graph.ops_on(device.id()) {
            let op = graph.op(id);
            let color = match op.kind() {
                OpKind::Recv { .. } => "lightblue",
                OpKind::Send { .. } => "lightsalmon",
                OpKind::Aggregate { .. } | OpKind::Read { .. } | OpKind::Update { .. } => {
                    "lightgrey"
                }
                OpKind::Compute => "white",
            };
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\", style=filled, fillcolor={}];",
                id.index(),
                graph.op_name(id),
                color
            );
        }
        out.push_str("  }\n");
    }
    for id in graph.op_ids() {
        for &p in graph.preds(id) {
            let _ = writeln!(out, "  n{} -> n{};", p.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a [`ModelGraph`] as Graphviz DOT with forward/backward shading.
pub fn model_to_dot(model: &ModelGraph) -> String {
    let mut out =
        String::from("digraph model {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for (id, op) in model.ops_enumerated() {
        let color = match op.kind() {
            ModelOpKind::Forward => "white",
            ModelOpKind::Loss => "gold",
            ModelOpKind::Backward => "lightpink",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", style=filled, fillcolor={}];",
            id.index(),
            op.name(),
            color
        );
    }
    for (id, op) in model.ops_enumerated() {
        for p in op.preds() {
            let _ = writeln!(out, "  n{} -> n{};", p.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cost, GraphBuilder, ModelGraphBuilder, ModelOpKind, OpKind};

    #[test]
    fn dot_contains_devices_and_edges() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("worker/0");
        let ps = b.add_parameter_server("ps/0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("p", 8);
        let r = b.add_op("recv_p", w, OpKind::recv(p, ch), Cost::bytes(8), &[]);
        b.add_op("use_p", w, OpKind::Compute, Cost::flops(1.0), &[r]);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph tictac"));
        assert!(dot.contains("worker/0"));
        assert!(dot.contains("recv_p"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("lightblue"));
    }

    #[test]
    fn model_dot_contains_ops() {
        let mut b = ModelGraphBuilder::new("m", 1);
        let w = b.add_param("w", vec![2]);
        let f = b.add_op("fwd", ModelOpKind::Forward, 1.0, &[], &[w], &[]);
        b.add_op("loss", ModelOpKind::Loss, 1.0, &[f], &[], &[]);
        let dot = model_to_dot(&b.build());
        assert!(dot.contains("fwd"));
        assert!(dot.contains("gold"));
        assert!(dot.contains("n0 -> n1;"));
    }
}
