//! Error type for graph construction and validation.

use crate::ids::{ChannelId, DeviceId, OpId, ParamId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph contains a dependency cycle involving the given op.
    Cycle(OpId),
    /// An edge refers to an op id that does not exist.
    UnknownOp(OpId),
    /// An op refers to a device id that does not exist.
    UnknownDevice(DeviceId),
    /// An op refers to a channel id that does not exist.
    UnknownChannel(ChannelId),
    /// An op refers to a parameter id that does not exist.
    UnknownParam(ParamId),
    /// A communication op is placed on a device its channel does not connect.
    ChannelMismatch {
        /// The offending op.
        op: OpId,
        /// The op's device.
        device: DeviceId,
        /// The channel that does not connect the device.
        channel: ChannelId,
    },
    /// A channel was declared between two devices that are not a
    /// worker–parameter-server pair.
    InvalidChannelEndpoints {
        /// First endpoint.
        worker: DeviceId,
        /// Second endpoint.
        ps: DeviceId,
    },
    /// Two ops share the same name.
    DuplicateOpName(String),
    /// The graph is empty where a non-empty graph was required.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(op) => write!(f, "dependency cycle through {op}"),
            GraphError::UnknownOp(op) => write!(f, "unknown op {op}"),
            GraphError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            GraphError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            GraphError::UnknownParam(p) => write!(f, "unknown parameter {p}"),
            GraphError::ChannelMismatch {
                op,
                device,
                channel,
            } => write!(
                f,
                "op {op} on {device} uses {channel} which does not connect {device}"
            ),
            GraphError::InvalidChannelEndpoints { worker, ps } => {
                write!(
                    f,
                    "channel endpoints {worker} and {ps} are not a worker-ps pair"
                )
            }
            GraphError::DuplicateOpName(name) => write!(f, "duplicate op name `{name}`"),
            GraphError::Empty => f.write_str("graph is empty"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::Cycle(OpId::from_index(3));
        assert_eq!(e.to_string(), "dependency cycle through op3");
        let e = GraphError::DuplicateOpName("conv1".into());
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
