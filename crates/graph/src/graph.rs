//! The partitioned computational graph arena.

use crate::device::{Channel, Device, Resource};
use crate::ids::{ChannelId, DeviceId, OpId, ParamId};
use crate::name::{NameTable, OpName};
use crate::op::{Op, OpKind};
use serde::{Deserialize, Serialize};

/// Metadata about one model parameter (a trainable tensor).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamInfo {
    pub(crate) name: String,
    pub(crate) bytes: u64,
    pub(crate) ps: Option<DeviceId>,
}

impl ParamInfo {
    /// The parameter's name (e.g. `"conv1/weights"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The parameter server the parameter is sharded onto, if assigned.
    pub fn ps(&self) -> Option<DeviceId> {
        self.ps
    }
}

/// An immutable, validated, partitioned computational DAG.
///
/// Construct with [`GraphBuilder`](crate::GraphBuilder). Ops are stored in an
/// arena indexed by [`OpId`]; dependency edges are stored in compressed
/// sparse row form — one flat edge arena plus an offset table per
/// direction — so building and cloning a graph costs a handful of
/// allocations, not two per op.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) ops: Vec<Op>,
    /// Predecessors of op `i`: `pred_edges[pred_offsets[i]..pred_offsets[i+1]]`.
    pub(crate) pred_edges: Vec<OpId>,
    pub(crate) pred_offsets: Vec<u32>,
    /// Successors of op `i`: `succ_edges[succ_offsets[i]..succ_offsets[i+1]]`.
    pub(crate) succ_edges: Vec<OpId>,
    pub(crate) succ_offsets: Vec<u32>,
    pub(crate) devices: Vec<Device>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) params: Vec<ParamInfo>,
    /// Relative device speed factors, one per device (empty = uniform).
    ///
    /// A factor of `2.0` means the device computes twice as fast as the
    /// platform reference; `0.5` means half speed. The empty vector is the
    /// canonical encoding of a uniform cluster, so homogeneous graphs are
    /// bit-for-bit identical to graphs built before heterogeneity existed.
    #[serde(default)]
    pub(crate) device_speeds: Vec<f64>,
    /// Relative channel bandwidth factors, one per channel (empty =
    /// uniform). `2.0` = twice the platform bandwidth, `0.5` = half.
    #[serde(default)]
    pub(crate) channel_bandwidths: Vec<f64>,
    /// Interned strings referenced by the ops' [`OpName`]s.
    pub(crate) names: NameTable,
    /// Lazily-rendered display names, one per op (see [`Graph::op_name`]).
    #[serde(skip)]
    pub(crate) rendered: std::sync::OnceLock<Vec<String>>,
    /// Lazily-built name → id index backing [`Graph::find_op`]. Skipped by
    /// serde (and reset by `Default` on deserialize); rebuilt on first use.
    #[serde(skip)]
    pub(crate) name_index: std::sync::OnceLock<std::collections::HashMap<String, OpId>>,
    /// Lazily-built structured-name → id index backing
    /// [`Graph::find_op_structured`].
    #[serde(skip)]
    pub(crate) structured_index: std::sync::OnceLock<std::collections::HashMap<OpName, OpId>>,
}

impl Graph {
    /// Number of ops in the graph.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for this graph.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// Iterates over all op ids in insertion order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId::from_index)
    }

    /// Iterates over `(id, op)` pairs.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &Op)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId::from_index(i), op))
    }

    /// Direct predecessors (dependencies) of `id`.
    pub fn preds(&self, id: OpId) -> &[OpId] {
        let i = id.index();
        &self.pred_edges[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// Direct successors (dependents) of `id`.
    pub fn succs(&self, id: OpId) -> &[OpId] {
        let i = id.index();
        &self.succ_edges[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.pred_edges.len()
    }

    /// Ops with no predecessors.
    pub fn roots(&self) -> impl Iterator<Item = OpId> + '_ {
        self.op_ids().filter(|id| self.preds(*id).is_empty())
    }

    /// Ops with no successors.
    pub fn leaves(&self) -> impl Iterator<Item = OpId> + '_ {
        self.op_ids().filter(|id| self.succs(*id).is_empty())
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The device with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Ids of all worker devices, in id order.
    pub fn workers(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices
            .iter()
            .filter(|d| d.is_worker())
            .map(|d| d.id())
    }

    /// Ids of all parameter-server devices, in id order.
    pub fn parameter_servers(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices
            .iter()
            .filter(|d| d.is_parameter_server())
            .map(|d| d.id())
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// The relative speed factor of `id` (`1.0` = platform reference).
    ///
    /// Uniform graphs store no side table and always answer `1.0`, so the
    /// homogeneous fast path stays branch-predictable and byte-identical.
    pub fn device_speed(&self, id: DeviceId) -> f64 {
        self.device_speeds.get(id.index()).copied().unwrap_or(1.0)
    }

    /// The relative bandwidth factor of channel `id` (`1.0` = platform
    /// reference bandwidth).
    pub fn channel_bandwidth(&self, id: ChannelId) -> f64 {
        self.channel_bandwidths
            .get(id.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Whether every device and channel runs at the platform reference
    /// rate (no heterogeneity side tables).
    ///
    /// The parallel engine only accepts uniform graphs; heterogeneous
    /// ones fall back to the sequential oracle.
    pub fn is_uniform(&self) -> bool {
        self.device_speeds.is_empty() && self.channel_bandwidths.is_empty()
    }

    /// All parameters.
    pub fn params(&self) -> &[ParamInfo] {
        &self.params
    }

    /// The parameter with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn param(&self, id: ParamId) -> &ParamInfo {
        &self.params[id.index()]
    }

    /// The resource an op executes on: communication ops run on their
    /// channel, every other op on its device's compute unit.
    pub fn resource(&self, id: OpId) -> Resource {
        let op = self.op(id);
        match op.kind().channel() {
            Some(ch) => Resource::Channel(ch),
            None => Resource::Compute(op.device()),
        }
    }

    /// All distinct resources referenced by the graph, sorted.
    pub fn resources(&self) -> Vec<Resource> {
        let mut out: Vec<Resource> = self.op_ids().map(|id| self.resource(id)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ids of ops placed on `device`, in id order.
    pub fn ops_on(&self, device: DeviceId) -> impl Iterator<Item = OpId> + '_ {
        self.ops()
            .filter(move |(_, op)| op.device() == device)
            .map(|(id, _)| id)
    }

    /// Ids of `recv` ops placed on `device`, in id order.
    ///
    /// On a worker these are the parameter transfers that TicTac schedules
    /// (they are roots of the worker partition).
    pub fn recv_ops_on(&self, device: DeviceId) -> Vec<OpId> {
        self.ops_on(device)
            .filter(|id| self.op(*id).is_recv())
            .collect()
    }

    /// Ids of all `recv` ops in the graph.
    pub fn recv_ops(&self) -> Vec<OpId> {
        self.ops()
            .filter(|(_, op)| op.is_recv())
            .map(|(id, _)| id)
            .collect()
    }

    /// The interned-string table behind the ops' [`OpName`]s.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Rendered display names for every op, in id order.
    ///
    /// Built lazily on first use: deployment stores only compact
    /// [`OpName`]s, so graphs that are simulated or scheduled but never
    /// printed pay nothing for their names.
    pub fn rendered_names(&self) -> &[String] {
        self.rendered.get_or_init(|| {
            self.ops
                .iter()
                .map(|op| op.name.render(&self.names))
                .collect()
        })
    }

    /// The rendered display name of an op (e.g. `"ps0/send/fc/weights/w1"`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn op_name(&self, id: OpId) -> &str {
        &self.rendered_names()[id.index()]
    }

    /// Looks up an op by rendered name.
    ///
    /// O(1) after the first call: the index over all op names is built
    /// lazily and cached. Duplicate names resolve to the earliest op, like
    /// the linear scan this replaced.
    pub fn find_op(&self, name: &str) -> Option<OpId> {
        self.name_index
            .get_or_init(|| {
                let mut index = std::collections::HashMap::with_capacity(self.ops.len());
                for (i, rendered) in self.rendered_names().iter().enumerate() {
                    index.entry(rendered.clone()).or_insert(OpId::from_index(i));
                }
                index
            })
            .get(name)
            .copied()
    }

    /// Looks up an op by structured name, without rendering any strings.
    ///
    /// Interned components ([`NameId`](crate::NameId)s) must come from this
    /// graph's own [`NameTable`] (see [`Graph::names`]). Duplicate names
    /// resolve to the earliest op, like [`Graph::find_op`].
    pub fn find_op_structured(&self, name: OpName) -> Option<OpId> {
        self.structured_index
            .get_or_init(|| {
                let mut index = std::collections::HashMap::with_capacity(self.ops.len());
                for (id, op) in self.ops() {
                    index.entry(op.name).or_insert(id);
                }
                index
            })
            .get(&name)
            .copied()
    }

    /// The channel connecting `worker` and `ps`, if one exists.
    pub fn channel_between(&self, worker: DeviceId, ps: DeviceId) -> Option<ChannelId> {
        self.channels
            .iter()
            .find(|c| c.worker() == worker && c.ps() == ps)
            .map(|c| c.id())
    }

    /// Total bytes across all parameters.
    pub fn total_param_bytes(&self) -> u64 {
        self.params.iter().map(|p| p.bytes).sum()
    }

    /// Counts ops by a predicate — convenience for statistics.
    pub fn count_ops(&self, mut pred: impl FnMut(&Op) -> bool) -> usize {
        self.ops.iter().filter(|op| pred(op)).count()
    }

    /// Verifies structural invariants (debug aid; builder-validated graphs
    /// always pass).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    ///
    /// [`GraphError`]: crate::GraphError
    pub fn check(&self) -> Result<(), crate::GraphError> {
        use crate::GraphError;
        for (id, op) in self.ops() {
            if op.device().index() >= self.devices.len() {
                return Err(GraphError::UnknownDevice(op.device()));
            }
            if let Some(ch) = op.kind().channel() {
                if ch.index() >= self.channels.len() {
                    return Err(GraphError::UnknownChannel(ch));
                }
                if !self.channel(ch).connects(op.device()) {
                    return Err(GraphError::ChannelMismatch {
                        op: id,
                        device: op.device(),
                        channel: ch,
                    });
                }
            }
            if let Some(p) = op.kind().param() {
                if p.index() >= self.params.len() {
                    return Err(GraphError::UnknownParam(p));
                }
            }
            for &pr in self.preds(id) {
                if pr.index() >= self.ops.len() {
                    return Err(GraphError::UnknownOp(pr));
                }
            }
        }
        crate::topo::topo_order(self).map(|_| ())
    }
}

/// Summary statistics of a graph, used by reporting code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphCounts {
    /// Total op count.
    pub ops: usize,
    /// Number of `recv` ops.
    pub recvs: usize,
    /// Number of `send` ops.
    pub sends: usize,
    /// Number of compute ops.
    pub computes: usize,
    /// Number of dependency edges.
    pub edges: usize,
}

impl Graph {
    /// Computes summary counts.
    pub fn counts(&self) -> GraphCounts {
        GraphCounts {
            ops: self.len(),
            recvs: self.count_ops(|o| o.kind().is_recv()),
            sends: self.count_ops(|o| o.kind().is_send()),
            computes: self.count_ops(|o| matches!(o.kind(), OpKind::Compute)),
            edges: self.edge_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cost, GraphBuilder, OpKind, Resource};

    #[test]
    fn figure_1a_graph_shape() {
        // The toy graph from Figure 1a of the paper.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("worker/0");
        let ps = b.add_parameter_server("ps/0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("w1", 100);
        let p2 = b.add_param("w2", 100);
        let r1 = b.add_op("recv1", w, OpKind::recv(p1, ch), Cost::bytes(100), &[]);
        let r2 = b.add_op("recv2", w, OpKind::recv(p2, ch), Cost::bytes(100), &[]);
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(10.0), &[r1]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(10.0), &[op1, r2]);
        let g = b.build().unwrap();

        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![r1, r2]);
        assert_eq!(g.leaves().collect::<Vec<_>>(), vec![op2]);
        assert_eq!(g.preds(op2), &[r2, op1]); // builder sorts deps by id
        assert_eq!(g.succs(r1), &[op1]);
        assert_eq!(g.recv_ops_on(w), vec![r1, r2]);
        assert_eq!(g.resource(r1), Resource::Channel(ch));
        assert_eq!(g.resource(op1), Resource::Compute(w));
        assert_eq!(g.total_param_bytes(), 200);
        assert!(g.check().is_ok());
    }

    #[test]
    fn resources_are_deduped_and_sorted() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("worker/0");
        let ps = b.add_parameter_server("ps/0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("w", 8);
        b.add_op("r", w, OpKind::recv(p, ch), Cost::bytes(8), &[]);
        b.add_op("c1", w, OpKind::Compute, Cost::flops(1.0), &[]);
        b.add_op("c2", w, OpKind::Compute, Cost::flops(1.0), &[]);
        let g = b.build().unwrap();
        let res = g.resources();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn find_op_by_name() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("worker/0");
        let id = b.add_op("unique", w, OpKind::Compute, Cost::ZERO, &[]);
        let g = b.build().unwrap();
        assert_eq!(g.find_op("unique"), Some(id));
        assert_eq!(g.find_op("missing"), None);
    }

    #[test]
    fn counts_classify_kinds() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("worker/0");
        let ps = b.add_parameter_server("ps/0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("w", 8);
        let r = b.add_op("r", w, OpKind::recv(p, ch), Cost::bytes(8), &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::flops(1.0), &[r]);
        b.add_op("s", w, OpKind::send(p, ch), Cost::bytes(8), &[c]);
        let g = b.build().unwrap();
        let counts = g.counts();
        assert_eq!(counts.ops, 3);
        assert_eq!(counts.recvs, 1);
        assert_eq!(counts.sends, 1);
        assert_eq!(counts.computes, 1);
        assert_eq!(counts.edges, 2);
    }
}
