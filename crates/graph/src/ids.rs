//! Index newtypes used throughout the workspace.
//!
//! All graph entities live in arenas and are referred to by dense indices.
//! Newtypes keep the different index spaces from being mixed up
//! (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) $repr);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(index as $repr)
            }

            /// Returns the raw index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of an [`Op`](crate::Op) inside a [`Graph`](crate::Graph).
    OpId,
    u32,
    "op"
);
id_type!(
    /// Identifier of a model parameter (a trainable tensor).
    ParamId,
    u32,
    "p"
);
id_type!(
    /// Identifier of a device (worker or parameter server).
    DeviceId,
    u16,
    "dev"
);
id_type!(
    /// Identifier of a communication channel (one per worker–PS pair).
    ChannelId,
    u32,
    "ch"
);
id_type!(
    /// Identifier of an op inside a [`ModelGraph`](crate::ModelGraph).
    ModelOpId,
    u32,
    "mop"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_index() {
        let id = OpId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(OpId::from_index(3).to_string(), "op3");
        assert_eq!(ParamId::from_index(0).to_string(), "p0");
        assert_eq!(DeviceId::from_index(7).to_string(), "dev7");
        assert_eq!(ChannelId::from_index(1).to_string(), "ch1");
        assert_eq!(ModelOpId::from_index(9).to_string(), "mop9");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(OpId::from_index(1) < OpId::from_index(2));
        assert_eq!(OpId::from_index(5), OpId::from_index(5));
    }
}
