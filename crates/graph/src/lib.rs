//! Computational DAG substrate for the TicTac reproduction.
//!
//! The TicTac paper ([Hashemi et al., MLSys 2019]) schedules network
//! transfers in systems that represent computation as a directed acyclic
//! graph of operations, partitioned across devices (workers and parameter
//! servers) and resources (compute units and communication channels).
//!
//! This crate provides that representation, independent of any particular
//! deep-learning framework:
//!
//! * [`Graph`] — an arena of [`Op`]s with dependency edges, device tags and
//!   per-parameter metadata. This is the *partitioned graph* of the paper:
//!   every op carries the [`Resource`] it executes on.
//! * [`GraphBuilder`] — incremental, validated construction.
//! * [`ModelGraph`] — a device-agnostic description of a single replica of a
//!   DNN (layers, parameters, gradients). Model-zoo generators produce these;
//!   the `tictac-cluster` crate lowers them onto a [`Graph`] spanning a
//!   Model-Replica + Parameter-Server deployment.
//! * [`topo`] — topological utilities (Kahn ordering, reachability, critical
//!   path) used by the schedulers and the simulator.
//!
//! # Example
//!
//! Build the toy DAG of Figure 1a of the paper (two parameter receives
//! feeding two chained compute ops) and inspect it:
//!
//! ```
//! use tictac_graph::{Cost, GraphBuilder, OpKind};
//!
//! let mut b = GraphBuilder::new();
//! let worker = b.add_worker("worker/0");
//! let ps = b.add_parameter_server("ps/0");
//! let ch = b.add_channel(worker, ps);
//! let p1 = b.add_param("w1", 4 << 20);
//! let p2 = b.add_param("w2", 4 << 20);
//! let r1 = b.add_op("recv1", worker, OpKind::recv(p1, ch), Cost::bytes(4 << 20), &[]);
//! let r2 = b.add_op("recv2", worker, OpKind::recv(p2, ch), Cost::bytes(4 << 20), &[]);
//! let op1 = b.add_op("op1", worker, OpKind::Compute, Cost::flops(1e9), &[r1]);
//! let _op2 = b.add_op("op2", worker, OpKind::Compute, Cost::flops(1e9), &[op1, r2]);
//! let g = b.build()?;
//! assert_eq!(g.len(), 4);
//! assert_eq!(g.roots().count(), 2);
//! # Ok::<(), tictac_graph::GraphError>(())
//! ```
//!
//! [Hashemi et al., MLSys 2019]: https://proceedings.mlsys.org/paper/2019

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod device;
mod dot;
mod error;
mod graph;
mod ids;
mod model;
mod name;
mod op;
pub mod topo;

pub use builder::GraphBuilder;
pub use device::{Channel, Device, DeviceKind, Resource};
pub use dot::{model_to_dot, to_dot};
pub use error::GraphError;
pub use graph::{Graph, ParamInfo};
pub use ids::{ChannelId, DeviceId, ModelOpId, OpId, ParamId};
pub use model::{
    ModelGraph, ModelGraphBuilder, ModelOp, ModelOpKind, ModelStats, ParamSpec, TensorShape,
};
pub use name::{CommRole, NameId, NameTable, OpName, RingStage};
pub use op::{Cost, Op, OpKind};
