//! Device-agnostic model graphs: one replica of a DNN.
//!
//! A [`ModelGraph`] describes what a single worker computes — parameters,
//! forward/backward ops, which ops read which parameters and which produce
//! which gradients — without committing to a deployment. The
//! `tictac-cluster` crate *lowers* a model graph onto a partitioned
//! [`Graph`](crate::Graph) spanning workers and parameter servers.

use crate::ids::{ModelOpId, ParamId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a tensor, e.g. `[3, 3, 64, 128]` for a convolution kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape(Vec<usize>);

impl TensorShape {
    /// Creates a shape from dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self(dims.into())
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn elems(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for TensorShape {
    fn from(dims: Vec<usize>) -> Self {
        Self(dims)
    }
}

impl<const N: usize> From<[usize; N]> for TensorShape {
    fn from(dims: [usize; N]) -> Self {
        Self(dims.to_vec())
    }
}

/// A trainable parameter tensor of the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    name: String,
    shape: TensorShape,
    dtype_bytes: u8,
}

impl ParamSpec {
    /// Creates a parameter with 4-byte (f32) elements.
    pub fn f32(name: impl Into<String>, shape: impl Into<TensorShape>) -> Self {
        Self {
            name: name.into(),
            shape: shape.into(),
            dtype_bytes: 4,
        }
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Number of elements.
    pub fn elems(&self) -> u64 {
        self.shape.elems()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.elems() * self.dtype_bytes as u64
    }
}

/// The role of an op within the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelOpKind {
    /// Forward-pass computation.
    Forward,
    /// Backward-pass computation (gradients w.r.t. activations/parameters).
    Backward,
    /// Loss computation (boundary between forward and backward).
    Loss,
}

/// One op of a model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOp {
    pub(crate) name: String,
    pub(crate) kind: ModelOpKind,
    pub(crate) flops: f64,
    pub(crate) preds: Vec<ModelOpId>,
    pub(crate) reads_params: Vec<ParamId>,
    pub(crate) produces_grads: Vec<ParamId>,
}

impl ModelOp {
    /// The op's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The op's role.
    pub fn kind(&self) -> ModelOpKind {
        self.kind
    }

    /// Floating-point work performed.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Dependencies within the model graph.
    pub fn preds(&self) -> &[ModelOpId] {
        &self.preds
    }

    /// Parameters this op reads (these become `recv` dependencies when the
    /// model is deployed).
    pub fn reads_params(&self) -> &[ParamId] {
        &self.reads_params
    }

    /// Parameter gradients this op produces (these become `send`s to the
    /// parameter servers in training).
    pub fn produces_grads(&self) -> &[ParamId] {
        &self.produces_grads
    }
}

/// Summary statistics of a model graph (compare against Table 1 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of parameters (tensors, not scalars).
    pub params: usize,
    /// Total parameter size in bytes.
    pub param_bytes: u64,
    /// Number of ops.
    pub ops: usize,
    /// Total forward+backward floating-point work per sample batch.
    pub flops: f64,
}

impl ModelStats {
    /// Total parameter size in MiB (as reported in Table 1).
    pub fn param_mib(&self) -> f64 {
        self.param_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// A validated, device-agnostic model graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    batch_size: usize,
    params: Vec<ParamSpec>,
    ops: Vec<ModelOp>,
}

impl ModelGraph {
    /// The model's name (e.g. `"inception_v3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batch size the op costs were computed for.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// All parameters.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// The parameter with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn param(&self, id: ParamId) -> &ParamSpec {
        &self.params[id.index()]
    }

    /// All ops in insertion (topological) order.
    pub fn ops(&self) -> &[ModelOp] {
        &self.ops
    }

    /// The op with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn op(&self, id: ModelOpId) -> &ModelOp {
        &self.ops[id.index()]
    }

    /// Iterates over `(id, op)` pairs.
    pub fn ops_enumerated(&self) -> impl Iterator<Item = (ModelOpId, &ModelOp)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (ModelOpId::from_index(i), op))
    }

    /// Whether any op is a backward op (i.e. this is a training graph).
    pub fn is_training(&self) -> bool {
        self.ops
            .iter()
            .any(|op| op.kind == ModelOpKind::Backward || op.kind == ModelOpKind::Loss)
    }

    /// Summary statistics.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            params: self.params.len(),
            param_bytes: self.params.iter().map(ParamSpec::bytes).sum(),
            ops: self.ops.len(),
            flops: self.ops.iter().map(|o| o.flops).sum(),
        }
    }

    /// A stable structural fingerprint of the model (FNV-1a over every
    /// field that affects deployment).
    ///
    /// Two models with the same fingerprint lower to identical deployed
    /// graphs for any given cluster spec; `tictac-core`'s `DeployCache`
    /// uses this as its model key. Stable within a process run — not a
    /// cross-version serialization format.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.batch_size as u64).to_le_bytes());
        eat(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            eat(p.name.as_bytes());
            eat(&[0, p.dtype_bytes]);
            for &d in p.shape.dims() {
                eat(&(d as u64).to_le_bytes());
            }
        }
        eat(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            eat(op.name.as_bytes());
            eat(&[0, op.kind as u8]);
            eat(&op.flops.to_bits().to_le_bytes());
            for d in &op.preds {
                eat(&(d.index() as u64).to_le_bytes());
            }
            for p in &op.reads_params {
                eat(&(p.index() as u64).to_le_bytes());
            }
            eat(&[1]);
            for p in &op.produces_grads {
                eat(&(p.index() as u64).to_le_bytes());
            }
        }
        h
    }

    /// Returns a copy with every op's flops scaled by `factor`.
    ///
    /// Used for the batch-size scaling experiment (Fig. 10): compute cost is
    /// roughly linear in batch size while parameter transfer size is
    /// unchanged.
    pub fn scale_compute(&self, factor: f64) -> ModelGraph {
        assert!(factor.is_finite() && factor > 0.0, "invalid factor");
        let mut out = self.clone();
        for op in &mut out.ops {
            op.flops *= factor;
        }
        out.batch_size = ((self.batch_size as f64) * factor).round().max(1.0) as usize;
        out
    }
}

/// Builder for [`ModelGraph`].
///
/// # Example
///
/// ```
/// use tictac_graph::{ModelGraphBuilder, ModelOpKind};
///
/// let mut b = ModelGraphBuilder::new("tiny", 32);
/// let w = b.add_param("fc/weights", [128, 10]);
/// let x = b.add_op("fc", ModelOpKind::Forward, 1.0e6, &[], &[w], &[]);
/// b.add_op("loss", ModelOpKind::Loss, 1.0e3, &[x], &[], &[]);
/// let m = b.build();
/// assert_eq!(m.params().len(), 1);
/// assert_eq!(m.ops().len(), 2);
/// ```
#[derive(Debug)]
pub struct ModelGraphBuilder {
    name: String,
    batch_size: usize,
    params: Vec<ParamSpec>,
    ops: Vec<ModelOp>,
}

impl ModelGraphBuilder {
    /// Creates a builder for a model with the given name and batch size.
    pub fn new(name: impl Into<String>, batch_size: usize) -> Self {
        Self {
            name: name.into(),
            batch_size,
            params: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Adds an f32 parameter and returns its id.
    pub fn add_param(&mut self, name: impl Into<String>, shape: impl Into<TensorShape>) -> ParamId {
        let id = ParamId::from_index(self.params.len());
        self.params.push(ParamSpec::f32(name, shape));
        id
    }

    /// Adds an op.
    ///
    /// # Panics
    ///
    /// Panics if a dependency or parameter id is out of bounds (ids must
    /// come from this builder).
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        kind: ModelOpKind,
        flops: f64,
        preds: &[ModelOpId],
        reads_params: &[ParamId],
        produces_grads: &[ParamId],
    ) -> ModelOpId {
        for p in preds {
            assert!(p.index() < self.ops.len(), "unknown model op {p}");
        }
        for p in reads_params.iter().chain(produces_grads) {
            assert!(p.index() < self.params.len(), "unknown param {p}");
        }
        let id = ModelOpId::from_index(self.ops.len());
        self.ops.push(ModelOp {
            name: name.into(),
            kind,
            flops,
            preds: preds.to_vec(),
            reads_params: reads_params.to_vec(),
            produces_grads: produces_grads.to_vec(),
        });
        id
    }

    /// Number of ops added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Inspects an op already added to the builder (used by layer-level
    /// builders to synthesize backward passes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn peek_op(&self, id: ModelOpId) -> &ModelOp {
        &self.ops[id.index()]
    }

    /// Finalizes the model graph.
    ///
    /// Because `add_op` only accepts already-created dependencies, insertion
    /// order is a topological order and the graph is acyclic by
    /// construction.
    pub fn build(self) -> ModelGraph {
        ModelGraph {
            name: self.name,
            batch_size: self.batch_size,
            params: self.params,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_shape_elems() {
        assert_eq!(TensorShape::new(vec![3, 3, 64, 128]).elems(), 73_728);
        assert_eq!(TensorShape::new(vec![]).elems(), 1);
        assert_eq!(TensorShape::new(vec![10]).to_string(), "[10]");
        assert_eq!(TensorShape::new(vec![2, 3]).to_string(), "[2x3]");
    }

    #[test]
    fn param_spec_bytes_are_f32() {
        let p = ParamSpec::f32("w", vec![1000]);
        assert_eq!(p.bytes(), 4000);
        assert_eq!(p.elems(), 1000);
        assert_eq!(p.name(), "w");
    }

    fn tiny_training_model() -> ModelGraph {
        let mut b = ModelGraphBuilder::new("tiny", 8);
        let w1 = b.add_param("l1/w", vec![16, 32]);
        let w2 = b.add_param("l2/w", vec![32, 10]);
        let f1 = b.add_op("l1", ModelOpKind::Forward, 100.0, &[], &[w1], &[]);
        let f2 = b.add_op("l2", ModelOpKind::Forward, 200.0, &[f1], &[w2], &[]);
        let loss = b.add_op("loss", ModelOpKind::Loss, 10.0, &[f2], &[], &[]);
        let b2 = b.add_op(
            "l2_grad",
            ModelOpKind::Backward,
            400.0,
            &[loss],
            &[w2],
            &[w2],
        );
        b.add_op("l1_grad", ModelOpKind::Backward, 200.0, &[b2], &[w1], &[w1]);
        b.build()
    }

    #[test]
    fn stats_aggregate_params_and_flops() {
        let m = tiny_training_model();
        let s = m.stats();
        assert_eq!(s.params, 2);
        assert_eq!(s.param_bytes, (16 * 32 + 32 * 10) * 4);
        assert_eq!(s.ops, 5);
        assert_eq!(s.flops, 910.0);
        assert!(m.is_training());
    }

    #[test]
    fn scale_compute_scales_flops_and_batch() {
        let m = tiny_training_model();
        let doubled = m.scale_compute(2.0);
        assert_eq!(doubled.stats().flops, 1820.0);
        assert_eq!(doubled.batch_size(), 16);
        // Parameter sizes unchanged.
        assert_eq!(doubled.stats().param_bytes, m.stats().param_bytes);
    }

    #[test]
    #[should_panic(expected = "unknown model op")]
    fn add_op_rejects_forward_references() {
        let mut b = ModelGraphBuilder::new("bad", 1);
        let bogus = ModelOpId::from_index(7);
        b.add_op("x", ModelOpKind::Forward, 1.0, &[bogus], &[], &[]);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let m = tiny_training_model();
        assert_eq!(m.fingerprint(), tiny_training_model().fingerprint());
        // Any deployment-relevant change moves the fingerprint.
        assert_ne!(m.fingerprint(), m.scale_compute(2.0).fingerprint());
        let mut renamed = ModelGraphBuilder::new("tiny2", 8);
        let w = renamed.add_param("l1/w", vec![16, 32]);
        renamed.add_op("l1", ModelOpKind::Forward, 100.0, &[], &[w], &[]);
        assert_ne!(m.fingerprint(), renamed.build().fingerprint());
    }

    #[test]
    fn inference_model_is_not_training() {
        let mut b = ModelGraphBuilder::new("inf", 1);
        let w = b.add_param("w", vec![4]);
        b.add_op("f", ModelOpKind::Forward, 1.0, &[], &[w], &[]);
        assert!(!b.build().is_training());
    }
}
