//! Compact structured op names.
//!
//! Deployment used to mint one heap `String` per op
//! (`format!("ps{shard}/send/{param}/w{w}")`, …) — on inception/resnet-class
//! models that is tens of thousands of allocations on the deploy hot path,
//! and `BENCH_results.json` showed deployment as the slowest phase after the
//! scheduler fast paths landed. An [`OpName`] is a 16-byte `Copy` value
//! instead: a role tag plus small integer fields, with model-level strings
//! (parameter and layer names) deduplicated through a [`NameTable`]
//! interner. Rendering to the legacy string happens lazily — and
//! **byte-identically**, so the golden trace fingerprints and the pinned
//! Perfetto snapshot do not move — only when something actually asks for a
//! display name ([`Graph::op_name`](crate::Graph::op_name)).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Index of an interned string in a [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NameId(u32);

impl NameId {
    /// The raw table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating string interner.
///
/// Every distinct string is stored once; [`OpName`]s refer to it by
/// [`NameId`]. Interning the same string twice returns the same id, which
/// is what lets [`GraphBuilder`](crate::GraphBuilder) keep detecting
/// duplicate raw op names by comparing `OpName`s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NameTable {
    strings: Vec<String>,
    index: HashMap<String, NameId>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (existing id if already present).
    pub fn intern(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = NameId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// The string behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn get(&self, id: NameId) -> &str {
        &self.strings[id.index()]
    }

    /// Looks up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<NameId> {
        self.index.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Phase of a ring all-reduce step (`tictac-cluster`'s collective
/// lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingStage {
    /// Reduce-scatter send.
    RsSend,
    /// Reduce-scatter receive.
    RsRecv,
    /// Reduce-scatter local fold.
    RsReduce,
    /// All-gather send.
    AgSend,
    /// All-gather receive.
    AgRecv,
}

/// Which leg of the parameter round-trip a partitioned or fused
/// communication op belongs to.
///
/// The partition/fusion lowering passes reuse the same role set as the
/// plain MR+PS emission; [`OpName::Chunk`] and [`OpName::Fused`] pair a
/// role with chunk/group coordinates instead of minting one enum variant
/// per (pass × role) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommRole {
    /// PS-side parameter read.
    Read,
    /// PS → worker parameter send.
    Send,
    /// Worker-side parameter receive.
    Recv,
    /// Worker → PS gradient send.
    SendGrad,
    /// PS-side gradient receive.
    RecvGrad,
    /// PS-side gradient aggregation.
    Aggregate,
    /// PS-side parameter update.
    Update,
}

/// A compact structured op name.
///
/// The `Ps*`/`Worker*` variants cover every op the MR+PS lowering emits
/// (paper §2.2); [`OpName::Chunk`] and [`OpName::Fused`] cover the
/// partition/fusion communication passes; [`OpName::Ring`] covers the
/// all-reduce lowering; and [`OpName::Raw`] holds arbitrary interned
/// strings for hand-built graphs. [`OpName::render`] reproduces the
/// historical `format!` strings byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpName {
    /// An arbitrary interned name (hand-built graphs, tests).
    Raw(NameId),
    /// `ps{shard}/read/{param}`
    PsRead {
        /// PS shard index.
        shard: u32,
        /// Interned parameter name.
        param: NameId,
    },
    /// `ps{shard}/send/{param}/w{worker}`
    PsSend {
        /// PS shard index.
        shard: u32,
        /// Interned parameter name.
        param: NameId,
        /// Destination worker index.
        worker: u32,
    },
    /// `w{worker}/recv/{param}`
    WorkerRecv {
        /// Worker index.
        worker: u32,
        /// Interned parameter name.
        param: NameId,
    },
    /// `w{worker}/{op}` — a replica compute op.
    WorkerOp {
        /// Worker index.
        worker: u32,
        /// Interned model-op name.
        op: NameId,
    },
    /// `w{worker}/send_grad/{param}`
    WorkerSendGrad {
        /// Worker index.
        worker: u32,
        /// Interned parameter name.
        param: NameId,
    },
    /// `ps{shard}/recv_grad/{param}/w{worker}`
    PsRecvGrad {
        /// PS shard index.
        shard: u32,
        /// Interned parameter name.
        param: NameId,
        /// Source worker index.
        worker: u32,
    },
    /// `ps{shard}/aggregate/{param}`
    PsAggregate {
        /// PS shard index.
        shard: u32,
        /// Interned parameter name.
        param: NameId,
    },
    /// `ps{shard}/update/{param}`
    PsUpdate {
        /// PS shard index.
        shard: u32,
        /// Interned parameter name.
        param: NameId,
    },
    /// One chunk of a partitioned parameter: renders exactly like the
    /// matching plain variant with `{param}.part{chunk}` as the parameter
    /// name (e.g. `ps{shard}/send/{param}.part{chunk}/w{worker}`).
    Chunk {
        /// Which leg of the round-trip this op is.
        role: CommRole,
        /// PS shard index (unused for the worker-side roles' rendering).
        shard: u16,
        /// Worker index (unused for the PS-local roles' rendering).
        worker: u16,
        /// Interned *original* parameter name.
        param: NameId,
        /// Chunk index within the partitioned parameter.
        chunk: u16,
    },
    /// A fused transfer covering several small parameters: renders like
    /// the matching plain variant with `fused{group}` as the parameter
    /// name (e.g. `w{worker}/recv/fused{group}`). Only the four transfer
    /// roles (`Send`, `Recv`, `SendGrad`, `RecvGrad`) are emitted.
    Fused {
        /// Which leg of the round-trip this op is.
        role: CommRole,
        /// PS shard index.
        shard: u16,
        /// Worker index.
        worker: u16,
        /// Fusion group index (unique per shard).
        group: u32,
    },
    /// `w{worker}/b{bucket}/<rs|ag>{step}/<send|recv|reduce>/chunk{chunk}`
    Ring {
        /// Worker index (destination worker for recv/reduce stages).
        worker: u16,
        /// Gradient bucket index.
        bucket: u16,
        /// Ring step within the phase.
        step: u16,
        /// Sub-chunk index.
        chunk: u16,
        /// Which phase/role of the ring step this op is.
        stage: RingStage,
    },
}

impl OpName {
    /// Renders the legacy string form into `out` (byte-identical to the
    /// historical `format!` calls).
    pub fn render_into(&self, table: &NameTable, out: &mut String) {
        match *self {
            OpName::Raw(id) => out.push_str(table.get(id)),
            OpName::PsRead { shard, param } => {
                let _ = write!(out, "ps{shard}/read/{}", table.get(param));
            }
            OpName::PsSend {
                shard,
                param,
                worker,
            } => {
                let _ = write!(out, "ps{shard}/send/{}/w{worker}", table.get(param));
            }
            OpName::WorkerRecv { worker, param } => {
                let _ = write!(out, "w{worker}/recv/{}", table.get(param));
            }
            OpName::WorkerOp { worker, op } => {
                let _ = write!(out, "w{worker}/{}", table.get(op));
            }
            OpName::WorkerSendGrad { worker, param } => {
                let _ = write!(out, "w{worker}/send_grad/{}", table.get(param));
            }
            OpName::PsRecvGrad {
                shard,
                param,
                worker,
            } => {
                let _ = write!(out, "ps{shard}/recv_grad/{}/w{worker}", table.get(param));
            }
            OpName::PsAggregate { shard, param } => {
                let _ = write!(out, "ps{shard}/aggregate/{}", table.get(param));
            }
            OpName::PsUpdate { shard, param } => {
                let _ = write!(out, "ps{shard}/update/{}", table.get(param));
            }
            OpName::Chunk {
                role,
                shard,
                worker,
                param,
                chunk,
            } => {
                let p = table.get(param);
                match role {
                    CommRole::Read => {
                        let _ = write!(out, "ps{shard}/read/{p}.part{chunk}");
                    }
                    CommRole::Send => {
                        let _ = write!(out, "ps{shard}/send/{p}.part{chunk}/w{worker}");
                    }
                    CommRole::Recv => {
                        let _ = write!(out, "w{worker}/recv/{p}.part{chunk}");
                    }
                    CommRole::SendGrad => {
                        let _ = write!(out, "w{worker}/send_grad/{p}.part{chunk}");
                    }
                    CommRole::RecvGrad => {
                        let _ = write!(out, "ps{shard}/recv_grad/{p}.part{chunk}/w{worker}");
                    }
                    CommRole::Aggregate => {
                        let _ = write!(out, "ps{shard}/aggregate/{p}.part{chunk}");
                    }
                    CommRole::Update => {
                        let _ = write!(out, "ps{shard}/update/{p}.part{chunk}");
                    }
                }
            }
            OpName::Fused {
                role,
                shard,
                worker,
                group,
            } => match role {
                CommRole::Send => {
                    let _ = write!(out, "ps{shard}/send/fused{group}/w{worker}");
                }
                CommRole::Recv => {
                    let _ = write!(out, "w{worker}/recv/fused{group}");
                }
                CommRole::SendGrad => {
                    let _ = write!(out, "w{worker}/send_grad/fused{group}");
                }
                CommRole::RecvGrad => {
                    let _ = write!(out, "ps{shard}/recv_grad/fused{group}/w{worker}");
                }
                CommRole::Read => {
                    let _ = write!(out, "ps{shard}/read/fused{group}");
                }
                CommRole::Aggregate => {
                    let _ = write!(out, "ps{shard}/aggregate/fused{group}");
                }
                CommRole::Update => {
                    let _ = write!(out, "ps{shard}/update/fused{group}");
                }
            },
            OpName::Ring {
                worker,
                bucket,
                step,
                chunk,
                stage,
            } => {
                let (phase, role) = match stage {
                    RingStage::RsSend => ("rs", "send"),
                    RingStage::RsRecv => ("rs", "recv"),
                    RingStage::RsReduce => ("rs", "reduce"),
                    RingStage::AgSend => ("ag", "send"),
                    RingStage::AgRecv => ("ag", "recv"),
                };
                let _ = write!(out, "w{worker}/b{bucket}/{phase}{step}/{role}/chunk{chunk}");
            }
        }
    }

    /// Renders the legacy string form.
    pub fn render(&self, table: &NameTable) -> String {
        let mut out = String::new();
        self.render_into(table, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups_and_round_trips() {
        let mut t = NameTable::new();
        let a = t.intern("conv1/weights");
        let b = t.intern("conv1/bias");
        let a2 = t.intern("conv1/weights");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.get(a), "conv1/weights");
        assert_eq!(t.lookup("conv1/bias"), Some(b));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn renders_match_the_legacy_format_strings() {
        let mut t = NameTable::new();
        let p = t.intern("fc/weights");
        let o = t.intern("conv2d_1a");
        let cases = [
            (OpName::Raw(p), "fc/weights".to_string()),
            (
                OpName::PsRead { shard: 2, param: p },
                format!("ps{}/read/{}", 2, "fc/weights"),
            ),
            (
                OpName::PsSend {
                    shard: 0,
                    param: p,
                    worker: 3,
                },
                format!("ps{}/send/{}/w{}", 0, "fc/weights", 3),
            ),
            (
                OpName::WorkerRecv {
                    worker: 1,
                    param: p,
                },
                format!("w{}/recv/{}", 1, "fc/weights"),
            ),
            (
                OpName::WorkerOp { worker: 7, op: o },
                format!("w{}/{}", 7, "conv2d_1a"),
            ),
            (
                OpName::WorkerSendGrad {
                    worker: 0,
                    param: p,
                },
                format!("w{}/send_grad/{}", 0, "fc/weights"),
            ),
            (
                OpName::PsRecvGrad {
                    shard: 1,
                    param: p,
                    worker: 2,
                },
                format!("ps{}/recv_grad/{}/w{}", 1, "fc/weights", 2),
            ),
            (
                OpName::PsAggregate { shard: 4, param: p },
                format!("ps{}/aggregate/{}", 4, "fc/weights"),
            ),
            (
                OpName::PsUpdate { shard: 4, param: p },
                format!("ps{}/update/{}", 4, "fc/weights"),
            ),
        ];
        for (name, expected) in cases {
            assert_eq!(name.render(&t), expected);
        }
    }

    #[test]
    fn ring_renders_every_stage() {
        let t = NameTable::new();
        let ring = |stage| OpName::Ring {
            worker: 3,
            bucket: 1,
            step: 2,
            chunk: 0,
            stage,
        };
        assert_eq!(ring(RingStage::RsSend).render(&t), "w3/b1/rs2/send/chunk0");
        assert_eq!(ring(RingStage::RsRecv).render(&t), "w3/b1/rs2/recv/chunk0");
        assert_eq!(
            ring(RingStage::RsReduce).render(&t),
            "w3/b1/rs2/reduce/chunk0"
        );
        assert_eq!(ring(RingStage::AgSend).render(&t), "w3/b1/ag2/send/chunk0");
        assert_eq!(ring(RingStage::AgRecv).render(&t), "w3/b1/ag2/recv/chunk0");
    }

    #[test]
    fn chunk_renders_every_role() {
        let mut t = NameTable::new();
        let p = t.intern("fc6/weights");
        let chunk = |role| OpName::Chunk {
            role,
            shard: 1,
            worker: 2,
            param: p,
            chunk: 3,
        };
        assert_eq!(
            chunk(CommRole::Read).render(&t),
            "ps1/read/fc6/weights.part3"
        );
        assert_eq!(
            chunk(CommRole::Send).render(&t),
            "ps1/send/fc6/weights.part3/w2"
        );
        assert_eq!(
            chunk(CommRole::Recv).render(&t),
            "w2/recv/fc6/weights.part3"
        );
        assert_eq!(
            chunk(CommRole::SendGrad).render(&t),
            "w2/send_grad/fc6/weights.part3"
        );
        assert_eq!(
            chunk(CommRole::RecvGrad).render(&t),
            "ps1/recv_grad/fc6/weights.part3/w2"
        );
        assert_eq!(
            chunk(CommRole::Aggregate).render(&t),
            "ps1/aggregate/fc6/weights.part3"
        );
        assert_eq!(
            chunk(CommRole::Update).render(&t),
            "ps1/update/fc6/weights.part3"
        );
    }

    #[test]
    fn fused_renders_transfer_roles() {
        let t = NameTable::new();
        let fused = |role| OpName::Fused {
            role,
            shard: 0,
            worker: 4,
            group: 7,
        };
        assert_eq!(fused(CommRole::Send).render(&t), "ps0/send/fused7/w4");
        assert_eq!(fused(CommRole::Recv).render(&t), "w4/recv/fused7");
        assert_eq!(fused(CommRole::SendGrad).render(&t), "w4/send_grad/fused7");
        assert_eq!(
            fused(CommRole::RecvGrad).render(&t),
            "ps0/recv_grad/fused7/w4"
        );
    }

    #[test]
    fn op_name_is_small() {
        assert!(std::mem::size_of::<OpName>() <= 16);
    }
}
