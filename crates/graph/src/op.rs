//! Operations: the vertices of the partitioned computational graph.

use crate::ids::{ChannelId, ParamId};
use crate::name::OpName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an op does, and — for communication ops — which parameter and
/// channel it involves.
///
/// The parameter-server DAG of the paper (§2.2) has five ops per parameter:
/// `read`, `send`, `recv`, `aggregate` and `update`; the worker DAG has
/// `recv` roots, compute ops, and `send` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A computation op (convolution, matmul, gradient, …).
    Compute,
    /// The receiving end of a network transfer of `param` over `channel`.
    ///
    /// Recv ops execute on the channel resource: the time attributed to a
    /// recv is the wire time of its transfer.
    Recv {
        /// The parameter (or its gradient) being transferred.
        param: ParamId,
        /// The channel carrying the transfer.
        channel: ChannelId,
    },
    /// The sending end of a network transfer of `param` over `channel`.
    ///
    /// Send ops are lightweight: they hand the transfer to the channel.
    Send {
        /// The parameter (or its gradient) being transferred.
        param: ParamId,
        /// The channel carrying the transfer.
        channel: ChannelId,
    },
    /// PS-side aggregation of gradients for `param` across workers.
    Aggregate {
        /// The parameter whose gradients are aggregated.
        param: ParamId,
    },
    /// PS-side read of the current value of `param`.
    Read {
        /// The parameter being read.
        param: ParamId,
    },
    /// PS-side application of the aggregated update to `param`.
    Update {
        /// The parameter being updated.
        param: ParamId,
    },
}

impl OpKind {
    /// Convenience constructor for [`OpKind::Recv`].
    pub fn recv(param: ParamId, channel: ChannelId) -> Self {
        OpKind::Recv { param, channel }
    }

    /// Convenience constructor for [`OpKind::Send`].
    pub fn send(param: ParamId, channel: ChannelId) -> Self {
        OpKind::Send { param, channel }
    }

    /// Whether this op is a `recv` (a network transfer, in the paper's
    /// terminology the unit being scheduled).
    pub fn is_recv(&self) -> bool {
        matches!(self, OpKind::Recv { .. })
    }

    /// Whether this op is a `send`.
    pub fn is_send(&self) -> bool {
        matches!(self, OpKind::Send { .. })
    }

    /// Whether this op represents communication (send or recv).
    pub fn is_communication(&self) -> bool {
        self.is_recv() || self.is_send()
    }

    /// The parameter this op involves, if any.
    pub fn param(&self) -> Option<ParamId> {
        match *self {
            OpKind::Compute => None,
            OpKind::Recv { param, .. }
            | OpKind::Send { param, .. }
            | OpKind::Aggregate { param }
            | OpKind::Read { param }
            | OpKind::Update { param } => Some(param),
        }
    }

    /// The channel this op uses, if it is a communication op.
    pub fn channel(&self) -> Option<ChannelId> {
        match *self {
            OpKind::Recv { channel, .. } | OpKind::Send { channel, .. } => Some(channel),
            _ => None,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Compute => f.write_str("compute"),
            OpKind::Recv { param, channel } => write!(f, "recv({param}@{channel})"),
            OpKind::Send { param, channel } => write!(f, "send({param}@{channel})"),
            OpKind::Aggregate { param } => write!(f, "aggregate({param})"),
            OpKind::Read { param } => write!(f, "read({param})"),
            OpKind::Update { param } => write!(f, "update({param})"),
        }
    }
}

/// Platform-independent cost annotation of an op, interpreted by a time
/// oracle (`tictac-timing`).
///
/// Compute ops carry floating-point work; communication ops carry a byte
/// count. Either may be zero (e.g. a control-dependency barrier).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cost {
    /// Floating-point operations performed by the op.
    pub flops: f64,
    /// Bytes moved over the network (for communication ops).
    pub bytes: u64,
}

impl Cost {
    /// A zero-cost op (control dependencies, barriers).
    pub const ZERO: Cost = Cost {
        flops: 0.0,
        bytes: 0,
    };

    /// Cost of a compute op performing `flops` floating-point operations.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `flops` is negative or not finite.
    pub fn flops(flops: f64) -> Self {
        debug_assert!(flops.is_finite() && flops >= 0.0, "invalid flops {flops}");
        Cost { flops, bytes: 0 }
    }

    /// Cost of a communication op moving `bytes` bytes.
    pub fn bytes(bytes: u64) -> Self {
        Cost { flops: 0.0, bytes }
    }

    /// Whether the op performs no modelled work.
    pub fn is_zero(&self) -> bool {
        self.flops == 0.0 && self.bytes == 0
    }
}

/// A vertex of the partitioned graph.
///
/// Ops carry a compact [`OpName`] rather than a `String`; the rendered
/// display name lives in the owning graph
/// ([`Graph::op_name`](crate::Graph::op_name)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Op {
    pub(crate) name: OpName,
    pub(crate) kind: OpKind,
    pub(crate) device: crate::ids::DeviceId,
    pub(crate) cost: Cost,
}

impl Op {
    /// The op's structured name. Render it through the owning graph's
    /// [`NameTable`](crate::NameTable), or use
    /// [`Graph::op_name`](crate::Graph::op_name) for the cached string.
    pub fn op_name(&self) -> OpName {
        self.name
    }

    /// The op's kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The device this op is assigned to.
    pub fn device(&self) -> crate::ids::DeviceId {
        self.device
    }

    /// The op's cost annotation.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Whether this op is a `recv`.
    pub fn is_recv(&self) -> bool {
        self.kind.is_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChannelId, ParamId};

    fn p(i: usize) -> ParamId {
        ParamId::from_index(i)
    }
    fn ch(i: usize) -> ChannelId {
        ChannelId::from_index(i)
    }

    #[test]
    fn kind_predicates() {
        assert!(OpKind::recv(p(0), ch(0)).is_recv());
        assert!(OpKind::send(p(0), ch(0)).is_send());
        assert!(OpKind::recv(p(0), ch(0)).is_communication());
        assert!(OpKind::send(p(0), ch(0)).is_communication());
        assert!(!OpKind::Compute.is_communication());
        assert!(!OpKind::Aggregate { param: p(1) }.is_recv());
    }

    #[test]
    fn kind_param_and_channel() {
        assert_eq!(OpKind::Compute.param(), None);
        assert_eq!(OpKind::recv(p(3), ch(1)).param(), Some(p(3)));
        assert_eq!(OpKind::recv(p(3), ch(1)).channel(), Some(ch(1)));
        assert_eq!(OpKind::Update { param: p(2) }.param(), Some(p(2)));
        assert_eq!(OpKind::Update { param: p(2) }.channel(), None);
    }

    #[test]
    fn cost_constructors() {
        let c = Cost::flops(2.0e9);
        assert_eq!(c.flops, 2.0e9);
        assert_eq!(c.bytes, 0);
        let b = Cost::bytes(1024);
        assert_eq!(b.bytes, 1024);
        assert!(Cost::ZERO.is_zero());
        assert!(!b.is_zero());
    }

    #[test]
    fn kind_display() {
        assert_eq!(OpKind::Compute.to_string(), "compute");
        assert_eq!(OpKind::recv(p(1), ch(0)).to_string(), "recv(p1@ch0)");
        assert_eq!(OpKind::Read { param: p(0) }.to_string(), "read(p0)");
    }
}
