//! Topological utilities over [`Graph`]s.
//!
//! These routines are shared by the schedulers (dependency analysis over
//! `recv` ops), the simulator (ready-set maintenance sanity checks) and the
//! evaluation harness (critical-path statistics).

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::OpId;

/// Computes a topological order of the graph (Kahn's algorithm).
///
/// The order is deterministic: among simultaneously-ready ops, the one with
/// the smallest id comes first (a binary heap keyed on id).
///
/// # Errors
///
/// Returns [`GraphError::Cycle`] if the graph has a dependency cycle; the
/// reported op is one with a remaining unresolved predecessor.
pub fn topo_order(graph: &Graph) -> Result<Vec<OpId>, GraphError> {
    let n = graph.len();
    let mut indegree: Vec<usize> = (0..n)
        .map(|i| graph.preds(OpId::from_index(i)).len())
        .collect();
    // Min-heap on op id for determinism.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<OpId>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(OpId::from_index(i)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(id)) = ready.pop() {
        order.push(id);
        for &s in graph.succs(id) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(std::cmp::Reverse(s));
            }
        }
    }
    if order.len() != n {
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .map(OpId::from_index)
            .expect("cycle implies an op with positive indegree");
        return Err(GraphError::Cycle(stuck));
    }
    Ok(order)
}

/// Whether the graph is acyclic.
pub fn is_acyclic(graph: &Graph) -> bool {
    topo_order(graph).is_ok()
}

/// Checks that `order` is a valid topological order of `graph`: a
/// permutation of all ops where every op appears after its predecessors.
pub fn is_topological(graph: &Graph, order: &[OpId]) -> bool {
    if order.len() != graph.len() {
        return false;
    }
    let mut position = vec![usize::MAX; graph.len()];
    for (pos, &id) in order.iter().enumerate() {
        if id.index() >= graph.len() || position[id.index()] != usize::MAX {
            return false;
        }
        position[id.index()] = pos;
    }
    graph.op_ids().all(|id| {
        graph
            .preds(id)
            .iter()
            .all(|p| position[p.index()] < position[id.index()])
    })
}

/// Computes, for every op, the length of the longest path ending at that op,
/// where each op contributes `weight(op)` and edges are free.
///
/// With unit weights this is the op's depth; with time-oracle weights the
/// maximum over all ops is the critical-path length of the DAG.
pub fn longest_path_to(graph: &Graph, mut weight: impl FnMut(OpId) -> f64) -> Vec<f64> {
    let order = topo_order(graph).expect("longest_path_to requires an acyclic graph");
    let mut dist = vec![0.0_f64; graph.len()];
    for &id in &order {
        let incoming = graph
            .preds(id)
            .iter()
            .map(|p| dist[p.index()])
            .fold(0.0_f64, f64::max);
        dist[id.index()] = incoming + weight(id);
    }
    dist
}

/// The critical-path length of the graph under `weight`.
pub fn critical_path(graph: &Graph, weight: impl FnMut(OpId) -> f64) -> f64 {
    longest_path_to(graph, weight)
        .into_iter()
        .fold(0.0, f64::max)
}

/// All ops that `op` transitively depends on (excluding `op` itself), in
/// ascending id order.
pub fn ancestors(graph: &Graph, op: OpId) -> Vec<OpId> {
    reach(graph, op, |g, id| g.preds(id))
}

/// All ops that transitively depend on `op` (excluding `op` itself), in
/// ascending id order.
pub fn descendants(graph: &Graph, op: OpId) -> Vec<OpId> {
    reach(graph, op, |g, id| g.succs(id))
}

fn reach<'g>(
    graph: &'g Graph,
    start: OpId,
    next: impl Fn(&'g Graph, OpId) -> &'g [OpId],
) -> Vec<OpId> {
    let mut seen = vec![false; graph.len()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(id) = stack.pop() {
        for &n in next(graph, id) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                stack.push(n);
            }
        }
    }
    seen[start.index()] = false;
    seen.iter()
        .enumerate()
        .filter(|(_, &s)| s)
        .map(|(i, _)| OpId::from_index(i))
        .collect()
}

/// For each op, the set of *root* recv ops it transitively depends on,
/// encoded as fixed-width bitsets over `recvs`.
///
/// This is the *communication dependency* `op.dep` of the paper (§4.1),
/// computed by propagating bitsets in topological order instead of the
/// paper's depth-first post-fix traversal (same result, better complexity).
///
/// `recvs` gives the recv ops that define bit positions; ops not reachable
/// from any recv get an empty set.
pub fn recv_dependencies(graph: &Graph, recvs: &[OpId]) -> Vec<RecvSet> {
    let words = RecvSet::words_for(recvs.len());
    let mut bit_of = vec![usize::MAX; graph.len()];
    for (bit, r) in recvs.iter().enumerate() {
        bit_of[r.index()] = bit;
    }
    let order = topo_order(graph).expect("recv_dependencies requires an acyclic graph");
    let mut deps: Vec<RecvSet> = (0..graph.len()).map(|_| RecvSet::empty(words)).collect();
    for &id in &order {
        // Union over predecessors, split to appease the borrow checker.
        let mut acc = RecvSet::empty(words);
        for &p in graph.preds(id) {
            acc.union_with(&deps[p.index()]);
        }
        if bit_of[id.index()] != usize::MAX {
            acc.insert(bit_of[id.index()]);
        }
        deps[id.index()] = acc;
    }
    deps
}

/// A fixed-width bitset over recv-op bit positions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecvSet {
    words: Vec<u64>,
}

impl RecvSet {
    /// Number of 64-bit words needed for `bits` bit positions.
    pub fn words_for(bits: usize) -> usize {
        bits.div_ceil(64)
    }

    /// An empty set with capacity for `words * 64` bits.
    pub fn empty(words: usize) -> Self {
        Self {
            words: vec![0; words],
        }
    }

    /// Inserts bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the set's capacity.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &RecvSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits that are also set in `mask`.
    pub fn intersection_count(&self, mask: &RecvSet) -> usize {
        self.words
            .iter()
            .zip(&mask.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over set bit positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Iterates over set bits restricted to `mask`.
    pub fn iter_intersection<'a>(&'a self, mask: &'a RecvSet) -> impl Iterator<Item = usize> + 'a {
        self.words
            .iter()
            .zip(&mask.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| {
                let mut bits = a & b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Removes bit `i` if present.
    pub fn remove(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Overwrites this set with the contents of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn copy_from(&mut self, other: &RecvSet) {
        assert_eq!(self.words.len(), other.words.len(), "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &RecvSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place set difference: removes every bit set in `other`.
    pub fn difference_with(&mut self, other: &RecvSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cost, GraphBuilder, OpKind};

    fn diamond() -> (Graph, [OpId; 4]) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::flops(1.0), &[]);
        let l = b.add_op("l", w, OpKind::Compute, Cost::flops(2.0), &[a]);
        let r = b.add_op("r", w, OpKind::Compute, Cost::flops(3.0), &[a]);
        let z = b.add_op("z", w, OpKind::Compute, Cost::flops(1.0), &[l, r]);
        (b.build().unwrap(), [a, l, r, z])
    }

    #[test]
    fn topo_order_of_diamond() {
        let (g, [a, l, r, z]) = diamond();
        let order = topo_order(&g).unwrap();
        assert_eq!(order, vec![a, l, r, z]);
        assert!(is_topological(&g, &order));
        assert!(is_acyclic(&g));
    }

    #[test]
    fn is_topological_rejects_bad_orders() {
        let (g, [a, l, r, z]) = diamond();
        assert!(!is_topological(&g, &[z, l, r, a]));
        assert!(!is_topological(&g, &[a, l, r])); // not a permutation
        assert!(!is_topological(&g, &[a, a, l, z])); // duplicate
    }

    #[test]
    fn longest_path_uses_weights() {
        let (g, [a, l, r, z]) = diamond();
        let w = |id: OpId| g.op(id).cost().flops;
        let dist = longest_path_to(&g, w);
        assert_eq!(dist[a.index()], 1.0);
        assert_eq!(dist[l.index()], 3.0);
        assert_eq!(dist[r.index()], 4.0);
        assert_eq!(dist[z.index()], 5.0);
        assert_eq!(critical_path(&g, w), 5.0);
    }

    #[test]
    fn recv_dependencies_match_figure_1a() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("w1", 10);
        let p2 = b.add_param("w2", 10);
        let r1 = b.add_op("recv1", w, OpKind::recv(p1, ch), Cost::bytes(10), &[]);
        let r2 = b.add_op("recv2", w, OpKind::recv(p2, ch), Cost::bytes(10), &[]);
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1.0), &[r1]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(1.0), &[op1, r2]);
        let g = b.build().unwrap();

        let recvs = vec![r1, r2];
        let deps = recv_dependencies(&g, &recvs);
        // op1.dep = {recv1}; op2.dep = {recv1, recv2} (transitive).
        assert!(deps[op1.index()].contains(0));
        assert!(!deps[op1.index()].contains(1));
        assert!(deps[op2.index()].contains(0));
        assert!(deps[op2.index()].contains(1));
        // A recv depends (only) on itself.
        assert_eq!(deps[r1.index()].iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn recvset_operations() {
        let mut s = RecvSet::empty(2);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(100);
        assert_eq!(s.count(), 4);
        assert!(s.contains(63) && s.contains(100));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 100]);

        let mut mask = RecvSet::empty(2);
        mask.insert(63);
        mask.insert(100);
        assert_eq!(s.intersection_count(&mask), 2);
        assert_eq!(
            s.iter_intersection(&mask).collect::<Vec<_>>(),
            vec![63, 100]
        );

        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);

        let mut t = RecvSet::empty(2);
        t.insert(5);
        s.union_with(&t);
        assert!(s.contains(5));
    }

    #[test]
    fn recvset_copy_intersect_difference() {
        let mut a = RecvSet::empty(2);
        a.insert(1);
        a.insert(64);
        a.insert(70);
        let mut b = RecvSet::empty(2);
        b.insert(64);
        b.insert(2);

        let mut s = RecvSet::empty(2);
        s.copy_from(&a);
        assert_eq!(s, a);

        s.intersect_with(&b);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64]);

        s.copy_from(&a);
        s.difference_with(&b);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn ancestors_and_descendants_on_a_diamond() {
        let (g, [a, l, r, z]) = diamond();
        assert_eq!(ancestors(&g, a), vec![]);
        assert_eq!(ancestors(&g, z), vec![a, l, r]);
        assert_eq!(ancestors(&g, l), vec![a]);
        assert_eq!(descendants(&g, a), vec![l, r, z]);
        assert_eq!(descendants(&g, z), vec![]);
        assert_eq!(descendants(&g, r), vec![z]);
    }

    #[test]
    fn words_for_boundary() {
        assert_eq!(RecvSet::words_for(0), 0);
        assert_eq!(RecvSet::words_for(1), 1);
        assert_eq!(RecvSet::words_for(64), 1);
        assert_eq!(RecvSet::words_for(65), 2);
    }
}
