//! Empirical cumulative distribution functions (Fig. 12b).

use serde::{Deserialize, Serialize};

/// An empirical CDF over a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the empirical CDF of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Self { sorted }
    }

    /// `F(x)`: fraction of the sample ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (inverse CDF), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        crate::percentile(&self.sorted, q * 100.0)
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is over an empty sample (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `(x, F(x))` points for plotting, one per sample.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Renders the CDF as a fixed-width ASCII curve for terminal reports:
    /// one row per decile.
    pub fn to_ascii(&self, width: usize) -> String {
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for decile in (0..=10).rev() {
            let q = decile as f64 / 10.0;
            let x = self.quantile(q);
            let pos = (((x - lo) / span) * (width.saturating_sub(1)) as f64).round() as usize;
            out.push_str(&format!("{:>4.0}% |", q * 100.0));
            for c in 0..width {
                out.push(if c == pos { '*' } else { ' ' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_quantile_are_consistent() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(3.0), 0.6);
        assert_eq!(cdf.fraction_at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.len(), 5);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn points_are_monotone() {
        let cdf = Cdf::from_samples(&[3.0, 1.0, 2.0]);
        let pts: Vec<_> = cdf.points().collect();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn a_sharper_distribution_has_tighter_quantiles() {
        // The paper's Fig. 12b point: TAC's step-time CDF is sharp, the
        // baseline's is wide.
        let sharp = Cdf::from_samples(&[0.99, 1.0, 1.0, 1.01, 1.0]);
        let wide = Cdf::from_samples(&[0.5, 0.7, 0.9, 1.0, 0.6]);
        let spread = |c: &Cdf| c.quantile(0.95) - c.quantile(0.05);
        assert!(spread(&sharp) < spread(&wide));
    }

    #[test]
    fn ascii_rendering_has_eleven_rows() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0]);
        let art = cdf.to_ascii(20);
        assert_eq!(art.lines().count(), 11);
        assert!(art.contains('*'));
    }
}
