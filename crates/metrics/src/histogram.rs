//! Fixed-width histograms and streaming (Welford) statistics.

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` / above `hi`.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "at least one bin");
        assert!(hi > lo, "empty range");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bins = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            self.counts[bin.min(bins - 1)] += 1;
        }
    }

    /// Total recorded samples, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) estimated from the bins by
    /// linear interpolation inside the bin holding the rank-⌈p·n/100⌉
    /// sample. Underflow samples resolve to `lo`, overflow samples to
    /// `hi`; an empty histogram reports `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let total = self.total();
        if total == 0 {
            return self.lo;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        if rank <= self.underflow {
            return self.lo;
        }
        let mut seen = self.underflow;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n > 0 && rank <= seen + n {
                let frac = (rank - seen) as f64 / n as f64;
                return self.lo + (i as f64 + frac) * width;
            }
            seen += n;
        }
        self.hi
    }

    /// `(bin_center, count)` pairs for plotting.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
    }

    /// Renders as vertical ASCII bars, normalized to the tallest bin.
    pub fn to_ascii(&self, height: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for row in (1..=height).rev() {
            for &c in &self.counts {
                let filled = (c as f64 / max as f64 * height as f64).round() as usize;
                out.push(if filled >= row { '#' } else { ' ' });
            }
            out.push('\n');
        }
        out.push_str(&"-".repeat(self.counts.len()));
        out.push('\n');
        out
    }
}

/// Streaming mean/variance via Welford's algorithm: numerically stable
/// statistics without retaining samples (used by long 1000-run sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1; 0 for fewer than two samples).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Streaming {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Streaming {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Streaming::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.0, 2.5, 9.9, -1.0, 10.0, 11.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_percentiles_interpolate_within_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 10 samples per bin
        }
        assert!(
            (h.percentile(50.0) - 5.0).abs() < 0.11,
            "{}",
            h.percentile(50.0)
        );
        assert!((h.percentile(95.0) - 9.5).abs() < 0.11);
        assert_eq!(h.percentile(100.0), 10.0);
        // Out-of-range samples clamp to the range edges.
        let mut edges = Histogram::new(0.0, 1.0, 2);
        edges.record(-5.0);
        edges.record(5.0);
        assert_eq!(edges.percentile(25.0), 0.0);
        assert_eq!(edges.percentile(100.0), 1.0);
        // Empty histograms are well-defined.
        assert_eq!(Histogram::new(2.0, 3.0, 4).percentile(50.0), 2.0);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn histogram_ascii_has_requested_height() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.1, 0.2, 1.5, 2.5] {
            h.record(x);
        }
        let art = h.to_ascii(3);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }

    #[test]
    fn streaming_matches_batch_summary() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Streaming = xs.iter().copied().collect();
        let batch = crate::Summary::of(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - batch.mean).abs() < 1e-12);
        assert!((s.std() - batch.std).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_is_stable_on_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let s: Streaming = (0..10_000).map(|i| 1e9 + (i % 2) as f64).collect();
        assert!((s.std() - 0.5).abs() < 1e-3, "std {}", s.std());
    }

    #[test]
    fn empty_streaming_is_well_defined() {
        let s = Streaming::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.count(), 0);
    }
}
