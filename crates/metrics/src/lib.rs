//! Statistics utilities for the TicTac evaluation harness.
//!
//! Small, dependency-free implementations of the analysis tools the paper's
//! figures need: summary statistics, percentiles and CDFs (Fig. 12b),
//! ordinary least squares with `R²` (the regression of Fig. 12a), and
//! fixed-width histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod histogram;
mod ols;
mod summary;

pub use cdf::Cdf;
pub use histogram::{Histogram, Streaming};
pub use ols::{ols, OlsFit};
pub use summary::{percentile, Summary};
