//! Ordinary least squares (the regression test of Fig. 12a).

use serde::{Deserialize, Serialize};

/// A fitted line `y = intercept + slope · x` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination `R²`.
    pub r2: f64,
}

impl OlsFit {
    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by least squares.
///
/// # Panics
///
/// Panics if the series lengths differ, fewer than two points are given, or
/// all `x` are identical (degenerate design matrix).
pub fn ols(x: &[f64], y: &[f64]) -> OlsFit {
    assert_eq!(x.len(), y.len(), "series lengths differ");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mx).powi(2)).sum();
    assert!(sxx > 0.0, "all x identical");
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    let ss_tot: f64 = y.iter().map(|yi| (yi - my).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(xi, yi)| (yi - (intercept + slope * xi)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    OlsFit {
        slope,
        intercept,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_has_r2_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let fit = ols(&x, &y);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict(5.0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r2() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| {
                2.0 * xi
                    + 1.0
                    + if (xi as u64).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let fit = ols(&x, &y);
        assert!(fit.r2 > 0.99 && fit.r2 < 1.0, "r2 {}", fit.r2);
    }

    #[test]
    fn uncorrelated_data_has_low_r2() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let fit = ols(&x, &y);
        assert!(fit.r2 < 0.2, "r2 {}", fit.r2);
    }

    #[test]
    fn constant_y_is_perfectly_fit() {
        let fit = ols(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        ols(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
