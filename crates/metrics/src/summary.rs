//! Summary statistics and percentiles.

use serde::{Deserialize, Serialize};

/// Mean / spread / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }

    /// Coefficient of variation (`std / mean`; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// The `p`-th percentile (0 ≤ p ≤ 100) by linear interpolation between
/// order statistics.
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std - 2.138).abs() < 0.001);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 2.138 / 5.0).abs() < 0.001);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!((percentile(&xs, 95.0) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_invariant() {
        assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 50.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }
}
