//! AlexNet v2 (Krizhevsky, "One weird trick…", 2014), TF-Slim layout.
//!
//! 5 convolutions + 3 fully-connected layers, each with weights and bias:
//! 16 parameters, ≈191.9 MiB — matching Table 1 of the paper.

use crate::layers::{Mode, NetBuilder, Norm, Padding, Tensor};
use tictac_graph::ModelGraph;

/// Builds AlexNet v2.
pub fn alexnet_v2(mode: Mode, batch: usize) -> ModelGraph {
    let mut n = NetBuilder::new("alexnet_v2", batch);
    let x = n.input(224, 224, 3);

    let c1 = n.conv(x, "conv1", 11, 4, 64, Norm::Bias, Padding::Valid);
    let p1 = n.max_pool(c1, "pool1", 3, 2, Padding::Valid);
    let c2 = n.conv(p1, "conv2", 5, 1, 192, Norm::Bias, Padding::Same);
    let p2 = n.max_pool(c2, "pool2", 3, 2, Padding::Valid);
    let c3 = n.conv(p2, "conv3", 3, 1, 384, Norm::Bias, Padding::Same);
    let c4 = n.conv(c3, "conv4", 3, 1, 384, Norm::Bias, Padding::Same);
    let c5 = n.conv(c4, "conv5", 3, 1, 256, Norm::Bias, Padding::Same);
    let p5 = n.max_pool(c5, "pool5", 3, 2, Padding::Valid);

    // Slim implements fc6 as a 5x5 VALID convolution over the 6x6 map.
    let f6 = fc_block(&mut n, p5, "fc6", 4096);
    let f7 = fc_block(&mut n, f6, "fc7", 4096);
    let logits = n.fc(f7, "fc8", 1000);
    let out = n.softmax(logits, "predictions");
    n.finish(mode, out, &[])
}

fn fc_block(n: &mut NetBuilder, t: Tensor, name: &str, width: usize) -> Tensor {
    let fc = n.fc(t, name, width);
    n.relu(fc, &format!("{name}/relu"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_1_characteristics() {
        let m = alexnet_v2(Mode::Inference, 512);
        let s = m.stats();
        // Table 1: 16 parameters, 191.89 MiB.
        assert_eq!(s.params, 16);
        let mib = s.param_mib();
        assert!(
            (mib - 191.89).abs() / 191.89 < 0.05,
            "param size {mib:.2} MiB vs paper 191.89"
        );
    }

    #[test]
    fn training_graph_roughly_doubles_ops() {
        let inf = alexnet_v2(Mode::Inference, 512).stats().ops;
        let tr = alexnet_v2(Mode::Training, 512).stats().ops;
        assert!(tr > 2 * inf, "train {tr} vs inference {inf}");
        assert!(tr <= 2 * inf + 2);
    }

    #[test]
    fn flops_are_realistic() {
        // AlexNet forward is ~1.4 GFLOPs for batch 1 (2x MACs), give or
        // take our fc6-as-fc choice.
        let m = alexnet_v2(Mode::Inference, 1);
        let gf = m.stats().flops / 1e9;
        assert!((0.8..4.0).contains(&gf), "forward GFLOPs {gf}");
    }
}
