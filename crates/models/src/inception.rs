//! Inception v1 (GoogLeNet), v2 (BN-Inception) and v3, TF-Slim layouts.
//!
//! Parameter counting (conv weights + fused `[2,c]` BN per conv, FC
//! weights+bias; v2's stem depthwise kernel is weight-only; v3 includes the
//! auxiliary classifier) reproduces Table 1: 116 / 141 / 196 parameters.

use crate::layers::{Mode, NetBuilder, Norm, Padding, Tensor};
use tictac_graph::ModelGraph;

// ---------------------------------------------------------------- v1 ----

/// Builds Inception v1 (GoogLeNet): 9 inception modules, 57 convs, one FC.
pub fn inception_v1(mode: Mode, batch: usize) -> ModelGraph {
    let mut n = NetBuilder::new("inception_v1", batch);
    let x = n.input(224, 224, 3);
    let mut t = n.conv(x, "Conv2d_1a_7x7", 7, 2, 64, Norm::FusedBn, Padding::Same);
    t = n.max_pool(t, "MaxPool_2a_3x3", 3, 2, Padding::Same);
    t = n.lrn(t, "LRN_2b");
    t = n.conv(t, "Conv2d_2b_1x1", 1, 1, 64, Norm::FusedBn, Padding::Same);
    t = n.conv(t, "Conv2d_2c_3x3", 3, 1, 192, Norm::FusedBn, Padding::Same);
    t = n.lrn(t, "LRN_2d");
    t = n.max_pool(t, "MaxPool_3a_3x3", 3, 2, Padding::Same);

    // (name, #1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool proj)
    let modules: [(&str, [usize; 6]); 9] = [
        ("Mixed_3b", [64, 96, 128, 16, 32, 32]),
        ("Mixed_3c", [128, 128, 192, 32, 96, 64]),
        ("Mixed_4b", [192, 96, 208, 16, 48, 64]),
        ("Mixed_4c", [160, 112, 224, 24, 64, 64]),
        ("Mixed_4d", [128, 128, 256, 24, 64, 64]),
        ("Mixed_4e", [112, 144, 288, 32, 64, 64]),
        ("Mixed_4f", [256, 160, 320, 32, 128, 128]),
        ("Mixed_5b", [256, 160, 320, 32, 128, 128]),
        ("Mixed_5c", [384, 192, 384, 48, 128, 128]),
    ];
    for (i, (name, w)) in modules.iter().enumerate() {
        if i == 2 {
            t = n.max_pool(t, "MaxPool_4a_3x3", 3, 2, Padding::Same);
        }
        if i == 7 {
            t = n.max_pool(t, "MaxPool_5a_2x2", 2, 2, Padding::Same);
        }
        t = inception_v1_module(&mut n, t, name, *w);
    }
    t = n.global_avg_pool(t, "AvgPool_0a");
    let logits = n.fc(t, "Logits", 1000);
    let out = n.softmax(logits, "Predictions");
    n.finish(mode, out, &[])
}

fn inception_v1_module(n: &mut NetBuilder, t: Tensor, scope: &str, w: [usize; 6]) -> Tensor {
    let [w1, w3r, w3, w5r, w5, wp] = w;
    let b0 = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        w1,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        w3r,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1 = n.conv(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_3x3"),
        3,
        1,
        w3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2a = n.conv(
        t,
        &format!("{scope}/Branch_2/Conv2d_0a_1x1"),
        1,
        1,
        w5r,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2 = n.conv(
        b2a,
        &format!("{scope}/Branch_2/Conv2d_0b_5x5"),
        5,
        1,
        w5,
        Norm::FusedBn,
        Padding::Same,
    );
    let b3a = n.max_pool(
        t,
        &format!("{scope}/Branch_3/MaxPool_0a_3x3"),
        3,
        1,
        Padding::Same,
    );
    let b3 = n.conv(
        b3a,
        &format!("{scope}/Branch_3/Conv2d_0b_1x1"),
        1,
        1,
        wp,
        Norm::FusedBn,
        Padding::Same,
    );
    n.concat(&[b0, b1, b2, b3], scope)
}

// ---------------------------------------------------------------- v2 ----

/// Builds Inception v2 (BN-Inception): separable stem, 3x3-factorized
/// modules, 141 parameters.
pub fn inception_v2(mode: Mode, batch: usize) -> ModelGraph {
    let mut n = NetBuilder::new("inception_v2", batch);
    let x = n.input(224, 224, 3);
    // Separable 7x7 stem: depthwise (weight-only) + pointwise (with BN).
    let dw = n.conv_rect(
        x,
        "Conv2d_1a_7x7/depthwise",
        (7, 7),
        2,
        24,
        Norm::None,
        Padding::Same,
        false,
    );
    let mut t = n.conv_rect(
        dw,
        "Conv2d_1a_7x7/pointwise",
        (1, 1),
        1,
        64,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    t = n.max_pool(t, "MaxPool_2a_3x3", 3, 2, Padding::Same);
    t = n.conv(t, "Conv2d_2b_1x1", 1, 1, 64, Norm::FusedBn, Padding::Same);
    t = n.conv(t, "Conv2d_2c_3x3", 3, 1, 192, Norm::FusedBn, Padding::Same);
    t = n.max_pool(t, "MaxPool_3a_3x3", 3, 2, Padding::Same);

    // Standard module: (1x1, 3x3r, 3x3, d3x3r, d3x3, pool-proj).
    t = inception_v2_module(&mut n, t, "Mixed_3b", [64, 64, 64, 64, 96, 32]);
    t = inception_v2_module(&mut n, t, "Mixed_3c", [64, 64, 96, 64, 96, 64]);
    t = inception_v2_reduction(&mut n, t, "Mixed_4a", [128, 160, 64, 96]);
    t = inception_v2_module(&mut n, t, "Mixed_4b", [224, 64, 96, 96, 128, 128]);
    t = inception_v2_module(&mut n, t, "Mixed_4c", [192, 96, 128, 96, 128, 128]);
    t = inception_v2_module(&mut n, t, "Mixed_4d", [160, 128, 160, 128, 160, 96]);
    t = inception_v2_module(&mut n, t, "Mixed_4e", [96, 128, 192, 160, 192, 96]);
    t = inception_v2_reduction(&mut n, t, "Mixed_5a", [128, 192, 192, 256]);
    t = inception_v2_module(&mut n, t, "Mixed_5b", [352, 192, 320, 160, 224, 128]);
    t = inception_v2_module(&mut n, t, "Mixed_5c", [352, 192, 320, 192, 224, 128]);

    t = n.global_avg_pool(t, "AvgPool_1a");
    let logits = n.fc(t, "Logits", 1000);
    let out = n.softmax(logits, "Predictions");
    n.finish(mode, out, &[])
}

fn inception_v2_module(n: &mut NetBuilder, t: Tensor, scope: &str, w: [usize; 6]) -> Tensor {
    let [w1, w3r, w3, d3r, d3, wp] = w;
    let b0 = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        w1,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        w3r,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1 = n.conv(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_3x3"),
        3,
        1,
        w3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2a = n.conv(
        t,
        &format!("{scope}/Branch_2/Conv2d_0a_1x1"),
        1,
        1,
        d3r,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2b = n.conv(
        b2a,
        &format!("{scope}/Branch_2/Conv2d_0b_3x3"),
        3,
        1,
        d3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2 = n.conv(
        b2b,
        &format!("{scope}/Branch_2/Conv2d_0c_3x3"),
        3,
        1,
        d3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b3a = n.avg_pool(
        t,
        &format!("{scope}/Branch_3/AvgPool_0a_3x3"),
        3,
        1,
        Padding::Same,
    );
    let b3 = n.conv(
        b3a,
        &format!("{scope}/Branch_3/Conv2d_0b_1x1"),
        1,
        1,
        wp,
        Norm::FusedBn,
        Padding::Same,
    );
    n.concat(&[b0, b1, b2, b3], scope)
}

/// Stride-2 reduction module: two conv branches + a pooling branch.
fn inception_v2_reduction(n: &mut NetBuilder, t: Tensor, scope: &str, w: [usize; 4]) -> Tensor {
    let [w3r, w3, d3r, d3] = w;
    let b0a = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        w3r,
        Norm::FusedBn,
        Padding::Same,
    );
    let b0 = n.conv(
        b0a,
        &format!("{scope}/Branch_0/Conv2d_1a_3x3"),
        3,
        2,
        w3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        d3r,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1b = n.conv(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_3x3"),
        3,
        1,
        d3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1 = n.conv(
        b1b,
        &format!("{scope}/Branch_1/Conv2d_1a_3x3"),
        3,
        2,
        d3,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2 = n.max_pool(
        t,
        &format!("{scope}/Branch_2/MaxPool_1a_3x3"),
        3,
        2,
        Padding::Same,
    );
    n.concat(&[b0, b1, b2], scope)
}

// ---------------------------------------------------------------- v3 ----

/// Builds Inception v3 with the auxiliary classifier: 94 main convs, a
/// 2-conv aux head, two FC heads — 196 parameters.
pub fn inception_v3(mode: Mode, batch: usize) -> ModelGraph {
    let mut n = NetBuilder::new("inception_v3", batch);
    let x = n.input(299, 299, 3);
    let mut t = n.conv(x, "Conv2d_1a_3x3", 3, 2, 32, Norm::FusedBn, Padding::Valid);
    t = n.conv(t, "Conv2d_2a_3x3", 3, 1, 32, Norm::FusedBn, Padding::Valid);
    t = n.conv(t, "Conv2d_2b_3x3", 3, 1, 64, Norm::FusedBn, Padding::Same);
    t = n.max_pool(t, "MaxPool_3a_3x3", 3, 2, Padding::Valid);
    t = n.conv(t, "Conv2d_3b_1x1", 1, 1, 80, Norm::FusedBn, Padding::Valid);
    t = n.conv(t, "Conv2d_4a_3x3", 3, 1, 192, Norm::FusedBn, Padding::Valid);
    t = n.max_pool(t, "MaxPool_5a_3x3", 3, 2, Padding::Valid);

    // 35x35 modules.
    t = v3_module_a(&mut n, t, "Mixed_5b", 32);
    t = v3_module_a(&mut n, t, "Mixed_5c", 64);
    t = v3_module_a(&mut n, t, "Mixed_5d", 64);
    // Reduction to 17x17.
    t = v3_reduction_a(&mut n, t, "Mixed_6a");
    // 17x17 factorized-7 modules.
    t = v3_module_b(&mut n, t, "Mixed_6b", 128);
    t = v3_module_b(&mut n, t, "Mixed_6c", 160);
    t = v3_module_b(&mut n, t, "Mixed_6d", 160);
    t = v3_module_b(&mut n, t, "Mixed_6e", 192);

    // Auxiliary head hangs off Mixed_6e.
    let mut aux = n.avg_pool(t, "AuxLogits/AvgPool_1a_5x5", 5, 3, Padding::Valid);
    aux = n.conv(
        aux,
        "AuxLogits/Conv2d_1b_1x1",
        1,
        1,
        128,
        Norm::FusedBn,
        Padding::Same,
    );
    aux = n.conv_rect(
        aux,
        "AuxLogits/Conv2d_2a_5x5",
        (5, 5),
        1,
        768,
        Norm::FusedBn,
        Padding::Valid,
        true,
    );
    let aux_logits = n.fc(aux, "AuxLogits/Logits", 1000);

    // Reduction to 8x8.
    t = v3_reduction_b(&mut n, t, "Mixed_7a");
    // 8x8 modules.
    t = v3_module_c(&mut n, t, "Mixed_7b");
    t = v3_module_c(&mut n, t, "Mixed_7c");

    t = n.global_avg_pool(t, "AvgPool_1a");
    let logits = n.fc(t, "Logits", 1000);
    let out = n.softmax(logits, "Predictions");
    n.finish(mode, out, &[aux_logits])
}

/// 35x35 module: 1x1 / 1x1→5x5 / 1x1→3x3→3x3 / pool→1x1.
fn v3_module_a(n: &mut NetBuilder, t: Tensor, scope: &str, pool_proj: usize) -> Tensor {
    let b0 = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        64,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        48,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1 = n.conv(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_5x5"),
        5,
        1,
        64,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2a = n.conv(
        t,
        &format!("{scope}/Branch_2/Conv2d_0a_1x1"),
        1,
        1,
        64,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2b = n.conv(
        b2a,
        &format!("{scope}/Branch_2/Conv2d_0b_3x3"),
        3,
        1,
        96,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2 = n.conv(
        b2b,
        &format!("{scope}/Branch_2/Conv2d_0c_3x3"),
        3,
        1,
        96,
        Norm::FusedBn,
        Padding::Same,
    );
    let b3a = n.avg_pool(
        t,
        &format!("{scope}/Branch_3/AvgPool_0a_3x3"),
        3,
        1,
        Padding::Same,
    );
    let b3 = n.conv(
        b3a,
        &format!("{scope}/Branch_3/Conv2d_0b_1x1"),
        1,
        1,
        pool_proj,
        Norm::FusedBn,
        Padding::Same,
    );
    n.concat(&[b0, b1, b2, b3], scope)
}

/// Reduction 35→17: 3x3/2 / 1x1→3x3→3x3/2 / pool.
fn v3_reduction_a(n: &mut NetBuilder, t: Tensor, scope: &str) -> Tensor {
    let b0 = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_1a_1x1"),
        3,
        2,
        384,
        Norm::FusedBn,
        Padding::Valid,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        64,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1b = n.conv(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_3x3"),
        3,
        1,
        96,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1 = n.conv(
        b1b,
        &format!("{scope}/Branch_1/Conv2d_1a_1x1"),
        3,
        2,
        96,
        Norm::FusedBn,
        Padding::Valid,
    );
    let b2 = n.max_pool(
        t,
        &format!("{scope}/Branch_2/MaxPool_1a_3x3"),
        3,
        2,
        Padding::Valid,
    );
    n.concat(&[b0, b1, b2], scope)
}

/// 17x17 module with factorized 7x7: 1x1 / 1x1→1x7→7x1 /
/// 1x1→7x1→1x7→7x1→1x7 / pool→1x1.
fn v3_module_b(n: &mut NetBuilder, t: Tensor, scope: &str, width: usize) -> Tensor {
    let w = width;
    let b0 = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        w,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1b = n.conv_rect(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_1x7"),
        (1, 7),
        1,
        w,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b1 = n.conv_rect(
        b1b,
        &format!("{scope}/Branch_1/Conv2d_0c_7x1"),
        (7, 1),
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b2a = n.conv(
        t,
        &format!("{scope}/Branch_2/Conv2d_0a_1x1"),
        1,
        1,
        w,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2b = n.conv_rect(
        b2a,
        &format!("{scope}/Branch_2/Conv2d_0b_7x1"),
        (7, 1),
        1,
        w,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b2c = n.conv_rect(
        b2b,
        &format!("{scope}/Branch_2/Conv2d_0c_1x7"),
        (1, 7),
        1,
        w,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b2d = n.conv_rect(
        b2c,
        &format!("{scope}/Branch_2/Conv2d_0d_7x1"),
        (7, 1),
        1,
        w,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b2 = n.conv_rect(
        b2d,
        &format!("{scope}/Branch_2/Conv2d_0e_1x7"),
        (1, 7),
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b3a = n.avg_pool(
        t,
        &format!("{scope}/Branch_3/AvgPool_0a_3x3"),
        3,
        1,
        Padding::Same,
    );
    let b3 = n.conv(
        b3a,
        &format!("{scope}/Branch_3/Conv2d_0b_1x1"),
        1,
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
    );
    n.concat(&[b0, b1, b2, b3], scope)
}

/// Reduction 17→8: 1x1→3x3/2 / 1x1→1x7→7x1→3x3/2 / pool.
fn v3_reduction_b(n: &mut NetBuilder, t: Tensor, scope: &str) -> Tensor {
    let b0a = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
    );
    let b0 = n.conv(
        b0a,
        &format!("{scope}/Branch_0/Conv2d_1a_3x3"),
        3,
        2,
        320,
        Norm::FusedBn,
        Padding::Valid,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1b = n.conv_rect(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_1x7"),
        (1, 7),
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b1c = n.conv_rect(
        b1b,
        &format!("{scope}/Branch_1/Conv2d_0c_7x1"),
        (7, 1),
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b1 = n.conv(
        b1c,
        &format!("{scope}/Branch_1/Conv2d_1a_3x3"),
        3,
        2,
        192,
        Norm::FusedBn,
        Padding::Valid,
    );
    let b2 = n.max_pool(
        t,
        &format!("{scope}/Branch_2/MaxPool_1a_3x3"),
        3,
        2,
        Padding::Valid,
    );
    n.concat(&[b0, b1, b2], scope)
}

/// 8x8 module with split branches: 1x1 / 1x1→{1x3, 3x1} /
/// 1x1→3x3→{1x3, 3x1} / pool→1x1.
fn v3_module_c(n: &mut NetBuilder, t: Tensor, scope: &str) -> Tensor {
    let b0 = n.conv(
        t,
        &format!("{scope}/Branch_0/Conv2d_0a_1x1"),
        1,
        1,
        320,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1a = n.conv(
        t,
        &format!("{scope}/Branch_1/Conv2d_0a_1x1"),
        1,
        1,
        384,
        Norm::FusedBn,
        Padding::Same,
    );
    let b1l = n.conv_rect(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0b_1x3"),
        (1, 3),
        1,
        384,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b1r = n.conv_rect(
        b1a,
        &format!("{scope}/Branch_1/Conv2d_0c_3x1"),
        (3, 1),
        1,
        384,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b2a = n.conv(
        t,
        &format!("{scope}/Branch_2/Conv2d_0a_1x1"),
        1,
        1,
        448,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2b = n.conv(
        b2a,
        &format!("{scope}/Branch_2/Conv2d_0b_3x3"),
        3,
        1,
        384,
        Norm::FusedBn,
        Padding::Same,
    );
    let b2l = n.conv_rect(
        b2b,
        &format!("{scope}/Branch_2/Conv2d_0c_1x3"),
        (1, 3),
        1,
        384,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b2r = n.conv_rect(
        b2b,
        &format!("{scope}/Branch_2/Conv2d_0d_3x1"),
        (3, 1),
        1,
        384,
        Norm::FusedBn,
        Padding::Same,
        true,
    );
    let b3a = n.avg_pool(
        t,
        &format!("{scope}/Branch_3/AvgPool_0a_3x3"),
        3,
        1,
        Padding::Same,
    );
    let b3 = n.conv(
        b3a,
        &format!("{scope}/Branch_3/Conv2d_0b_1x1"),
        1,
        1,
        192,
        Norm::FusedBn,
        Padding::Same,
    );
    n.concat(&[b0, b1l, b1r, b2l, b2r, b3], scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_v1_matches_table_1() {
        let s = inception_v1(Mode::Inference, 128).stats();
        assert_eq!(s.params, 116);
        let mib = s.param_mib();
        assert!(
            (mib - 25.24).abs() / 25.24 < 0.10,
            "Inception v1 size {mib:.2} MiB vs paper 25.24"
        );
    }

    #[test]
    fn inception_v2_matches_table_1() {
        let s = inception_v2(Mode::Inference, 128).stats();
        assert_eq!(s.params, 141);
        let mib = s.param_mib();
        assert!(
            (mib - 42.64).abs() / 42.64 < 0.15,
            "Inception v2 size {mib:.2} MiB vs paper 42.64"
        );
    }

    #[test]
    fn inception_v3_matches_table_1() {
        let s = inception_v3(Mode::Inference, 32).stats();
        assert_eq!(s.params, 196);
        let mib = s.param_mib();
        assert!(
            (mib - 103.54).abs() / 103.54 < 0.10,
            "Inception v3 size {mib:.2} MiB vs paper 103.54"
        );
    }

    #[test]
    fn v3_is_larger_and_deeper_than_v1() {
        let s1 = inception_v1(Mode::Inference, 32).stats();
        let s3 = inception_v3(Mode::Inference, 32).stats();
        assert!(s3.ops > s1.ops);
        assert!(s3.param_bytes > s1.param_bytes);
    }

    #[test]
    fn training_graphs_are_buildable_for_all_variants() {
        for m in [
            inception_v1(Mode::Training, 8),
            inception_v2(Mode::Training, 8),
            inception_v3(Mode::Training, 8),
        ] {
            assert!(m.is_training());
            // Every param has a gradient producer.
            for i in 0..m.params().len() {
                let pid = tictac_graph::ParamId::from_index(i);
                assert!(
                    m.ops().iter().any(|o| o.produces_grads().contains(&pid)),
                    "{} param {} has no gradient",
                    m.name(),
                    m.param(pid).name()
                );
            }
        }
    }
}
