//! Layer-level network construction on top of [`ModelGraphBuilder`].
//!
//! [`NetBuilder`] tracks activation shapes, counts FLOPs per layer and —
//! for training graphs — synthesizes the backward pass: one gradient op per
//! forward op, in reverse topological order, producing parameter gradients
//! as it goes. This mirrors how DAG frameworks lay out training graphs and
//! produces the communication pattern TicTac exploits: parameters are
//! *consumed* in forward order while gradients are *produced* in reverse
//! order.

use std::collections::HashMap;
use tictac_graph::{ModelGraph, ModelGraphBuilder, ModelOpId, ModelOpKind, ParamId};

/// Whether a graph contains only the forward pass or forward + loss +
/// backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Forward pass only (the paper's reinforcement-learning inference
    /// agents, §6).
    Inference,
    /// Forward + loss + backward with gradient outputs (synchronous SGD
    /// training).
    Training,
}

/// Normalization/bias applied after a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// A learned bias vector `[out_c]` (AlexNet, VGG).
    Bias,
    /// A fused batch-norm parameter tensor `[2, out_c]` (γ and β), as in
    /// TF-Slim's conv+BN blocks (Inception, ResNet).
    FusedBn,
    /// No post-conv parameter (projection shortcuts in some variants).
    None,
}

/// Convolution padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// TensorFlow `SAME`: output = ceil(input / stride).
    Same,
    /// TensorFlow `VALID`: output = ceil((input − k + 1) / stride).
    Valid,
}

impl Padding {
    fn out_dim(self, input: usize, k: usize, stride: usize) -> usize {
        match self {
            Padding::Same => input.div_ceil(stride),
            Padding::Valid => (input.saturating_sub(k) + stride) / stride,
        }
    }
}

/// An activation tensor flowing through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tensor {
    /// The op that produced this tensor (`None` for the network input).
    pub op: Option<ModelOpId>,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Tensor {
    /// Elements per sample.
    pub fn elems(&self) -> u64 {
        (self.h * self.w * self.c) as u64
    }
}

/// Shape- and FLOP-tracking network builder.
#[derive(Debug)]
pub struct NetBuilder {
    b: ModelGraphBuilder,
    batch: usize,
    /// Insertion-ordered forward op ids with their parameter reads, used to
    /// generate the backward pass.
    forward: Vec<ModelOpId>,
    consumers: HashMap<ModelOpId, Vec<ModelOpId>>,
}

impl NetBuilder {
    /// Starts a network with the given name and batch size.
    pub fn new(name: impl Into<String>, batch: usize) -> Self {
        Self {
            b: ModelGraphBuilder::new(name, batch),
            batch,
            forward: Vec::new(),
            consumers: HashMap::new(),
        }
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The network input tensor (`h × w × c` per sample).
    pub fn input(&self, h: usize, w: usize, c: usize) -> Tensor {
        Tensor { op: None, h, w, c }
    }

    fn push_op(
        &mut self,
        name: String,
        flops: f64,
        preds: &[Option<ModelOpId>],
        reads: &[ParamId],
    ) -> ModelOpId {
        let deps: Vec<ModelOpId> = preds.iter().copied().flatten().collect();
        let id = self
            .b
            .add_op(name, ModelOpKind::Forward, flops, &deps, reads, &[]);
        for d in &deps {
            self.consumers.entry(*d).or_default().push(id);
        }
        self.forward.push(id);
        id
    }

    /// A 2-D convolution with square kernel `k`, plus its normalization and
    /// a ReLU, emitted as three ops (conv, norm, relu).
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        t: Tensor,
        name: &str,
        k: usize,
        stride: usize,
        out_c: usize,
        norm: Norm,
        padding: Padding,
    ) -> Tensor {
        self.conv_rect(t, name, (k, k), stride, out_c, norm, padding, true)
    }

    /// A convolution with rectangular kernel `(kh, kw)` (Inception v3's
    /// factorized convolutions), optionally without activation.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_rect(
        &mut self,
        t: Tensor,
        name: &str,
        (kh, kw): (usize, usize),
        stride: usize,
        out_c: usize,
        norm: Norm,
        padding: Padding,
        relu: bool,
    ) -> Tensor {
        let oh = padding.out_dim(t.h, kh, stride);
        let ow = padding.out_dim(t.w, kw, stride);
        let weights = self
            .b
            .add_param(format!("{name}/weights"), vec![kh, kw, t.c, out_c]);
        let macs = (oh * ow * out_c) as f64 * (kh * kw * t.c) as f64 * self.batch as f64;
        let conv = self.push_op(format!("{name}/Conv2D"), 2.0 * macs, &[t.op], &[weights]);
        let spatial = (oh * ow * out_c * self.batch) as f64;

        let after_norm = match norm {
            Norm::Bias => {
                let bias = self.b.add_param(format!("{name}/biases"), vec![out_c]);
                self.push_op(format!("{name}/BiasAdd"), spatial, &[Some(conv)], &[bias])
            }
            Norm::FusedBn => {
                let bn = self
                    .b
                    .add_param(format!("{name}/BatchNorm"), vec![2, out_c]);
                self.push_op(
                    format!("{name}/FusedBatchNorm"),
                    4.0 * spatial,
                    &[Some(conv)],
                    &[bn],
                )
            }
            Norm::None => conv,
        };
        let last = if relu {
            self.push_op(format!("{name}/Relu"), spatial, &[Some(after_norm)], &[])
        } else {
            after_norm
        };
        Tensor {
            op: Some(last),
            h: oh,
            w: ow,
            c: out_c,
        }
    }

    /// A standalone batch-norm + ReLU (pre-activation ResNet v2 blocks):
    /// adds one fused BN parameter.
    pub fn bn_relu(&mut self, t: Tensor, name: &str) -> Tensor {
        let bn = self.b.add_param(format!("{name}/BatchNorm"), vec![2, t.c]);
        let spatial = t.elems() as f64 * self.batch as f64;
        let bn_op = self.push_op(
            format!("{name}/FusedBatchNorm"),
            4.0 * spatial,
            &[t.op],
            &[bn],
        );
        let relu = self.push_op(format!("{name}/Relu"), spatial, &[Some(bn_op)], &[]);
        Tensor {
            op: Some(relu),
            ..t
        }
    }

    /// Max pooling.
    pub fn max_pool(
        &mut self,
        t: Tensor,
        name: &str,
        k: usize,
        stride: usize,
        padding: Padding,
    ) -> Tensor {
        self.pool(t, name, "MaxPool", k, stride, padding)
    }

    /// Average pooling.
    pub fn avg_pool(
        &mut self,
        t: Tensor,
        name: &str,
        k: usize,
        stride: usize,
        padding: Padding,
    ) -> Tensor {
        self.pool(t, name, "AvgPool", k, stride, padding)
    }

    fn pool(
        &mut self,
        t: Tensor,
        name: &str,
        kind: &str,
        k: usize,
        stride: usize,
        padding: Padding,
    ) -> Tensor {
        let oh = padding.out_dim(t.h, k, stride);
        let ow = padding.out_dim(t.w, k, stride);
        let flops = (oh * ow * t.c * k * k) as f64 * self.batch as f64;
        let op = self.push_op(format!("{name}/{kind}"), flops, &[t.op], &[]);
        Tensor {
            op: Some(op),
            h: oh,
            w: ow,
            c: t.c,
        }
    }

    /// Global average pooling to `1 × 1 × c`.
    pub fn global_avg_pool(&mut self, t: Tensor, name: &str) -> Tensor {
        let flops = t.elems() as f64 * self.batch as f64;
        let op = self.push_op(format!("{name}/GlobalAvgPool"), flops, &[t.op], &[]);
        Tensor {
            op: Some(op),
            h: 1,
            w: 1,
            c: t.c,
        }
    }

    /// Local response normalization (AlexNet, GoogLeNet); no parameters.
    pub fn lrn(&mut self, t: Tensor, name: &str) -> Tensor {
        let flops = 8.0 * t.elems() as f64 * self.batch as f64;
        let op = self.push_op(format!("{name}/LRN"), flops, &[t.op], &[]);
        Tensor { op: Some(op), ..t }
    }

    /// Channel concatenation of parallel branches (Inception modules).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or spatial dimensions disagree.
    pub fn concat(&mut self, inputs: &[Tensor], name: &str) -> Tensor {
        assert!(!inputs.is_empty(), "concat needs at least one input");
        let (h, w) = (inputs[0].h, inputs[0].w);
        assert!(
            inputs.iter().all(|t| t.h == h && t.w == w),
            "concat inputs must share spatial dims"
        );
        let c: usize = inputs.iter().map(|t| t.c).sum();
        let flops = (h * w * c) as f64 * self.batch as f64;
        let preds: Vec<Option<ModelOpId>> = inputs.iter().map(|t| t.op).collect();
        let op = self.push_op(format!("{name}/Concat"), flops, &preds, &[]);
        Tensor {
            op: Some(op),
            h,
            w,
            c,
        }
    }

    /// Element-wise residual addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add(&mut self, a: Tensor, b: Tensor, name: &str) -> Tensor {
        assert_eq!((a.h, a.w, a.c), (b.h, b.w, b.c), "residual shapes differ");
        let flops = a.elems() as f64 * self.batch as f64;
        let op = self.push_op(format!("{name}/Add"), flops, &[a.op, b.op], &[]);
        Tensor { op: Some(op), ..a }
    }

    /// A fully-connected layer (flattens spatial dims), with bias, no
    /// activation.
    pub fn fc(&mut self, t: Tensor, name: &str, out: usize) -> Tensor {
        let input = (t.h * t.w * t.c) as u64;
        let weights = self
            .b
            .add_param(format!("{name}/weights"), vec![input as usize, out]);
        let bias = self.b.add_param(format!("{name}/biases"), vec![out]);
        let flops = 2.0 * input as f64 * out as f64 * self.batch as f64;
        let matmul = self.push_op(format!("{name}/MatMul"), flops, &[t.op], &[weights]);
        let op = self.push_op(
            format!("{name}/BiasAdd"),
            (out * self.batch) as f64,
            &[Some(matmul)],
            &[bias],
        );
        Tensor {
            op: Some(op),
            h: 1,
            w: 1,
            c: out,
        }
    }

    /// A ReLU on a fully-connected output.
    pub fn relu(&mut self, t: Tensor, name: &str) -> Tensor {
        let flops = t.elems() as f64 * self.batch as f64;
        let op = self.push_op(format!("{name}/Relu"), flops, &[t.op], &[]);
        Tensor { op: Some(op), ..t }
    }

    /// Softmax over the final logits.
    pub fn softmax(&mut self, t: Tensor, name: &str) -> Tensor {
        let flops = 5.0 * t.elems() as f64 * self.batch as f64;
        let op = self.push_op(format!("{name}/Softmax"), flops, &[t.op], &[]);
        Tensor { op: Some(op), ..t }
    }

    /// Finalizes the graph.
    ///
    /// In [`Mode::Training`], appends a cross-entropy loss after `output`
    /// (and any `extra_heads`, e.g. Inception auxiliary classifiers) and a
    /// synthesized backward pass: for every forward op, in reverse
    /// insertion order, a gradient op that
    ///
    /// * depends on the gradients of all ops that consumed the forward
    ///   op's output (or on the loss, for the output ops),
    /// * depends on the forward op itself (it needs the activations),
    /// * re-reads the parameters the forward op read, and produces their
    ///   gradients (`2×` the forward FLOPs for parametrized ops, `1×`
    ///   otherwise).
    pub fn finish(mut self, mode: Mode, output: Tensor, extra_heads: &[Tensor]) -> ModelGraph {
        if mode == Mode::Inference {
            return self.b.build();
        }

        // Loss over the main output and any auxiliary heads.
        let mut head_ops: Vec<ModelOpId> = Vec::new();
        head_ops.extend(output.op);
        head_ops.extend(extra_heads.iter().filter_map(|t| t.op));
        let loss_flops = 10.0 * output.c as f64 * self.batch as f64;
        let loss = self.b.add_op(
            "loss/xent",
            ModelOpKind::Loss,
            loss_flops,
            &head_ops,
            &[],
            &[],
        );

        // Backward pass in reverse forward order.
        let mut grad_of: HashMap<ModelOpId, ModelOpId> = HashMap::new();
        for &fwd in self.forward.iter().rev() {
            let mut preds: Vec<ModelOpId> = self
                .consumers
                .get(&fwd)
                .map(|cs| cs.iter().filter_map(|c| grad_of.get(c).copied()).collect())
                .unwrap_or_default();
            if preds.is_empty() {
                preds.push(loss);
            }
            preds.push(fwd);
            let (name, flops, params): (String, f64, Vec<ParamId>) = {
                let op = self.b_op(fwd);
                let factor = if op.2.is_empty() { 1.0 } else { 2.0 };
                (format!("{}_grad", op.0), op.1 * factor, op.2.clone())
            };
            let gid = self
                .b
                .add_op(name, ModelOpKind::Backward, flops, &preds, &params, &params);
            grad_of.insert(fwd, gid);
        }
        self.b.build()
    }

    /// Name, flops and parameter reads of an op already in the builder.
    fn b_op(&self, id: ModelOpId) -> (String, f64, Vec<ParamId>) {
        // ModelGraphBuilder has no accessor; track through a rebuild-free
        // peek: we keep our own mirror in `forward` order. To avoid
        // duplicating state, query the builder's pending ops via a small
        // internal accessor.
        let op = self.b.peek_op(id);
        (
            op.name().to_string(),
            op.flops(),
            op.reads_params().to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::ModelOpKind;

    #[test]
    fn padding_arithmetic() {
        assert_eq!(Padding::Same.out_dim(224, 3, 1), 224);
        assert_eq!(Padding::Same.out_dim(224, 3, 2), 112);
        assert_eq!(Padding::Same.out_dim(7, 3, 2), 4);
        assert_eq!(Padding::Valid.out_dim(224, 7, 2), 109);
        assert_eq!(Padding::Valid.out_dim(5, 5, 1), 1);
    }

    #[test]
    fn conv_tracks_shapes_params_and_flops() {
        let mut n = NetBuilder::new("t", 2);
        let x = n.input(8, 8, 3);
        let y = n.conv(x, "c1", 3, 2, 16, Norm::FusedBn, Padding::Same);
        assert_eq!((y.h, y.w, y.c), (4, 4, 16));
        let m = n.finish(Mode::Inference, y, &[]);
        // weights + fused bn.
        assert_eq!(m.params().len(), 2);
        assert_eq!(m.params()[0].shape().dims(), &[3, 3, 3, 16]);
        assert_eq!(m.params()[1].shape().dims(), &[2, 16]);
        // conv + bn + relu ops.
        assert_eq!(m.ops().len(), 3);
        let conv_flops = 2.0 * (4 * 4 * 16) as f64 * (3 * 3 * 3) as f64 * 2.0;
        assert_eq!(m.ops()[0].flops(), conv_flops);
    }

    #[test]
    fn fc_flattens_input() {
        let mut n = NetBuilder::new("t", 1);
        let x = n.input(4, 4, 8);
        let y = n.fc(x, "fc", 10);
        assert_eq!((y.h, y.w, y.c), (1, 1, 10));
        let m = n.finish(Mode::Inference, y, &[]);
        assert_eq!(m.params()[0].shape().dims(), &[128, 10]);
        assert_eq!(m.params()[1].shape().dims(), &[10]);
    }

    #[test]
    fn concat_sums_channels() {
        let mut n = NetBuilder::new("t", 1);
        let x = n.input(8, 8, 3);
        let a = n.conv(x, "a", 1, 1, 4, Norm::None, Padding::Same);
        let b = n.conv(x, "b", 3, 1, 6, Norm::None, Padding::Same);
        let y = n.concat(&[a, b], "cat");
        assert_eq!(y.c, 10);
    }

    #[test]
    #[should_panic(expected = "spatial dims")]
    fn concat_rejects_mismatched_spatial_dims() {
        let mut n = NetBuilder::new("t", 1);
        let x = n.input(8, 8, 3);
        let a = n.conv(x, "a", 1, 1, 4, Norm::None, Padding::Same);
        let b = n.conv(x, "b", 3, 2, 4, Norm::None, Padding::Same);
        n.concat(&[a, b], "cat");
    }

    #[test]
    fn training_mode_adds_loss_and_mirrored_backward() {
        let mut n = NetBuilder::new("t", 4);
        let x = n.input(8, 8, 3);
        let h = n.conv(x, "c1", 3, 1, 8, Norm::Bias, Padding::Same);
        let y = n.fc(h, "fc", 10);
        let fwd_ops = 3 + 2; // conv,bias,relu + matmul,biasadd
        let m = n.finish(Mode::Training, y, &[]);
        assert!(m.is_training());
        // forward + loss + one grad per forward op.
        assert_eq!(m.ops().len(), fwd_ops + 1 + fwd_ops);
        // Every parameter has exactly one gradient producer.
        for (i, _) in m.params().iter().enumerate() {
            let pid = tictac_graph::ParamId::from_index(i);
            let producers = m
                .ops()
                .iter()
                .filter(|o| o.produces_grads().contains(&pid))
                .count();
            assert_eq!(producers, 1, "param {pid} gradient producers");
        }
        // Backward ops exist and loss is a Loss op.
        assert!(m.ops().iter().any(|o| o.kind() == ModelOpKind::Backward));
        assert_eq!(
            m.ops()
                .iter()
                .filter(|o| o.kind() == ModelOpKind::Loss)
                .count(),
            1
        );
    }

    #[test]
    fn gradients_are_produced_in_reverse_layer_order() {
        let mut n = NetBuilder::new("t", 1);
        let x = n.input(8, 8, 3);
        let a = n.conv(x, "c1", 3, 1, 4, Norm::None, Padding::Same);
        let b = n.conv(a, "c2", 3, 1, 4, Norm::None, Padding::Same);
        let m = n.finish(Mode::Training, b, &[]);
        // In op insertion order, c2's gradient comes before c1's.
        let pos = |name: &str| m.ops().iter().position(|o| o.name() == name).unwrap();
        assert!(pos("c2/Conv2D_grad") < pos("c1/Conv2D_grad"));
    }
}
