//! Synthetic DNN model zoo for the TicTac reproduction.
//!
//! Structural generators for the ten networks of Table 1 of the paper,
//! producing device-agnostic [`ModelGraph`]s with realistic layer shapes,
//! parameter sizes and FLOP counts. The partitioned, distributed graphs are
//! derived from these by `tictac-cluster`.
//!
//! Parameter counts and total sizes match Table 1 (exactly for counts,
//! within a few percent for sizes); op counts are *semantic* layer ops
//! (conv, bn, relu, …), not TensorFlow kernel counts, and therefore smaller
//! than the paper's — the harness prints both side by side.
//!
//! # Example
//!
//! ```
//! use tictac_models::{Mode, Model};
//!
//! let m = Model::ResNet50V1.build(Mode::Training);
//! assert_eq!(m.params().len(), 108); // Table 1
//! assert!(m.is_training());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alexnet;
mod inception;
mod layers;
mod resnet;
mod vgg;

pub use layers::{Mode, NetBuilder, Norm, Padding, Tensor};
pub use resnet::ResNetVersion;

use serde::{Deserialize, Serialize};
use std::fmt;
use tictac_graph::ModelGraph;

/// The ten benchmark networks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// AlexNet v2 (Krizhevsky, 2014).
    AlexNetV2,
    /// Inception v1 / GoogLeNet (Szegedy et al., 2014).
    InceptionV1,
    /// Inception v2 / BN-Inception (Ioffe & Szegedy, 2015).
    InceptionV2,
    /// Inception v3 (Szegedy et al., 2015).
    InceptionV3,
    /// ResNet-50 v1 (He et al., 2015).
    ResNet50V1,
    /// ResNet-101 v1 (He et al., 2015).
    ResNet101V1,
    /// ResNet-50 v2, pre-activation (He et al., 2016).
    ResNet50V2,
    /// ResNet-101 v2, pre-activation (He et al., 2016).
    ResNet101V2,
    /// VGG-16 (Simonyan & Zisserman, 2014).
    Vgg16,
    /// VGG-19 (Simonyan & Zisserman, 2014).
    Vgg19,
}

/// A row of Table 1 of the paper (reference values for comparison).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Number of parameter tensors.
    pub params: usize,
    /// Total parameter size, MiB.
    pub param_mib: f64,
    /// TensorFlow op count, inference graph.
    pub ops_inference: usize,
    /// TensorFlow op count, training graph.
    pub ops_training: usize,
    /// Standard batch size used in the evaluation.
    pub batch_size: usize,
}

impl Model {
    /// All ten models, in Table 1 order.
    pub const ALL: [Model; 10] = [
        Model::AlexNetV2,
        Model::InceptionV1,
        Model::InceptionV2,
        Model::InceptionV3,
        Model::ResNet50V1,
        Model::ResNet101V1,
        Model::ResNet50V2,
        Model::ResNet101V2,
        Model::Vgg16,
        Model::Vgg19,
    ];

    /// The model's canonical (TF-Slim style) name.
    pub fn name(self) -> &'static str {
        match self {
            Model::AlexNetV2 => "alexnet_v2",
            Model::InceptionV1 => "inception_v1",
            Model::InceptionV2 => "inception_v2",
            Model::InceptionV3 => "inception_v3",
            Model::ResNet50V1 => "resnet_v1_50",
            Model::ResNet101V1 => "resnet_v1_101",
            Model::ResNet50V2 => "resnet_v2_50",
            Model::ResNet101V2 => "resnet_v2_101",
            Model::Vgg16 => "vgg_16",
            Model::Vgg19 => "vgg_19",
        }
    }

    /// Parses a model from its canonical name.
    pub fn from_name(name: &str) -> Option<Model> {
        Model::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The standard batch size of Table 1.
    pub fn default_batch(self) -> usize {
        self.paper_row().batch_size
    }

    /// The paper's Table 1 reference values for this model.
    pub fn paper_row(self) -> Table1Row {
        let (params, param_mib, ops_inference, ops_training, batch_size) = match self {
            Model::AlexNetV2 => (16, 191.89, 235, 483, 512),
            Model::InceptionV1 => (116, 25.24, 1114, 2246, 128),
            Model::InceptionV2 => (141, 42.64, 1369, 2706, 128),
            Model::InceptionV3 => (196, 103.54, 1904, 3672, 32),
            Model::ResNet50V1 => (108, 97.39, 1114, 2096, 32),
            Model::ResNet101V1 => (210, 169.74, 2083, 3898, 64),
            Model::ResNet50V2 => (125, 97.45, 1423, 2813, 64),
            Model::ResNet101V2 => (244, 169.86, 2749, 5380, 32),
            Model::Vgg16 => (32, 527.79, 388, 758, 32),
            Model::Vgg19 => (38, 548.05, 442, 857, 32),
        };
        Table1Row {
            params,
            param_mib,
            ops_inference,
            ops_training,
            batch_size,
        }
    }

    /// Builds the model graph at the standard batch size of Table 1.
    pub fn build(self, mode: Mode) -> ModelGraph {
        self.build_with_batch(mode, self.default_batch())
    }

    /// Builds the model graph at a custom batch size (the ×0.5/×1/×2
    /// batch-scaling experiment of Fig. 10).
    pub fn build_with_batch(self, mode: Mode, batch: usize) -> ModelGraph {
        match self {
            Model::AlexNetV2 => alexnet::alexnet_v2(mode, batch),
            Model::InceptionV1 => inception::inception_v1(mode, batch),
            Model::InceptionV2 => inception::inception_v2(mode, batch),
            Model::InceptionV3 => inception::inception_v3(mode, batch),
            Model::ResNet50V1 => resnet::resnet_50_v1(mode, batch),
            Model::ResNet101V1 => resnet::resnet_101_v1(mode, batch),
            Model::ResNet50V2 => resnet::resnet_50_v2(mode, batch),
            Model::ResNet101V2 => resnet::resnet_101_v2(mode, batch),
            Model::Vgg16 => vgg::vgg_16(mode, batch),
            Model::Vgg19 => vgg::vgg_19(mode, batch),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A tiny two-layer MLP — handy for fast tests and the quickstart example.
pub fn tiny_mlp(mode: Mode, batch: usize) -> ModelGraph {
    let mut n = NetBuilder::new("tiny_mlp", batch);
    let x = n.input(1, 1, 64);
    let h = n.fc(x, "fc1", 128);
    let h = n.relu(h, "fc1/relu");
    let logits = n.fc(h, "fc2", 10);
    let out = n.softmax(logits, "predictions");
    n.finish(mode, out, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_in_both_modes() {
        for model in Model::ALL {
            // Use a small batch: only shapes/op counts matter here.
            let inf = model.build_with_batch(Mode::Inference, 2);
            let tr = model.build_with_batch(Mode::Training, 2);
            assert!(!inf.is_training(), "{model}");
            assert!(tr.is_training(), "{model}");
            assert!(tr.stats().ops > inf.stats().ops, "{model}");
            // Same parameters in both modes.
            assert_eq!(inf.params().len(), tr.params().len(), "{model}");
        }
    }

    #[test]
    fn param_counts_match_table_1_exactly() {
        for model in Model::ALL {
            let built = model.build_with_batch(Mode::Inference, 2);
            assert_eq!(
                built.params().len(),
                model.paper_row().params,
                "{model} parameter count"
            );
        }
    }

    #[test]
    fn param_sizes_match_table_1_within_tolerance() {
        for model in Model::ALL {
            let built = model.build_with_batch(Mode::Inference, 2);
            let got = built.stats().param_mib();
            let want = model.paper_row().param_mib;
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.15,
                "{model}: {got:.2} MiB vs paper {want:.2} ({:.1}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for model in Model::ALL {
            assert_eq!(Model::from_name(model.name()), Some(model));
        }
        assert_eq!(Model::from_name("nope"), None);
    }

    #[test]
    fn default_batches_match_table_1() {
        assert_eq!(Model::AlexNetV2.default_batch(), 512);
        assert_eq!(Model::InceptionV3.default_batch(), 32);
        assert_eq!(Model::ResNet101V1.default_batch(), 64);
    }

    #[test]
    fn tiny_mlp_is_tiny() {
        let m = tiny_mlp(Mode::Training, 8);
        assert_eq!(m.params().len(), 4);
        assert!(m.stats().ops < 20);
    }

    #[test]
    fn batch_scaling_changes_flops_not_params() {
        let small = Model::Vgg16.build_with_batch(Mode::Inference, 16);
        let large = Model::Vgg16.build_with_batch(Mode::Inference, 32);
        assert_eq!(small.stats().param_bytes, large.stats().param_bytes);
        assert!(large.stats().flops > 1.9 * small.stats().flops);
    }
}
