//! ResNet-50/101, v1 (He et al. 2015) and v2 pre-activation (He et al.
//! 2016), bottleneck variants in TF-Slim layout.
//!
//! Parameter counting scheme (weights + one fused `[2,c]` BN tensor per
//! conv, weights+bias for the final FC) reproduces Table 1 exactly:
//! ResNet-50 v1 = 108 params, ResNet-101 v1 = 210, ResNet-50 v2 = 125
//! (per-block pre-activation BN + final post-norm BN), ResNet-101 v2 = 244.

use crate::layers::{Mode, NetBuilder, Norm, Padding, Tensor};
use tictac_graph::ModelGraph;

/// Which ResNet formulation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResNetVersion {
    /// Original post-activation residual units.
    V1,
    /// Pre-activation residual units with a final post-norm.
    V2,
}

/// Builds ResNet-50 v1 (blocks 3-4-6-3).
pub fn resnet_50_v1(mode: Mode, batch: usize) -> ModelGraph {
    resnet("resnet_v1_50", mode, batch, [3, 4, 6, 3], ResNetVersion::V1)
}

/// Builds ResNet-101 v1 (blocks 3-4-23-3).
pub fn resnet_101_v1(mode: Mode, batch: usize) -> ModelGraph {
    resnet(
        "resnet_v1_101",
        mode,
        batch,
        [3, 4, 23, 3],
        ResNetVersion::V1,
    )
}

/// Builds ResNet-50 v2 (blocks 3-4-6-3, pre-activation).
pub fn resnet_50_v2(mode: Mode, batch: usize) -> ModelGraph {
    resnet("resnet_v2_50", mode, batch, [3, 4, 6, 3], ResNetVersion::V2)
}

/// Builds ResNet-101 v2 (blocks 3-4-23-3, pre-activation).
pub fn resnet_101_v2(mode: Mode, batch: usize) -> ModelGraph {
    resnet(
        "resnet_v2_101",
        mode,
        batch,
        [3, 4, 23, 3],
        ResNetVersion::V2,
    )
}

fn resnet(
    name: &str,
    mode: Mode,
    batch: usize,
    blocks: [usize; 4],
    version: ResNetVersion,
) -> ModelGraph {
    let mut n = NetBuilder::new(name, batch);
    let x = n.input(224, 224, 3);
    let mut t = n.conv(x, "conv1", 7, 2, 64, Norm::FusedBn, Padding::Same);
    t = n.max_pool(t, "pool1", 3, 2, Padding::Same);

    let base_widths = [64usize, 128, 256, 512];
    for (stage, (&reps, &base)) in blocks.iter().zip(&base_widths).enumerate() {
        for unit in 0..reps {
            let stride = if stage > 0 && unit == 0 { 2 } else { 1 };
            let scope = format!("block{}/unit_{}", stage + 1, unit + 1);
            t = bottleneck(&mut n, t, &scope, base, stride, unit == 0, version);
        }
    }
    if version == ResNetVersion::V2 {
        t = n.bn_relu(t, "postnorm");
    }
    t = n.global_avg_pool(t, "pool5");
    let logits = n.fc(t, "logits", 1000);
    let out = n.softmax(logits, "predictions");
    n.finish(mode, out, &[])
}

/// A bottleneck residual unit: 1x1 reduce, 3x3, 1x1 expand (4x), with a
/// projection shortcut on the first unit of each stage.
fn bottleneck(
    n: &mut NetBuilder,
    input: Tensor,
    scope: &str,
    base: usize,
    stride: usize,
    project: bool,
    version: ResNetVersion,
) -> Tensor {
    let out_c = base * 4;
    // v2: pre-activation BN+ReLU shared by both branches.
    let preact = match version {
        ResNetVersion::V2 => n.bn_relu(input, &format!("{scope}/preact")),
        ResNetVersion::V1 => input,
    };
    let branch_in = match version {
        ResNetVersion::V2 => preact,
        ResNetVersion::V1 => input,
    };

    let shortcut = if project {
        n.conv_rect(
            branch_in,
            &format!("{scope}/shortcut"),
            (1, 1),
            stride,
            out_c,
            Norm::FusedBn,
            Padding::Same,
            false,
        )
    } else {
        input
    };

    let c1 = n.conv(
        branch_in,
        &format!("{scope}/conv1"),
        1,
        1,
        base,
        Norm::FusedBn,
        Padding::Same,
    );
    let c2 = n.conv(
        c1,
        &format!("{scope}/conv2"),
        3,
        stride,
        base,
        Norm::FusedBn,
        Padding::Same,
    );
    // Last conv: no activation before the residual add.
    let c3 = n.conv_rect(
        c2,
        &format!("{scope}/conv3"),
        (1, 1),
        1,
        out_c,
        Norm::FusedBn,
        Padding::Same,
        false,
    );
    let sum = n.add(shortcut, c3, &format!("{scope}/add"));
    match version {
        ResNetVersion::V1 => n.relu(sum, &format!("{scope}/relu")),
        ResNetVersion::V2 => sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(m: &ModelGraph, params: usize, mib: f64) {
        let s = m.stats();
        assert_eq!(s.params, params, "{} param count", m.name());
        let got = s.param_mib();
        assert!(
            (got - mib).abs() / mib < 0.06,
            "{} size {got:.2} MiB vs paper {mib}",
            m.name()
        );
    }

    #[test]
    fn resnet50_v1_matches_table_1() {
        check(&resnet_50_v1(Mode::Inference, 32), 108, 97.39);
    }

    #[test]
    fn resnet101_v1_matches_table_1() {
        check(&resnet_101_v1(Mode::Inference, 64), 210, 169.74);
    }

    #[test]
    fn resnet50_v2_matches_table_1() {
        check(&resnet_50_v2(Mode::Inference, 64), 125, 97.45);
    }

    #[test]
    fn resnet101_v2_matches_table_1() {
        check(&resnet_101_v2(Mode::Inference, 32), 244, 169.86);
    }

    #[test]
    fn resnet50_forward_flops_are_realistic() {
        // ~8 GFLOPs (2x ~4 GMACs) per image.
        let gf = resnet_50_v1(Mode::Inference, 1).stats().flops / 1e9;
        assert!((5.0..13.0).contains(&gf), "ResNet-50 forward GFLOPs {gf}");
    }

    #[test]
    fn v2_has_more_params_but_same_weight_bytes_scale() {
        let v1 = resnet_50_v1(Mode::Inference, 32).stats();
        let v2 = resnet_50_v2(Mode::Inference, 32).stats();
        assert!(v2.params > v1.params);
        // The extra BN tensors are tiny.
        assert!((v2.param_bytes as f64 / v1.param_bytes as f64) < 1.01);
    }

    #[test]
    fn deeper_network_has_more_ops() {
        let r50 = resnet_50_v1(Mode::Training, 32).stats().ops;
        let r101 = resnet_101_v1(Mode::Training, 32).stats().ops;
        assert!(r101 > r50 + 100);
    }
}
