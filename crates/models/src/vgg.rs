//! VGG-16 and VGG-19 (Simonyan & Zisserman, 2014), TF-Slim layout.
//!
//! Conv layers + 3 fully-connected layers, each with weights and bias:
//! 32 parameters / ≈527.8 MiB (VGG-16) and 38 / ≈548.1 MiB (VGG-19),
//! matching Table 1.

use crate::layers::{Mode, NetBuilder, Norm, Padding, Tensor};
use tictac_graph::ModelGraph;

/// Builds VGG-16 (13 convs: 2-2-3-3-3).
pub fn vgg_16(mode: Mode, batch: usize) -> ModelGraph {
    vgg(mode, batch, "vgg_16", &[2, 2, 3, 3, 3])
}

/// Builds VGG-19 (16 convs: 2-2-4-4-4).
pub fn vgg_19(mode: Mode, batch: usize) -> ModelGraph {
    vgg(mode, batch, "vgg_19", &[2, 2, 4, 4, 4])
}

fn vgg(mode: Mode, batch: usize, name: &str, convs_per_stage: &[usize]) -> ModelGraph {
    let widths = [64, 128, 256, 512, 512];
    let mut n = NetBuilder::new(name, batch);
    let mut t = n.input(224, 224, 3);
    for (stage, (&reps, &width)) in convs_per_stage.iter().zip(&widths).enumerate() {
        for i in 0..reps {
            t = n.conv(
                t,
                &format!("conv{}/conv{}_{}", stage + 1, stage + 1, i + 1),
                3,
                1,
                width,
                Norm::Bias,
                Padding::Same,
            );
        }
        t = n.max_pool(t, &format!("pool{}", stage + 1), 2, 2, Padding::Valid);
    }
    t = fc_relu(&mut n, t, "fc6", 4096);
    t = fc_relu(&mut n, t, "fc7", 4096);
    let logits = n.fc(t, "fc8", 1000);
    let out = n.softmax(logits, "predictions");
    n.finish(mode, out, &[])
}

fn fc_relu(n: &mut NetBuilder, t: Tensor, name: &str, width: usize) -> Tensor {
    let fc = n.fc(t, name, width);
    n.relu(fc, &format!("{name}/relu"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_matches_table_1() {
        let m = vgg_16(Mode::Inference, 32);
        let s = m.stats();
        assert_eq!(s.params, 32); // Table 1
        let mib = s.param_mib();
        assert!(
            (mib - 527.79).abs() / 527.79 < 0.03,
            "VGG-16 size {mib:.2} MiB vs paper 527.79"
        );
    }

    #[test]
    fn vgg19_matches_table_1() {
        let m = vgg_19(Mode::Inference, 32);
        let s = m.stats();
        assert_eq!(s.params, 38);
        let mib = s.param_mib();
        assert!(
            (mib - 548.05).abs() / 548.05 < 0.03,
            "VGG-19 size {mib:.2} MiB vs paper 548.05"
        );
    }

    #[test]
    fn vgg16_forward_flops_are_realistic() {
        // ~31 GFLOPs (2x 15.5 GMACs) per image.
        let gf = vgg_16(Mode::Inference, 1).stats().flops / 1e9;
        assert!((25.0..40.0).contains(&gf), "VGG-16 forward GFLOPs {gf}");
    }

    #[test]
    fn vgg19_is_deeper_than_vgg16() {
        let o16 = vgg_16(Mode::Inference, 32).stats().ops;
        let o19 = vgg_19(Mode::Inference, 32).stats().ops;
        assert!(o19 > o16);
    }
}
