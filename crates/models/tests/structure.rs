//! Structural integration tests over the full model zoo: every generator
//! must produce a graph whose shape supports the scheduling experiments.

use tictac_graph::{ModelGraph, ModelOpKind, ParamId};
use tictac_models::{Mode, Model};

fn for_all_models(mut f: impl FnMut(Model, &ModelGraph)) {
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Training, 2);
        f(model, &graph);
    }
}

#[test]
fn insertion_order_is_topological() {
    // ModelGraphBuilder only accepts backward references, so insertion
    // order must be a valid topological order.
    for_all_models(|model, g| {
        for (id, op) in g.ops_enumerated() {
            for pred in op.preds() {
                assert!(pred.index() < id.index(), "{model}: {id} before {pred}");
            }
        }
    });
}

#[test]
fn every_param_is_read_by_some_forward_op() {
    for_all_models(|model, g| {
        for i in 0..g.params().len() {
            let pid = ParamId::from_index(i);
            let read = g
                .ops()
                .iter()
                .any(|op| op.kind() != ModelOpKind::Backward && op.reads_params().contains(&pid));
            assert!(read, "{model}: param {} never read", g.param(pid).name());
        }
    });
}

#[test]
fn every_param_has_exactly_one_gradient_producer() {
    for_all_models(|model, g| {
        for i in 0..g.params().len() {
            let pid = ParamId::from_index(i);
            let producers = g
                .ops()
                .iter()
                .filter(|op| op.produces_grads().contains(&pid))
                .count();
            assert_eq!(producers, 1, "{model}: param {}", g.param(pid).name());
        }
    });
}

#[test]
fn training_graphs_have_one_loss_and_balanced_backward() {
    for_all_models(|model, g| {
        let losses = g
            .ops()
            .iter()
            .filter(|op| op.kind() == ModelOpKind::Loss)
            .count();
        assert_eq!(losses, 1, "{model}");
        let forward = g
            .ops()
            .iter()
            .filter(|op| op.kind() == ModelOpKind::Forward)
            .count();
        let backward = g
            .ops()
            .iter()
            .filter(|op| op.kind() == ModelOpKind::Backward)
            .count();
        assert_eq!(forward, backward, "{model}: one grad op per forward op");
    });
}

#[test]
fn backward_flops_dominate_forward_flops() {
    // The backward pass costs ~2x the forward pass for parametrized ops.
    for_all_models(|model, g| {
        let sum = |kind: ModelOpKind| -> f64 {
            g.ops()
                .iter()
                .filter(|op| op.kind() == kind)
                .map(|op| op.flops())
                .sum()
        };
        let fwd = sum(ModelOpKind::Forward);
        let bwd = sum(ModelOpKind::Backward);
        assert!(
            bwd > fwd && bwd < 2.5 * fwd,
            "{model}: fwd {fwd:.3e} bwd {bwd:.3e}"
        );
    });
}

#[test]
fn op_names_are_unique_within_a_model() {
    for_all_models(|model, g| {
        let mut names: Vec<&str> = g.ops().iter().map(|op| op.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "{model}: duplicate op names");
    });
}

#[test]
fn flops_scale_linearly_with_batch() {
    for model in [Model::ResNet50V1, Model::InceptionV2] {
        let b2 = model.build_with_batch(Mode::Inference, 2).stats().flops;
        let b8 = model.build_with_batch(Mode::Inference, 8).stats().flops;
        let ratio = b8 / b2;
        assert!((3.9..=4.1).contains(&ratio), "{model}: ratio {ratio}");
    }
}

#[test]
fn deeper_variants_strictly_extend_shallower_ones() {
    let pairs = [
        (Model::ResNet50V1, Model::ResNet101V1),
        (Model::ResNet50V2, Model::ResNet101V2),
        (Model::Vgg16, Model::Vgg19),
        (Model::InceptionV1, Model::InceptionV3),
    ];
    for (small, large) in pairs {
        let s = small.build_with_batch(Mode::Inference, 2).stats();
        let l = large.build_with_batch(Mode::Inference, 2).stats();
        assert!(l.ops > s.ops, "{small} vs {large}");
        assert!(l.flops > s.flops, "{small} vs {large}");
    }
}

#[test]
fn inference_graph_is_a_prefix_of_training_params() {
    // Both modes expose the same parameter census, in the same order.
    for model in Model::ALL {
        let inf = model.build_with_batch(Mode::Inference, 2);
        let tr = model.build_with_batch(Mode::Training, 2);
        assert_eq!(inf.params().len(), tr.params().len(), "{model}");
        for (a, b) in inf.params().iter().zip(tr.params()) {
            assert_eq!(a.name(), b.name(), "{model}");
            assert_eq!(a.bytes(), b.bytes(), "{model}");
        }
    }
}

#[test]
fn parameter_sizes_are_positive_and_plausible() {
    for_all_models(|model, g| {
        for p in g.params() {
            assert!(p.bytes() >= 4, "{model}: {} empty", p.name());
            assert!(
                p.bytes() < 512 << 20,
                "{model}: {} implausibly large",
                p.name()
            );
        }
    });
}
