//! Trace-derived analyzers: comm/compute overlap, realized scheduling
//! efficiency, and priority-inversion detection.
//!
//! All three consume an [`ExecutionTrace`] — *observed* behaviour — and
//! so double as correctness checks on the schedulers: TAC should realize
//! at least TIC's efficiency, TIC at least the unscheduled baseline's,
//! and a trace produced under TAC enforcement on in-order channels must
//! contain zero priority inversions against the TAC ranks.
//!
//! To keep the dependency graph acyclic (the schedulers depend on this
//! crate), [`priority_inversions`] takes a plain `Fn(OpId) -> Option<u64>`
//! priority closure rather than a `Schedule`.

use std::fmt::Write as _;

use tictac_graph::{ChannelId, DeviceId, Graph, OpId, Resource};
use tictac_timing::{SimDuration, SimTime};
use tictac_trace::ExecutionTrace;

/// How one channel was used over an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelUsage {
    /// The channel.
    pub channel: ChannelId,
    /// Total time the channel carried a transfer.
    pub busy: SimDuration,
    /// Makespan minus busy time.
    pub idle: SimDuration,
    /// Payload bytes moved (summed over completed transfers).
    pub bytes: u64,
    /// Number of completed transfers.
    pub transfers: usize,
}

impl ChannelUsage {
    /// Busy fraction of the iteration, in `[0, 1]`.
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / makespan.as_secs_f64()
        }
    }
}

/// How one device's compute unit was used over an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceUsage {
    /// The device.
    pub device: DeviceId,
    /// Total time the device ran compute ops.
    pub busy: SimDuration,
    /// Number of completed compute ops.
    pub ops: usize,
}

/// The per-iteration comm/compute overlap and channel-idle report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapReport {
    /// The iteration makespan.
    pub makespan: SimDuration,
    /// Per-channel usage, in channel order.
    pub channels: Vec<ChannelUsage>,
    /// Per-device compute usage, in device order.
    pub devices: Vec<DeviceUsage>,
    /// Union busy time of all channels (wall-clock with ≥1 transfer in
    /// flight anywhere).
    pub comm_busy: SimDuration,
    /// Union busy time of all compute units.
    pub compute_busy: SimDuration,
    /// Wall-clock time where communication and computation proceeded
    /// simultaneously — the quantity TicTac maximizes.
    pub overlap: SimDuration,
}

impl OverlapReport {
    /// Fraction of communication time hidden under compute, in `[0, 1]`.
    pub fn overlap_frac(&self) -> f64 {
        if self.comm_busy.is_zero() {
            0.0
        } else {
            self.overlap.as_secs_f64() / self.comm_busy.as_secs_f64()
        }
    }

    /// The usage row for `channel`, if it exists.
    pub fn channel(&self, channel: ChannelId) -> Option<&ChannelUsage> {
        self.channels.iter().find(|c| c.channel == channel)
    }

    /// Renders the report as aligned text lines.
    pub fn render(&self, graph: &Graph) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan {:.3} ms | comm busy {:.3} ms | compute busy {:.3} ms | overlap {:.3} ms ({:.1}% of comm)",
            self.makespan.as_millis_f64(),
            self.comm_busy.as_millis_f64(),
            self.compute_busy.as_millis_f64(),
            self.overlap.as_millis_f64(),
            100.0 * self.overlap_frac()
        );
        for ch in &self.channels {
            let c = graph.channel(ch.channel);
            let _ = writeln!(
                out,
                "  ch{} {}<->{}: busy {:.3} ms, idle {:.3} ms, {} transfers, {} bytes, {:.1}% util",
                ch.channel.index(),
                graph.device(c.worker()).name(),
                graph.device(c.ps()).name(),
                ch.busy.as_millis_f64(),
                ch.idle.as_millis_f64(),
                ch.transfers,
                ch.bytes,
                100.0 * ch.utilization(self.makespan)
            );
        }
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  {} [compute]: busy {:.3} ms, {} ops",
                graph.device(d.device).name(),
                d.busy.as_millis_f64(),
                d.ops
            );
        }
        out
    }
}

/// Sorts and merges half-open nanosecond intervals into a disjoint union.
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, last_e)) if s <= *last_e => *last_e = (*last_e).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total_ns(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

/// Total length of the intersection of two disjoint sorted interval sets.
fn intersection_ns(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Computes the per-iteration [`OverlapReport`] for `trace`.
///
/// Transfer intervals are taken from executed recv ops (sends share the
/// interval); compute intervals from executed compute ops. Busy time per
/// resource is the union of its intervals, so overlapping retransmit
/// bookkeeping can never double-count.
pub fn overlap_report(graph: &Graph, trace: &ExecutionTrace) -> OverlapReport {
    let makespan = trace.makespan();
    let n_channels = graph.channels().len();
    let mut chan_iv: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_channels];
    let mut chan_bytes = vec![0u64; n_channels];
    let mut chan_transfers = vec![0usize; n_channels];
    let n_devices = graph.devices().len();
    let mut dev_iv: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_devices];
    let mut dev_ops = vec![0usize; n_devices];

    for (id, op) in graph.ops() {
        let Some(rec) = trace.record(id) else {
            continue;
        };
        if op.kind().is_send() {
            continue;
        }
        let (start, end) = (rec.start.as_nanos(), rec.end.as_nanos());
        match graph.resource(id) {
            Resource::Channel(c) => {
                chan_iv[c.index()].push((start, end));
                chan_bytes[c.index()] += op.cost().bytes;
                chan_transfers[c.index()] += 1;
            }
            Resource::Compute(d) => {
                dev_iv[d.index()].push((start, end));
                dev_ops[d.index()] += 1;
            }
        }
    }

    let mut all_comm = Vec::new();
    let channels = (0..n_channels)
        .map(|i| {
            let merged = merge_intervals(std::mem::take(&mut chan_iv[i]));
            let busy = SimDuration::from_nanos(total_ns(&merged));
            all_comm.extend_from_slice(&merged);
            ChannelUsage {
                channel: ChannelId::from_index(i),
                busy,
                idle: makespan.saturating_sub(busy),
                bytes: chan_bytes[i],
                transfers: chan_transfers[i],
            }
        })
        .collect();

    let mut all_compute = Vec::new();
    let devices = (0..n_devices)
        .map(|i| {
            let merged = merge_intervals(std::mem::take(&mut dev_iv[i]));
            let busy = SimDuration::from_nanos(total_ns(&merged));
            all_compute.extend_from_slice(&merged);
            DeviceUsage {
                device: DeviceId::from_index(i),
                busy,
                ops: dev_ops[i],
            }
        })
        .collect();

    let comm = merge_intervals(all_comm);
    let compute = merge_intervals(all_compute);
    OverlapReport {
        makespan,
        channels,
        devices,
        comm_busy: SimDuration::from_nanos(total_ns(&comm)),
        compute_busy: SimDuration::from_nanos(total_ns(&compute)),
        overlap: SimDuration::from_nanos(intersection_ns(&comm, &compute)),
    }
}

/// One worker's observed makespan bounds (paper Equations 1–3 with
/// measured durations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerEfficiency {
    /// The worker.
    pub device: DeviceId,
    /// Equation 1: `U = Σ Time(op)` over the worker's ops.
    pub upper: SimDuration,
    /// Equation 2: the bottleneck resource's load `L`.
    pub lower: SimDuration,
    /// When the worker's last op finished.
    pub finish: SimDuration,
    /// Equation 3: `E = (U − m) / (U − L)`, clamped to `[0, 1]`.
    pub efficiency: f64,
    /// Equation 4: `S = (U − L) / L`.
    pub speedup_potential: f64,
}

/// Realized scheduling efficiency of one iteration, per worker and
/// overall (the slowest worker's).
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedEfficiency {
    /// Per-worker reports, in worker order.
    pub per_worker: Vec<WorkerEfficiency>,
    /// The iteration's efficiency: the minimum clamped per-worker value
    /// (1.0 when there are no workers).
    pub efficiency: f64,
    /// The last worker's speedup potential (matching the training
    /// session's bookkeeping).
    pub speedup_potential: f64,
}

/// Computes the paper's scheduling-efficiency metric (§3.2, Equations
/// 1–4) from *observed* per-op durations, per worker partition.
///
/// Agrees with `tictac_sched::efficiency::evaluate` over each worker's
/// ops with `trace.duration` as the duration oracle and the worker's
/// device-finish time as the measured makespan; the top-level
/// `tests/observability.rs` pins that agreement.
pub fn realized_efficiency(graph: &Graph, trace: &ExecutionTrace) -> RealizedEfficiency {
    let mut per_worker = Vec::new();
    let mut min_e = 1.0_f64;
    let mut potential = 0.0;
    for w in graph.workers() {
        let ops: Vec<OpId> = graph.ops_on(w).collect();
        let upper: SimDuration = ops.iter().map(|&op| trace.duration(op)).sum();
        let mut per_resource: std::collections::HashMap<Resource, SimDuration> =
            std::collections::HashMap::new();
        for &op in &ops {
            *per_resource
                .entry(graph.resource(op))
                .or_insert(SimDuration::ZERO) += trace.duration(op);
        }
        let lower = per_resource
            .into_values()
            .max()
            .unwrap_or(SimDuration::ZERO);
        let finish = trace
            .device_finish(graph, w)
            .map(|t| t.duration_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO);
        let span = upper.saturating_sub(lower);
        let efficiency = if span.is_zero() {
            1.0
        } else {
            ((upper.as_secs_f64() - finish.as_secs_f64()) / span.as_secs_f64()).clamp(0.0, 1.0)
        };
        let speedup_potential = if lower.is_zero() {
            0.0
        } else {
            span.as_secs_f64() / lower.as_secs_f64()
        };
        min_e = min_e.min(efficiency);
        potential = speedup_potential;
        per_worker.push(WorkerEfficiency {
            device: w,
            upper,
            lower,
            finish,
            efficiency,
            speedup_potential,
        });
    }
    RealizedEfficiency {
        per_worker,
        efficiency: min_e,
        speedup_potential: potential,
    }
}

/// One detected priority inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InversionRecord {
    /// The channel it happened on.
    pub channel: ChannelId,
    /// The transfer that started out of turn.
    pub started: OpId,
    /// The higher-priority transfer that was already runnable but had not
    /// started (the best-ranked such witness).
    pub preempted: OpId,
    /// When the out-of-turn transfer started.
    pub at: SimTime,
}

/// All priority inversions of one trace against one priority assignment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InversionReport {
    /// Every offending transfer, one record each, in channel-then-time
    /// order.
    pub records: Vec<InversionRecord>,
}

impl InversionReport {
    /// Number of transfers that started out of turn.
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// Inversions on one channel.
    pub fn on_channel(&self, channel: ChannelId) -> usize {
        self.records.iter().filter(|r| r.channel == channel).count()
    }
}

/// When transfer `recv` became runnable: the completion of the last
/// predecessor of its paired send op (a transfer can be enqueued only
/// once its payload exists). Falls back to the recv's own non-send
/// predecessors, then to time zero for root transfers.
fn runnable_at(graph: &Graph, trace: &ExecutionTrace, recv: OpId) -> SimTime {
    let send = graph
        .preds(recv)
        .iter()
        .copied()
        .find(|&p| graph.op(p).kind().is_send());
    let preds: &[OpId] = match send {
        Some(s) => graph.preds(s),
        None => graph.preds(recv),
    };
    preds
        .iter()
        .filter(|&&p| !graph.op(p).kind().is_send())
        .filter_map(|&p| trace.record(p))
        .map(|r| r.end)
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// Detects priority inversions: transfers that *started* on a channel
/// while a higher-priority transfer was already runnable on that channel
/// but had not started.
///
/// `priority` is the reference rank (lower = more urgent) — typically a
/// TAC or TIC schedule's assignment; transfers it leaves unranked are
/// ignored. Each offending transfer is counted once, with the
/// best-ranked waiting transfer as witness. Under sender-side rank
/// enforcement on in-order channels (reorder error 0) the count is
/// provably zero: the engine never pops a transfer while a runnable
/// lower-rank one is queued.
pub fn priority_inversions(
    graph: &Graph,
    trace: &ExecutionTrace,
    priority: impl Fn(OpId) -> Option<u64>,
) -> InversionReport {
    let n_channels = graph.channels().len();
    let mut per_channel: Vec<Vec<(u64, OpId, SimTime)>> = vec![Vec::new(); n_channels];
    for (id, op) in graph.ops() {
        if !op.kind().is_recv() {
            continue;
        }
        let Some(rank) = priority(id) else { continue };
        let Resource::Channel(c) = graph.resource(id) else {
            continue;
        };
        if let Some(rec) = trace.record(id) {
            per_channel[c.index()].push((rank, id, rec.start));
        }
    }

    let mut records = Vec::new();
    for (ci, transfers) in per_channel.iter().enumerate() {
        for &(rank_a, a, start_a) in transfers {
            // The best-ranked transfer that outranks A, was runnable by
            // A's start, and had not started yet.
            let witness = transfers
                .iter()
                .filter(|&&(rank_b, _, start_b)| rank_b < rank_a && start_b > start_a)
                .filter(|&&(_, b, _)| runnable_at(graph, trace, b) <= start_a)
                .min_by_key(|&&(rank_b, _, _)| rank_b);
            if let Some(&(_, b, _)) = witness {
                records.push(InversionRecord {
                    channel: ChannelId::from_index(ci),
                    started: a,
                    preempted: b,
                    at: start_a,
                });
            }
        }
    }
    records.sort_by_key(|r| (r.channel.index(), r.at, r.started.index()));
    InversionReport { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};
    use tictac_trace::TraceBuilder;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// One worker, one channel, two root transfers feeding two computes.
    fn sample() -> (Graph, Vec<OpId>) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("p1", 100);
        let p2 = b.add_param("p2", 200);
        let r1 = b.add_op("r1", w, OpKind::recv(p1, ch), Cost::bytes(100), &[]);
        let r2 = b.add_op("r2", w, OpKind::recv(p2, ch), Cost::bytes(200), &[]);
        let c1 = b.add_op("c1", w, OpKind::Compute, Cost::flops(1.0), &[r1]);
        let c2 = b.add_op("c2", w, OpKind::Compute, Cost::flops(1.0), &[c1, r2]);
        (b.build().unwrap(), vec![r1, r2, c1, c2])
    }

    #[test]
    fn overlap_report_measures_busy_idle_and_overlap() {
        let (g, ops) = sample();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(100)); // r1 transfer
        tb.record(ops[1], t(100), t(300)); // r2 transfer
        tb.record(ops[2], t(150), t(250)); // c1 overlaps r2 fully
        tb.record(ops[3], t(300), t(400)); // c2 after comms
        let report = overlap_report(&g, &tb.finish());
        assert_eq!(report.makespan, SimDuration::from_nanos(400));
        assert_eq!(report.comm_busy, SimDuration::from_nanos(300));
        assert_eq!(report.compute_busy, SimDuration::from_nanos(200));
        assert_eq!(report.overlap, SimDuration::from_nanos(100));
        let ch = &report.channels[0];
        assert_eq!(ch.busy, SimDuration::from_nanos(300));
        assert_eq!(ch.idle, SimDuration::from_nanos(100));
        assert_eq!(ch.bytes, 300);
        assert_eq!(ch.transfers, 2);
        assert!((ch.utilization(report.makespan) - 0.75).abs() < 1e-12);
        assert!((report.overlap_frac() - 1.0 / 3.0).abs() < 1e-12);
        let text = report.render(&g);
        assert!(text.contains("overlap"));
        assert!(text.contains("ch0"));
    }

    #[test]
    fn interval_union_never_double_counts() {
        let merged = merge_intervals(vec![(0, 10), (5, 15), (20, 30), (30, 35)]);
        assert_eq!(merged, vec![(0, 15), (20, 35)]);
        assert_eq!(total_ns(&merged), 30);
        assert_eq!(intersection_ns(&merged, &[(10, 25)]), 10);
        assert_eq!(intersection_ns(&merged, &[]), 0);
    }

    #[test]
    fn realized_efficiency_matches_hand_computation() {
        let (g, ops) = sample();
        let mut tb = TraceBuilder::new(g.len());
        // Perfect overlap: transfers 0-100/100-300, computes 100-200/300-400.
        tb.record(ops[0], t(0), t(100));
        tb.record(ops[1], t(100), t(300));
        tb.record(ops[2], t(100), t(200));
        tb.record(ops[3], t(300), t(400));
        let r = realized_efficiency(&g, &tb.finish());
        // U = 100+200+100+100 = 500, L = max(channel 300, compute 200) = 300,
        // m = 400 → E = (500-400)/(500-300) = 0.5, S = 200/300.
        assert_eq!(r.per_worker.len(), 1);
        assert_eq!(r.per_worker[0].upper, SimDuration::from_nanos(500));
        assert_eq!(r.per_worker[0].lower, SimDuration::from_nanos(300));
        assert!((r.efficiency - 0.5).abs() < 1e-12);
        assert!((r.speedup_potential - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn inversion_detected_when_ranked_transfer_jumps_queue() {
        let (g, ops) = sample();
        // Reference ranks: r1 more urgent than r2.
        let rank = |op: OpId| match op {
            o if o == ops[0] => Some(0),
            o if o == ops[1] => Some(1),
            _ => None,
        };
        // Inverted execution: r2 runs first even though r1 (a root, runnable
        // at t=0) is waiting.
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[1], t(0), t(200));
        tb.record(ops[0], t(200), t(300));
        tb.record(ops[2], t(300), t(350));
        tb.record(ops[3], t(350), t(400));
        let report = priority_inversions(&g, &tb.finish(), rank);
        assert_eq!(report.count(), 1);
        assert_eq!(report.records[0].started, ops[1]);
        assert_eq!(report.records[0].preempted, ops[0]);
        assert_eq!(report.on_channel(ChannelId::from_index(0)), 1);

        // In-order execution: no inversions.
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(100));
        tb.record(ops[1], t(100), t(300));
        tb.record(ops[2], t(100), t(200));
        tb.record(ops[3], t(300), t(400));
        assert_eq!(priority_inversions(&g, &tb.finish(), rank).count(), 0);
    }

    #[test]
    fn later_runnable_transfer_is_not_an_inversion() {
        // A high-priority transfer whose payload is produced late cannot be
        // "preempted" by earlier transfers.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("p1", 10);
        let p2 = b.add_param("p2", 10);
        let grad = b.add_op("grad", ps, OpKind::Compute, Cost::flops(1.0), &[]);
        let s1 = b.add_op("s1", ps, OpKind::send(p1, ch), Cost::bytes(10), &[grad]);
        let r1 = b.add_op("r1", w, OpKind::recv(p1, ch), Cost::bytes(10), &[s1]);
        let r2 = b.add_op("r2", w, OpKind::recv(p2, ch), Cost::bytes(10), &[]);
        let g = b.build().unwrap();
        let rank = move |op: OpId| {
            if op == r1 {
                Some(0)
            } else if op == r2 {
                Some(1)
            } else {
                None
            }
        };
        let mut tb = TraceBuilder::new(g.len());
        tb.record(grad, t(0), t(500)); // r1's payload ready only at 500
        tb.record(s1, t(500), t(600));
        tb.record(r2, t(0), t(100)); // starts while r1 is NOT yet runnable
        tb.record(r1, t(500), t(600));
        assert_eq!(priority_inversions(&g, &tb.finish(), rank).count(), 0);

        // But if r2 started after the payload was ready, it is an inversion.
        let mut tb = TraceBuilder::new(g.len());
        tb.record(grad, t(0), t(500));
        tb.record(s1, t(500), t(600));
        tb.record(r2, t(550), t(650));
        tb.record(r1, t(650), t(750));
        let report = priority_inversions(&g, &tb.finish(), rank);
        assert_eq!(report.count(), 1);
        assert_eq!(report.records[0].preempted, r1);
    }

    #[test]
    fn unranked_transfers_are_ignored() {
        let (g, ops) = sample();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[1], t(0), t(200));
        tb.record(ops[0], t(200), t(300));
        let report = priority_inversions(&g, &tb.finish(), |_| None);
        assert_eq!(report.count(), 0);
    }
}
