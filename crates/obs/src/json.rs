//! A minimal JSON value, parser, and string writer.
//!
//! The build environment vendors no JSON crate, so the workspace
//! hand-rolls the little it needs: the bench harness renders and
//! validates `BENCH_results.json` with it, and the Perfetto exporter's
//! validator ([`crate::perfetto::validate_perfetto`]) parses trace files
//! back. Lives here (rather than in `bench`) so both sides share one
//! implementation.

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (the workspace vendors no JSON crate).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("json error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected {word}"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(&format!("unexpected {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("json error at byte {}: invalid utf-8", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return self.err("raw control character in string");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(&format!("bad number {text:?}")),
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a\n\"bA": [1, -2.5e1, true, null, {}]}"#).unwrap();
        let arr = v.get("a\n\"bA").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1, 2", "{\"a\": }", "{} trailing", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        // Round-trip through the parser.
        assert_eq!(
            parse_json(&quote("tab\there")).unwrap(),
            Json::Str("tab\there".into())
        );
    }
}
