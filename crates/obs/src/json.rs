//! A minimal JSON value, parser, and string writer.
//!
//! The build environment vendors no JSON crate, so the workspace
//! hand-rolls the little it needs: the bench harness renders and
//! validates `BENCH_results.json` with it, the run store
//! (`tictac-store`) encodes and strictly decodes its JSONL records with
//! it, and the Perfetto exporter's validator
//! ([`crate::perfetto::validate_perfetto`]) parses trace files back.
//! Lives here (rather than in `bench`) so every side shares one
//! implementation: [`Json`] is the value type, [`parse_json`] the
//! parser, and [`render_json`] / [`render_json_pretty`] the writers.
//!
//! Writer invariant: numbers are emitted in Rust's shortest `Display`
//! form, which round-trips exactly through [`parse_json`] — for any
//! finite tree, `render(parse(render(v))) == render(v)` byte for byte.
//! The run store's byte-exact append-only guarantee rests on this.
//! (The Perfetto exporter keeps its own historical formatting because
//! its output bytes are pinned by a golden snapshot.)

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (the workspace vendors no JSON crate).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields in source order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Formats a JSON number: Rust's shortest `Display` representation,
/// which never uses exponent notation and round-trips exactly through
/// `str::parse::<f64>`. Non-finite values have no JSON spelling and
/// render as `null`; writers that must reject them should validate
/// before rendering.
fn fmt_num(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else {
        "null".to_string()
    }
}

fn render_into(value: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (open_sep, item_sep, close_sep) = match indent {
        Some(width) => (
            format!("\n{}", " ".repeat(width * (depth + 1))),
            format!(",\n{}", " ".repeat(width * (depth + 1))),
            format!("\n{}", " ".repeat(width * depth)),
        ),
        None => (String::new(), ",".to_string(), String::new()),
    };
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&fmt_num(*n)),
        Json::Str(s) => out.push_str(&quote(s)),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                render_into(item, indent, depth + 1, out);
            }
            out.push_str(&close_sep);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                out.push_str(&quote(key));
                out.push_str(if indent.is_some() { ": " } else { ":" });
                render_into(item, indent, depth + 1, out);
            }
            out.push_str(&close_sep);
            out.push('}');
        }
    }
}

/// Renders a JSON value compactly (no whitespace), in shortest-number
/// form. This is the run store's canonical single-line encoding:
/// `render_json(&parse_json(&render_json(v))?) == render_json(v)` for
/// any tree of finite numbers.
pub fn render_json(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, None, 0, &mut out);
    out
}

/// Renders a JSON value pretty-printed with two-space indentation, one
/// field or element per line (the layout of `BENCH_results.json`).
pub fn render_json_pretty(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, Some(2), 0, &mut out);
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("json error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected {word}"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(&format!("unexpected {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("json error at byte {}: invalid utf-8", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return self.err("raw control character in string");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(&format!("bad number {text:?}")),
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a\n\"bA": [1, -2.5e1, true, null, {}]}"#).unwrap();
        let arr = v.get("a\n\"bA").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1, 2", "{\"a\": }", "{} trailing", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn writer_roundtrips_byte_exactly() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Num(-2.5e-3)),
            ("big".into(), Json::Num(9007199254740991.0)), // 2^53 - 1
            ("s".into(), Json::Str("tab\there \"q\"".into())),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Obj(vec![])]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let compact = render_json(&v);
        assert!(!compact.contains('\n'));
        let reparsed = parse_json(&compact).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(render_json(&reparsed), compact, "byte-exact round trip");
        // Pretty output parses back to the same tree.
        let pretty = render_json_pretty(&v);
        assert!(pretty.contains("\n  \"a\": 1,"));
        assert_eq!(parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn writer_numbers_are_shortest_form() {
        assert_eq!(render_json(&Json::Num(1.0)), "1");
        assert_eq!(render_json(&Json::Num(0.1)), "0.1");
        assert_eq!(render_json(&Json::Num(-25.0)), "-25");
        // Non-finite numbers have no JSON spelling.
        assert_eq!(render_json(&Json::Num(f64::NAN)), "null");
        assert_eq!(render_json(&Json::Num(f64::INFINITY)), "null");
    }

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        // Round-trip through the parser.
        assert_eq!(
            parse_json(&quote("tab\there")).unwrap(),
            Json::Str("tab\there".into())
        );
    }
}
