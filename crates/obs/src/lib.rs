//! Observability for the TicTac reproduction: a metrics registry, a
//! Perfetto/Chrome `trace_event` exporter, and trace-derived analyzers.
//!
//! TicTac's argument is entirely about *when* transfers happen relative to
//! compute (PAPER.md §3–4). This crate turns the raw [`ExecutionTrace`]
//! produced by the simulator into quantities one can inspect:
//!
//! - [`registry`] — counters, gauges, fixed-bucket histograms, and
//!   monotonic timers behind zero-cost-when-disabled handles. The sim
//!   engine, the schedulers, and the training session register into a
//!   shared [`Registry`]; with the registry disabled, the handles hold no
//!   allocation and the instrumented code paths are byte-identical in
//!   behaviour (the golden-trace fingerprints pin this).
//! - [`perfetto`] — renders a trace as Chrome `trace_event` JSON: one lane
//!   per device compute unit and per channel, compute/transfer slices,
//!   fault events as instants, and degraded-barrier deferrals as flow
//!   arrows. Open the output in <https://ui.perfetto.dev>.
//! - [`analyze`] — the derived reports: per-channel busy/idle and
//!   comm/compute overlap ([`analyze::overlap_report`]), the paper's
//!   scheduling-efficiency metric computed from *observed* durations
//!   ([`analyze::realized_efficiency`]), and a priority-inversion detector
//!   ([`analyze::priority_inversions`]) counting transfers that started
//!   while a higher-priority transfer was already runnable on the same
//!   channel.
//! - [`json`] — the workspace's hand-rolled JSON value/parser/writer
//!   (the build environment vendors no JSON crate), shared with the bench
//!   harness and the run store (`tictac-store`).
//!
//! Dependency discipline: this crate sees only `graph`, `timing`, and
//! `trace`. The schedulers and the simulator depend on *it*, so the
//! analyzers take plain closures (e.g. a priority function) instead of
//! scheduler types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod json;
pub mod perfetto;
pub mod registry;

pub use analyze::{
    overlap_report, priority_inversions, realized_efficiency, ChannelUsage, DeviceUsage,
    InversionRecord, InversionReport, OverlapReport, RealizedEfficiency,
};
pub use json::{parse_json, quote, render_json, render_json_pretty, Json};
pub use perfetto::{perfetto_json, validate_perfetto, PerfettoStats};
pub use registry::{
    BucketHistogram, Counter, Gauge, HistogramStats, MetricValue, Registry, Snapshot, Timer,
    TimerGuard, TimerStats,
};

use tictac_trace::ExecutionTrace;

/// Convenience re-export target so dependents can name the trace type the
/// analyzers and exporter consume without also importing `tictac-trace`.
pub type Trace = ExecutionTrace;
