//! Chrome/Perfetto `trace_event` export of an [`ExecutionTrace`].
//!
//! The exporter renders one *process* per device and one *thread* (lane)
//! per resource: a device's compute unit is its thread 0, and each
//! channel is a thread of its worker's process. Emitted events:
//!
//! - `"M"` metadata naming every process and lane,
//! - `"X"` complete slices for compute ops and transfers (send ops are
//!   skipped — their interval duplicates the paired recv),
//! - `"i"` instants for fault events, named after the
//!   [`FaultEventKind`] variant and placed on the lane of the affected
//!   resource,
//! - `"s"`/`"f"` flow arrows from the degraded barrier's lane to each
//!   deferred op's lane, making "which ops did the barrier abandon"
//!   visible as arrows in the UI.
//!
//! Timestamps are microseconds with fixed three-decimal precision, so
//! identical traces always serialize byte-identically (the golden
//! snapshot test pins this). Open the output at <https://ui.perfetto.dev>
//! or `chrome://tracing`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tictac_graph::{Graph, OpId, Resource};
use tictac_timing::SimTime;
use tictac_trace::{ExecutionTrace, FaultEventKind};

use crate::json::{parse_json, quote, Json};

/// The synthetic pid hosting barrier/iteration-scope events: one past the
/// last device pid.
fn barrier_pid(graph: &Graph) -> usize {
    graph.devices().len()
}

/// `(pid, tid)` of the lane a resource renders on.
fn lane(graph: &Graph, resource: Resource) -> (usize, usize) {
    match resource {
        Resource::Compute(d) => (d.index(), 0),
        Resource::Channel(c) => {
            let ch = graph.channel(c);
            (ch.worker().index(), 1 + c.index())
        }
    }
}

/// Microseconds with fixed 3-decimal precision (nanosecond resolution).
fn us(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1000.0)
}

/// Renders `trace` as Chrome `trace_event` JSON (the object format).
///
/// `label` names the trace in the `otherData` block — typically
/// `"model=alexnet_v2 schedule=tac iteration=0"`.
pub fn perfetto_json(graph: &Graph, trace: &ExecutionTrace, label: &str) -> String {
    let mut out = String::from("{\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    // Metadata: process and lane names. Devices first, then the barrier
    // process, then channel lanes in channel order.
    for (pid, dev) in graph.devices().iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                quote(dev.name())
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"compute\"}}}}"
            ),
            &mut out,
        );
    }
    let bpid = barrier_pid(graph);
    push(
        format!(
            "{{\"ph\":\"M\",\"pid\":{bpid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"barrier\"}}}}"
        ),
        &mut out,
    );
    for ch in graph.channels() {
        let (pid, tid) = lane(graph, Resource::Channel(ch.id()));
        let name = format!("ch{} -> {}", ch.id().index(), graph.device(ch.ps()).name());
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                quote(&name)
            ),
            &mut out,
        );
    }

    // Complete slices, one per executed op (sends skipped).
    for (id, op) in graph.ops() {
        let Some(rec) = trace.record(id) else {
            continue;
        };
        if op.kind().is_send() {
            continue;
        }
        let resource = graph.resource(id);
        let (pid, tid) = lane(graph, resource);
        let cat = if resource.is_channel() {
            "transfer"
        } else {
            "compute"
        };
        let mut args = format!("\"op\":{}", id.index());
        if resource.is_channel() {
            let _ = write!(args, ",\"bytes\":{}", op.cost().bytes);
        }
        push(
            format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"{cat}\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                quote(graph.op_name(id)),
                us(rec.start),
                us(SimTime::from_nanos(rec.duration().as_nanos())),
            ),
            &mut out,
        );
    }

    // Fault events as thread-scoped instants on the affected lane, plus a
    // flow arrow from the barrier lane to each deferred op's lane.
    let mut flow_id = 0usize;
    for event in trace.fault_events() {
        let (name, lane_at, args) = fault_instant(graph, event.kind);
        let (pid, tid) = lane_at;
        push(
            format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"cat\":\"fault\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                us(event.at),
            ),
            &mut out,
        );
        if let FaultEventKind::DeferredOp { op } = event.kind {
            flow_id += 1;
            let (dpid, dtid) = lane(graph, graph.resource(op));
            push(
                format!(
                    "{{\"ph\":\"s\",\"name\":\"deferred\",\"cat\":\"flow\",\"id\":{flow_id},\"ts\":{},\"pid\":{bpid},\"tid\":0}}",
                    us(event.at),
                ),
                &mut out,
            );
            push(
                format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"deferred\",\"cat\":\"flow\",\"id\":{flow_id},\"ts\":{},\"pid\":{dpid},\"tid\":{dtid}}}",
                    us(event.at),
                ),
                &mut out,
            );
        }
    }

    let _ = write!(
        out,
        "\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {{\"label\": {}, \"makespan_ns\": {}}}\n}}\n",
        quote(label),
        trace.makespan().as_nanos()
    );
    out
}

/// The instant name (the `FaultEventKind` variant), lane, and args for a
/// fault event.
fn fault_instant(graph: &Graph, kind: FaultEventKind) -> (&'static str, (usize, usize), String) {
    let op_lane = |op: OpId| lane(graph, graph.resource(op));
    match kind {
        FaultEventKind::TransferDropped { op, attempt } => (
            "TransferDropped",
            op_lane(op),
            format!("\"op\":{},\"attempt\":{attempt}", op.index()),
        ),
        FaultEventKind::TransferTimeout { op, attempt } => (
            "TransferTimeout",
            op_lane(op),
            format!("\"op\":{},\"attempt\":{attempt}", op.index()),
        ),
        FaultEventKind::Retransmit { op, attempt } => (
            "Retransmit",
            op_lane(op),
            format!("\"op\":{},\"attempt\":{attempt}", op.index()),
        ),
        FaultEventKind::BlackoutStart { channel } => (
            "BlackoutStart",
            lane(graph, Resource::Channel(channel)),
            format!("\"channel\":{}", channel.index()),
        ),
        FaultEventKind::BlackoutEnd { channel } => (
            "BlackoutEnd",
            lane(graph, Resource::Channel(channel)),
            format!("\"channel\":{}", channel.index()),
        ),
        FaultEventKind::WorkerCrashed { device } => (
            "WorkerCrashed",
            (device.index(), 0),
            format!("\"device\":{}", device.index()),
        ),
        FaultEventKind::WorkerRecovered { device } => (
            "WorkerRecovered",
            (device.index(), 0),
            format!("\"device\":{}", device.index()),
        ),
        FaultEventKind::PsStallStart { device } => (
            "PsStallStart",
            (device.index(), 0),
            format!("\"device\":{}", device.index()),
        ),
        FaultEventKind::PsStallEnd { device } => (
            "PsStallEnd",
            (device.index(), 0),
            format!("\"device\":{}", device.index()),
        ),
        FaultEventKind::StragglerApplied { device } => (
            "StragglerApplied",
            (device.index(), 0),
            format!("\"device\":{}", device.index()),
        ),
        FaultEventKind::DeferredOp { op } => {
            ("DeferredOp", op_lane(op), format!("\"op\":{}", op.index()))
        }
        FaultEventKind::BarrierDegraded { remaining } => (
            "BarrierDegraded",
            (barrier_pid(graph), 0),
            format!("\"remaining\":{remaining}"),
        ),
    }
}

/// Summary statistics of a parsed `trace_event` document, from
/// [`validate_perfetto`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerfettoStats {
    /// Total events of any phase.
    pub events: usize,
    /// `"X"` complete slices.
    pub slices: usize,
    /// `"i"` instants.
    pub instants: usize,
    /// `"s"` flow starts.
    pub flow_starts: usize,
    /// `"f"` flow ends.
    pub flow_ends: usize,
    /// Every process name declared in `"M"` metadata (name-sorted),
    /// whether or not any slice landed in its lanes.
    pub processes: Vec<String>,
    /// Slice count per process name (name-sorted).
    pub slices_per_process: Vec<(String, usize)>,
    /// Names of `cat:"fault"` instants, in document order.
    pub fault_names: Vec<String>,
}

/// Parses `src` as `trace_event` JSON and checks its structural
/// invariants: a `traceEvents` array whose slices carry name/ts/dur and a
/// known lane, instants carry name/ts, and every flow start has a
/// matching end. Returns summary stats on success.
pub fn validate_perfetto(src: &str) -> Result<PerfettoStats, String> {
    let doc = parse_json(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing array field \"traceEvents\"")?;

    let mut stats = PerfettoStats {
        events: events.len(),
        ..PerfettoStats::default()
    };
    let mut process_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut slices_by_pid: BTreeMap<u64, usize> = BTreeMap::new();

    let field_u64 = |e: &Json, key: &str| -> Result<u64, String> {
        e.get(key)
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0)
            .map(|v| v as u64)
            .ok_or_else(|| format!("event missing non-negative numeric {key:?}"))
    };

    for event in events {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event missing string field \"ph\"")?;
        match ph {
            "M" => {
                if event.get("name").and_then(Json::as_str) == Some("process_name") {
                    let pid = field_u64(event, "pid")?;
                    let name = event
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or("process_name metadata missing args.name")?;
                    process_names.insert(pid, name.to_string());
                }
            }
            "X" => {
                stats.slices += 1;
                event
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("slice missing string field \"name\"")?;
                let ts = event
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or("slice missing numeric \"ts\"")?;
                let dur = event
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or("slice missing numeric \"dur\"")?;
                if ts < 0.0 || dur < 0.0 {
                    return Err("slice with negative ts or dur".into());
                }
                let pid = field_u64(event, "pid")?;
                field_u64(event, "tid")?;
                *slices_by_pid.entry(pid).or_insert(0) += 1;
            }
            "i" => {
                stats.instants += 1;
                let name = event
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("instant missing string field \"name\"")?;
                event
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or("instant missing numeric \"ts\"")?;
                if event.get("cat").and_then(Json::as_str) == Some("fault") {
                    stats.fault_names.push(name.to_string());
                }
            }
            "s" => stats.flow_starts += 1,
            "f" => stats.flow_ends += 1,
            other => return Err(format!("unsupported event phase {other:?}")),
        }
    }

    if stats.flow_starts != stats.flow_ends {
        return Err(format!(
            "unbalanced flows: {} starts vs {} ends",
            stats.flow_starts, stats.flow_ends
        ));
    }

    stats.processes = process_names.values().cloned().collect();
    stats.processes.sort();

    for (pid, count) in slices_by_pid {
        let name = process_names
            .get(&pid)
            .cloned()
            .unwrap_or_else(|| format!("pid{pid}"));
        // Channel lanes live under their worker's pid, so two entries can
        // share a process name only if pids collide — they cannot.
        stats.slices_per_process.push((name, count));
    }
    stats.slices_per_process.sort();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};
    use tictac_trace::TraceBuilder;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> (Graph, Vec<OpId>) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("p", 64);
        let r = b.add_op("recv/p", w, OpKind::recv(p, ch), Cost::bytes(64), &[]);
        let c = b.add_op("fwd", w, OpKind::Compute, Cost::flops(1.0), &[r]);
        (b.build().unwrap(), vec![r, c])
    }

    #[test]
    fn export_validates_and_counts_lanes() {
        let (g, ops) = sample();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(2_500));
        tb.record(ops[1], t(2_500), t(4_000));
        let json = perfetto_json(&g, &tb.finish(), "unit test");
        let stats = validate_perfetto(&json).expect("valid trace_event JSON");
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.instants, 0);
        // Both the compute slice and the channel slice land under w0's pid.
        assert_eq!(stats.slices_per_process, vec![("w0".to_string(), 2)]);
        // Every lane is declared, even the idle PS and barrier processes.
        assert_eq!(stats.processes, vec!["barrier", "ps0", "w0"]);
        assert!(json.contains("\"ts\":2.500"));
        assert!(json.contains("\"bytes\":64"));
    }

    #[test]
    fn fault_instants_and_flows_round_trip() {
        let (g, ops) = sample();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[1], t(0), t(1_000));
        tb.push_fault(
            t(100),
            FaultEventKind::TransferDropped {
                op: ops[0],
                attempt: 0,
            },
        );
        tb.push_fault(t(900), FaultEventKind::DeferredOp { op: ops[0] });
        tb.push_fault(t(900), FaultEventKind::BarrierDegraded { remaining: 1 });
        let json = perfetto_json(&g, &tb.finish(), "faults");
        let stats = validate_perfetto(&json).expect("valid");
        assert_eq!(stats.instants, 3);
        assert_eq!(stats.flow_starts, 1);
        assert_eq!(stats.flow_ends, 1);
        assert_eq!(
            stats.fault_names,
            vec!["TransferDropped", "DeferredOp", "BarrierDegraded"]
        );
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_perfetto("{}").is_err());
        assert!(validate_perfetto("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        assert!(
            validate_perfetto("{\"traceEvents\": [{\"ph\": \"s\", \"id\": 1}]}").is_err(),
            "unbalanced flow accepted"
        );
    }

    #[test]
    fn export_is_deterministic() {
        let (g, ops) = sample();
        let mk = || {
            let mut tb = TraceBuilder::new(g.len());
            tb.record(ops[0], t(10), t(20));
            tb.record(ops[1], t(20), t(30));
            perfetto_json(&g, &tb.finish(), "det")
        };
        assert_eq!(mk(), mk());
    }
}
