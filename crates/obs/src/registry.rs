//! The metrics registry: counters, gauges, fixed-bucket histograms and
//! monotonic timers behind zero-cost-when-disabled handles.
//!
//! A [`Registry`] is either *enabled* (backed by shared atomic state) or
//! *disabled* (the default). Handles created from a disabled registry hold
//! no allocation and every operation on them compiles down to a branch on
//! `None` — instrumented code pays nothing when observability is off, and
//! in particular never perturbs the simulator's RNG draw order.
//!
//! Handles are cheap to clone and are meant to be created once at setup
//! time (registration formats metric names and takes a lock) and then used
//! lock-free on the hot path (plain relaxed atomic updates).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named-metric store. Cloning shares the underlying state.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    /// Gauges store `f64` bits.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
    Timer(Arc<TimerCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

impl Registry {
    /// An enabled registry: handles record into shared state.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle is a no-op (this is also
    /// `Registry::default()`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether handles created from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-attaches to) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.slot(
            name,
            || Metric::Counter(Arc::default()),
            |m| {
                if let Metric::Counter(c) = m {
                    Some(c.clone())
                } else {
                    None
                }
            },
        ))
    }

    /// Registers (or re-attaches to) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.slot(
            name,
            || Metric::Gauge(Arc::default()),
            |m| {
                if let Metric::Gauge(g) = m {
                    Some(g.clone())
                } else {
                    None
                }
            },
        ))
    }

    /// Registers (or re-attaches to) the fixed-bucket histogram `name`.
    /// `bounds` are inclusive upper bucket bounds, strictly increasing;
    /// values above the last bound land in an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing, or if `name` is
    /// already registered as a different kind or with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> BucketHistogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let core = self.slot(
            name,
            || Metric::Histogram(Arc::new(HistogramCore::new(bounds))),
            |m| {
                if let Metric::Histogram(h) = m {
                    assert_eq!(
                        h.bounds, bounds,
                        "histogram {name:?} re-registered with different bounds"
                    );
                    Some(h.clone())
                } else {
                    None
                }
            },
        );
        BucketHistogram(core)
    }

    /// Registers (or re-attaches to) the monotonic timer `name`. Timers
    /// measure wall-clock spans via [`Timer::start`] guards.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn timer(&self, name: &str) -> Timer {
        Timer(self.slot(
            name,
            || Metric::Timer(Arc::default()),
            |m| {
                if let Metric::Timer(t) = m {
                    Some(t.clone())
                } else {
                    None
                }
            },
        ))
    }

    fn slot<T>(
        &self,
        name: &str,
        mk: impl FnOnce() -> Metric,
        extract: impl FnOnce(&Metric) -> Option<T>,
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let entry = metrics.entry(name.to_string()).or_insert_with(mk);
        let kind = entry.kind();
        match extract(entry) {
            Some(t) => Some(t),
            None => panic!("metric {name:?} already registered as a {kind}"),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name. Empty for a disabled registry.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::new();
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("registry lock");
            for (name, metric) in metrics.iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(f64::from_bits(g.load(Relaxed))),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    Metric::Timer(t) => MetricValue::Timer(TimerStats {
                        count: t.count.load(Relaxed),
                        total_ns: t.total_ns.load(Relaxed),
                        max_ns: t.max_ns.load(Relaxed),
                    }),
                };
                entries.push((name.clone(), value));
            }
        }
        Snapshot { entries }
    }
}

/// A monotonically increasing `u64` counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`. No-op on a disabled handle.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (0 on a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// A last-value-wins `f64` gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge. No-op on a disabled handle.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(g) = &self.0 {
            g.store(value.to_bits(), Relaxed);
        }
    }

    /// The current value (0.0 on a disabled handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bucket bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    fn snapshot(&self) -> HistogramStats {
        HistogramStats {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A fixed-bucket histogram handle over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct BucketHistogram(Option<Arc<HistogramCore>>);

impl BucketHistogram {
    /// Records one sample. No-op on a disabled handle.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.observe(value);
        }
    }

    /// The current stats (empty defaults on a disabled handle).
    pub fn stats(&self) -> HistogramStats {
        self.0
            .as_ref()
            .map(|h| h.snapshot())
            .unwrap_or_else(|| HistogramStats {
                bounds: Vec::new(),
                buckets: vec![0],
                count: 0,
                sum: 0,
                max: 0,
            })
    }
}

/// Point-in-time contents of a [`BucketHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStats {
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one extra trailing overflow bucket.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramStats {
    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) estimated from the buckets:
    /// the inclusive upper bound of the bucket holding the rank-⌈p·n/100⌉
    /// sample — clamped to the exact observed maximum, so a sparse top
    /// bucket never reports a value no sample reached — or the maximum
    /// itself for samples in the overflow bucket. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&bound) => bound.min(self.max),
                    // Overflow bucket: the only exact statistic we track
                    // above the last bound is the maximum.
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Median estimate (see [`percentile`](Self::percentile)).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

#[derive(Debug, Default)]
struct TimerCore {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl TimerCore {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }
}

/// A monotonic wall-clock span timer handle.
#[derive(Debug, Clone, Default)]
pub struct Timer(Option<Arc<TimerCore>>);

impl Timer {
    /// Starts a span; the elapsed time is recorded when the returned guard
    /// drops. A disabled handle never reads the clock.
    #[inline]
    pub fn start(&self) -> TimerGuard {
        TimerGuard(self.0.as_ref().map(|c| (c.clone(), Instant::now())))
    }

    /// Records an externally measured span of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(c) = &self.0 {
            c.record(ns);
        }
    }
}

/// Records its span into the owning [`Timer`] on drop.
#[derive(Debug)]
#[must_use = "dropping the guard ends the span"]
pub struct TimerGuard(Option<(Arc<TimerCore>, Instant)>);

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some((core, started)) = self.0.take() {
            core.record(started.elapsed().as_nanos() as u64);
        }
    }
}

/// Accumulated spans of a [`Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerStats {
    /// Number of recorded spans.
    pub count: u64,
    /// Total span time, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's buckets and summary stats.
    Histogram(HistogramStats),
    /// A timer's accumulated spans.
    Timer(TimerStats),
}

/// A point-in-time view of every metric in a [`Registry`], sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs in name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The value of counter `name`, if registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the snapshot as one `name = value` line per metric.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name} = {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} = {v:.3}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name} = count {} / mean {:.1} / p50 {} / p95 {} / p99 {} / max {}",
                        h.count,
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.max
                    );
                }
                MetricValue::Timer(t) => {
                    let _ = writeln!(
                        out,
                        "{name} = {} spans / total {:.3} ms / max {:.3} ms",
                        t.count,
                        t.total_ns as f64 / 1e6,
                        t.max_ns as f64 / 1e6
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_no_ops() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("a");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("b");
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = reg.histogram("c", &[1, 2]);
        h.observe(5);
        assert_eq!(h.stats().count, 0);
        let t = reg.timer("d");
        drop(t.start());
        t.record_ns(99);
        assert!(reg.snapshot().entries.is_empty());
    }

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::enabled();
        let c = reg.counter("sim.events");
        c.inc();
        c.add(4);
        // Re-registration attaches to the same state.
        assert_eq!(reg.counter("sim.events").get(), 5);
        let g = reg.gauge("goodput");
        g.set(87.5);
        assert_eq!(g.get(), 87.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.events"), Some(5));
        assert_eq!(snap.get("goodput"), Some(&MetricValue::Gauge(87.5)));
        assert!(snap.render().contains("sim.events = 5"));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::enabled();
        let h = reg.histogram("depth", &[1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        let s = h.stats();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]); // ≤1, ≤4, ≤16, overflow
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 108);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 21.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_estimate_from_buckets() {
        let reg = Registry::enabled();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 2000] {
            h.observe(v);
        }
        let s = h.stats();
        // Nine samples land in the ≤10 bucket, one overflows.
        assert_eq!(s.percentile(0.0), 10);
        assert_eq!(s.p50(), 10);
        assert_eq!(s.percentile(90.0), 10);
        // The overflow bucket reports the exact maximum.
        assert_eq!(s.p95(), 2000);
        assert_eq!(s.p99(), 2000);
        assert_eq!(s.percentile(100.0), 2000);
        // Empty histograms are well-defined.
        assert_eq!(reg.histogram("empty", &[1]).stats().p50(), 0);
        // The snapshot renderer surfaces the estimates.
        assert!(reg
            .snapshot()
            .render()
            .contains("lat = count 10 / mean 204.5 / p50 10 / p95 2000 / p99 2000 / max 2000"));
    }

    #[test]
    fn timers_accumulate_spans() {
        let reg = Registry::enabled();
        let t = reg.timer("derive");
        {
            let _guard = t.start();
        }
        t.record_ns(1_000);
        match reg.snapshot().get("derive") {
            Some(MetricValue::Timer(stats)) => {
                assert_eq!(stats.count, 2);
                assert!(stats.total_ns >= 1_000);
            }
            other => panic!("expected a timer, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::enabled();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::enabled();
        let _ = reg.counter("b");
        let _ = reg.counter("a");
        let names: Vec<_> = reg
            .snapshot()
            .entries
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
