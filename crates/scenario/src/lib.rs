//! Declarative experiment scenarios (DESIGN.md §14).
//!
//! A [`Scenario`] is one fully-specified experiment point: model, cluster
//! shape (optionally heterogeneous), environment preset, scheduling
//! policy, execution backend, seed, iteration counts and fault spec — the
//! tuple every hand-written experiment in this repository used to encode
//! in Rust. Scenario *files* are a strict YAML subset (see [`parse`])
//! checked into the repository and executed with `tictac run
//! scenario.yml`; the three fields `scheduler`, `backend` and `seed` may
//! be list-valued, in which case the file expands into the cross-product
//! grid of scenarios.
//!
//! Every scenario has a deterministic FNV-1a [`Scenario::fingerprint`]
//! over its semantic fields (the store target is excluded — *where*
//! results land does not change *what* ran). The fingerprint flows into
//! each `RunRecord`'s identity so sweep records stay groupable across
//! processes and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;

pub use parse::{ParseError, Value};

use parse::Entry;
use std::fmt;
use tictac_cluster::{ClusterSpec, CommConfig};
use tictac_faults::FaultSpec;
use tictac_models::{Mode, Model};
use tictac_sched::SchedulerKind;
use tictac_sim::{SimConfig, DEFAULT_SEED};
use tictac_timing::SimDuration;

/// Which execution backend runs the measured iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// The discrete-event simulator (deterministic model time).
    Sim,
    /// The in-process multi-threaded runtime (wall-clock time).
    Threaded,
}

impl BackendKind {
    /// The backend's short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Threaded => "threaded",
        }
    }

    /// Parses a backend from its short lowercase name.
    pub fn from_name(name: &str) -> Option<BackendKind> {
        match name {
            "sim" => Some(BackendKind::Sim),
            "threaded" => Some(BackendKind::Threaded),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which platform preset (`SimConfig`) the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EnvPreset {
    /// envG: cloud GPUs on a fast network (`SimConfig::cloud_gpu`).
    G,
    /// envC: CPU cluster on a 10× slower network (`SimConfig::cpu_cluster`).
    C,
}

impl EnvPreset {
    /// The preset's short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EnvPreset::G => "g",
            EnvPreset::C => "c",
        }
    }

    /// Parses a preset from its short name.
    pub fn from_name(name: &str) -> Option<EnvPreset> {
        match name {
            "g" => Some(EnvPreset::G),
            "c" => Some(EnvPreset::C),
            _ => None,
        }
    }

    /// The preset's base [`SimConfig`] (before seed/fault overrides).
    pub fn base_config(self) -> SimConfig {
        match self {
            EnvPreset::G => SimConfig::cloud_gpu(),
            EnvPreset::C => SimConfig::cpu_cluster(),
        }
    }
}

impl fmt::Display for EnvPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully-specified experiment point.
///
/// Obtain scenarios by parsing a file ([`Scenario::parse`] /
/// [`Scenario::parse_grid`]); every field is public so programmatic
/// construction works too.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Label for humans and run records (defaults to the model name).
    pub name: String,
    /// The model-zoo entry to deploy.
    pub model: Model,
    /// Training or inference graph.
    pub mode: Mode,
    /// Batch size (defaults to the model's Table-1 batch).
    pub batch: usize,
    /// Cluster shape, including heterogeneity factors.
    pub cluster: ClusterSpec,
    /// Platform preset.
    pub env: EnvPreset,
    /// Transfer-scheduling policy.
    pub scheduler: SchedulerKind,
    /// Execution backend.
    pub backend: BackendKind,
    /// Simulation seed.
    pub seed: u64,
    /// Measured iterations.
    pub iterations: usize,
    /// Discarded warm-up iterations.
    pub warmup: usize,
    /// Wall-clock compression for the threaded backend (`0.5` = twice as
    /// fast as modelled time). `None` = real time. Ignored by the sim.
    pub time_scale: Option<f64>,
    /// Fault injection spec.
    pub faults: FaultSpec,
    /// Run-store target, if the scenario requests recording.
    pub store: Option<String>,
}

impl Scenario {
    /// Parses a scenario file that must expand to exactly one scenario.
    ///
    /// # Errors
    ///
    /// Any grammar or validation error, or a file whose `scheduler` /
    /// `backend` / `seed` lists expand to more than one point.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut grid = Scenario::parse_grid(text)?;
        if grid.len() != 1 {
            return Err(ParseError::at(
                0,
                format!(
                    "expected a single scenario, but the file expands to {}",
                    grid.len()
                ),
            ));
        }
        Ok(grid.remove(0))
    }

    /// Parses a scenario file and expands list-valued `scheduler`,
    /// `backend` and `seed` fields into the cross-product grid, in
    /// scheduler-major, seed-minor order.
    ///
    /// # Errors
    ///
    /// Any grammar error (unknown/duplicate/missing fields, bad
    /// indentation) or validation error (unknown model, degenerate
    /// cluster, malformed factor vectors), with the offending line.
    pub fn parse_grid(text: &str) -> Result<Vec<Scenario>, ParseError> {
        let top = parse::parse_document(text)?;
        let mut f = Fields::new(top);

        let model_entry = f.require("model")?;
        let model_name = scalar(&model_entry)?;
        let model = Model::from_name(&model_name).ok_or_else(|| {
            ParseError::at(model_entry.line, format!("unknown model `{model_name}`"))
        })?;
        let name = match f.take("name") {
            Some(e) => scalar(&e)?,
            None => model.name().to_string(),
        };
        let mode = match f.take("mode") {
            Some(e) => {
                let s = scalar(&e)?;
                match s.as_str() {
                    "training" => Mode::Training,
                    "inference" => Mode::Inference,
                    _ => {
                        return Err(ParseError::at(
                            e.line,
                            format!("mode must be `training` or `inference`, got `{s}`"),
                        ))
                    }
                }
            }
            None => Mode::Training,
        };
        let batch = match f.take("batch") {
            Some(e) => parse_num::<usize>(&scalar(&e)?, e.line, "batch")?,
            None => model.default_batch(),
        };

        let mut cluster = cluster_spec(f.require("cluster")?)?;
        if let Some(e) = f.take("comm") {
            cluster = cluster.with_comm(comm_config(e)?);
        }

        let env = match f.take("env") {
            Some(e) => {
                let s = scalar(&e)?;
                EnvPreset::from_name(&s).ok_or_else(|| {
                    ParseError::at(e.line, format!("env must be `g` or `c`, got `{s}`"))
                })?
            }
            None => EnvPreset::G,
        };

        let schedulers: Vec<SchedulerKind> = match f.take("scheduler") {
            Some(e) => list_of(&e, |s, line| {
                SchedulerKind::from_name(s)
                    .ok_or_else(|| ParseError::at(line, format!("unknown scheduler `{s}`")))
            })?,
            None => vec![SchedulerKind::Baseline],
        };
        let backends: Vec<BackendKind> = match f.take("backend") {
            Some(e) => list_of(&e, |s, line| {
                BackendKind::from_name(s).ok_or_else(|| {
                    ParseError::at(
                        line,
                        format!("backend must be `sim` or `threaded`, got `{s}`"),
                    )
                })
            })?,
            None => vec![BackendKind::Sim],
        };
        let seeds: Vec<u64> = match f.take("seed") {
            Some(e) => list_of(&e, |s, line| parse_num::<u64>(s, line, "seed"))?,
            None => vec![DEFAULT_SEED],
        };

        let iterations = match f.take("iterations") {
            Some(e) => parse_num::<usize>(&scalar(&e)?, e.line, "iterations")?,
            None => 10,
        };
        let warmup = match f.take("warmup") {
            Some(e) => parse_num::<usize>(&scalar(&e)?, e.line, "warmup")?,
            None => 2,
        };
        let time_scale = match f.take("time_scale") {
            Some(e) => {
                let v = parse_num::<f64>(&scalar(&e)?, e.line, "time_scale")?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(ParseError::at(e.line, "time_scale must be positive"));
                }
                Some(v)
            }
            None => None,
        };
        let faults = match f.take("faults") {
            Some(e) => fault_spec(e)?,
            None => FaultSpec::none(),
        };
        let store = match f.take("store") {
            Some(e) => Some(scalar(&e)?),
            None => None,
        };
        f.finish()?;

        let mut grid = Vec::with_capacity(schedulers.len() * backends.len() * seeds.len());
        for &scheduler in &schedulers {
            for &backend in &backends {
                for &seed in &seeds {
                    grid.push(Scenario {
                        name: name.clone(),
                        model,
                        mode,
                        batch,
                        cluster: cluster.clone(),
                        env,
                        scheduler,
                        backend,
                        seed,
                        iterations,
                        warmup,
                        time_scale,
                        faults: faults.clone(),
                        store: store.clone(),
                    });
                }
            }
        }
        Ok(grid)
    }

    /// The scenario's [`SimConfig`]: the env preset with this scenario's
    /// seed and fault spec applied.
    pub fn sim_config(&self) -> SimConfig {
        self.env
            .base_config()
            .with_seed(self.seed)
            .with_faults(self.faults.clone())
    }

    /// A deterministic FNV-1a fingerprint over every semantic field.
    ///
    /// Two scenarios fingerprint equal exactly when they specify the same
    /// experiment: model, mode, batch, cluster (shape, sharding and
    /// heterogeneity factors), env, scheduler, backend, seed, iteration
    /// counts, time scale and fault spec. The `name` label and `store`
    /// target are *excluded* — relabeling or redirecting output does not
    /// change what ran. Grid siblings therefore get distinct fingerprints
    /// (they differ in scheduler, backend or seed).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(b"tictac-scenario/v1");
        eat(self.model.name().as_bytes());
        eat(&[match self.mode {
            Mode::Training => 1,
            Mode::Inference => 2,
        }]);
        eat(&(self.batch as u64).to_le_bytes());
        eat(&(self.cluster.workers as u64).to_le_bytes());
        eat(&(self.cluster.parameter_servers as u64).to_le_bytes());
        eat(format!("{:?}", self.cluster.sharding).as_bytes());
        for w in 0..self.cluster.workers {
            eat(&self.cluster.worker_speed(w).to_bits().to_le_bytes());
        }
        for s in 0..self.cluster.parameter_servers {
            eat(&self.cluster.ps_speed(s).to_bits().to_le_bytes());
        }
        for w in 0..self.cluster.workers {
            for s in 0..self.cluster.parameter_servers {
                eat(&self.cluster.link_bandwidth(w, s).to_bits().to_le_bytes());
            }
        }
        eat(self.env.name().as_bytes());
        eat(self.scheduler.name().as_bytes());
        eat(self.backend.name().as_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&(self.iterations as u64).to_le_bytes());
        eat(&(self.warmup as u64).to_le_bytes());
        eat(&self.time_scale.unwrap_or(0.0).to_bits().to_le_bytes());
        eat(&self.faults.fingerprint().to_le_bytes());
        // Communication granularity joined the schema after v1 shipped;
        // it is eaten only when non-default so every pre-existing
        // scenario file keeps its recorded fingerprint.
        if !self.cluster.comm().is_default() {
            eat(&self.cluster.comm().fingerprint().to_le_bytes());
        }
        h
    }
}

/// Strict field consumption: every `take` marks a key consumed; `finish`
/// rejects whatever remains (the unknown-field rule of the house codec).
struct Fields {
    entries: Vec<Entry>,
}

impl Fields {
    fn new(entries: Vec<Entry>) -> Self {
        Self { entries }
    }

    fn take(&mut self, key: &str) -> Option<Entry> {
        let i = self.entries.iter().position(|e| e.key == key)?;
        Some(self.entries.remove(i))
    }

    fn require(&mut self, key: &str) -> Result<Entry, ParseError> {
        self.take(key)
            .ok_or_else(|| ParseError::at(0, format!("missing required field `{key}`")))
    }

    fn finish(self) -> Result<(), ParseError> {
        if let Some(e) = self.entries.first() {
            return Err(ParseError::at(e.line, format!("unknown field `{}`", e.key)));
        }
        Ok(())
    }
}

fn scalar(e: &Entry) -> Result<String, ParseError> {
    match &e.value {
        Some(Value::Scalar(s)) => Ok(s.clone()),
        _ => Err(ParseError::at(
            e.line,
            format!("`{}` expects a single value", e.key),
        )),
    }
}

/// Accepts either `key: v` or `key: [v1, v2]`; maps every element.
fn list_of<T>(
    e: &Entry,
    convert: impl Fn(&str, usize) -> Result<T, ParseError>,
) -> Result<Vec<T>, ParseError> {
    let items: Vec<&str> = match &e.value {
        Some(Value::Scalar(s)) => vec![s.as_str()],
        Some(Value::List(l)) if !l.is_empty() => l.iter().map(String::as_str).collect(),
        _ => {
            return Err(ParseError::at(
                e.line,
                format!("`{}` expects a value or a non-empty list", e.key),
            ))
        }
    };
    items.into_iter().map(|s| convert(s, e.line)).collect()
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError::at(line, format!("invalid {what} `{s}`")))
}

fn f64_list(e: &Entry) -> Result<Vec<f64>, ParseError> {
    list_of(e, |s, line| parse_num::<f64>(s, line, "factor"))
}

/// Lowers the `cluster:` section onto a validated [`ClusterSpec`].
fn cluster_spec(section: Entry) -> Result<ClusterSpec, ParseError> {
    let section_line = section.line;
    if section.value.is_some() {
        return Err(ParseError::at(section_line, "`cluster` must be a section"));
    }
    let mut f = Fields::new(section.children);
    let workers_e = f.require("workers")?;
    let workers = parse_num::<usize>(&scalar(&workers_e)?, workers_e.line, "workers")?;
    let ps_e = f.require("parameter_servers")?;
    let ps = parse_num::<usize>(&scalar(&ps_e)?, ps_e.line, "parameter_servers")?;
    let mut b = ClusterSpec::builder()
        .workers(workers)
        .parameter_servers(ps);
    if let Some(e) = f.take("worker_speeds") {
        b = b.worker_speeds(f64_list(&e)?);
    }
    if let Some(e) = f.take("ps_speeds") {
        b = b.ps_speeds(f64_list(&e)?);
    }
    if let Some(e) = f.take("link_bandwidths") {
        b = b.link_bandwidths(f64_list(&e)?);
    }
    f.finish()?;
    b.build()
        .map_err(|e| ParseError::at(section_line, format!("invalid cluster: {e}")))
}

/// Lowers the `comm:` section onto a [`CommConfig`], starting from the
/// default (both passes off). Thresholds are byte counts and must be at
/// least 1.
fn comm_config(section: Entry) -> Result<CommConfig, ParseError> {
    if section.value.is_some() {
        return Err(ParseError::at(section.line, "`comm` must be a section"));
    }
    let mut f = Fields::new(section.children);
    let mut threshold = |key: &'static str| -> Result<Option<u64>, ParseError> {
        match f.take(key) {
            Some(e) => {
                let v = parse_num::<u64>(&scalar(&e)?, e.line, key)?;
                if v == 0 {
                    return Err(ParseError::at(e.line, format!("{key} must be at least 1")));
                }
                Ok(Some(v))
            }
            None => Ok(None),
        }
    };
    let comm = CommConfig {
        partition_bytes: threshold("partition_bytes")?,
        fusion_bytes: threshold("fusion_bytes")?,
    };
    f.finish()?;
    Ok(comm)
}

/// Lowers the `faults:` section onto a [`FaultSpec`], starting from
/// [`FaultSpec::none`]. Durations are given in milliseconds.
fn fault_spec(section: Entry) -> Result<FaultSpec, ParseError> {
    if section.value.is_some() {
        return Err(ParseError::at(section.line, "`faults` must be a section"));
    }
    let mut f = Fields::new(section.children);
    let mut spec = FaultSpec::none();
    let prob = |f: &mut Fields, key: &'static str, out: &mut f64| -> Result<(), ParseError> {
        if let Some(e) = f.take(key) {
            let v = parse_num::<f64>(&scalar(&e)?, e.line, key)?;
            if !(0.0..=1.0).contains(&v) {
                return Err(ParseError::at(e.line, format!("{key} must be in [0, 1]")));
            }
            *out = v;
        }
        Ok(())
    };
    let mut p = (
        spec.drop_prob,
        spec.blackout_prob,
        spec.crash_prob,
        spec.straggler_prob,
        spec.ps_stall_prob,
    );
    prob(&mut f, "drop_prob", &mut p.0)?;
    prob(&mut f, "blackout_prob", &mut p.1)?;
    prob(&mut f, "crash_prob", &mut p.2)?;
    prob(&mut f, "straggler_prob", &mut p.3)?;
    prob(&mut f, "ps_stall_prob", &mut p.4)?;
    (
        spec.drop_prob,
        spec.blackout_prob,
        spec.crash_prob,
        spec.straggler_prob,
        spec.ps_stall_prob,
    ) = p;

    let millis =
        |f: &mut Fields, key: &'static str, out: &mut SimDuration| -> Result<(), ParseError> {
            if let Some(e) = f.take(key) {
                let v = parse_num::<f64>(&scalar(&e)?, e.line, key)?;
                if !v.is_finite() || v < 0.0 {
                    return Err(ParseError::at(
                        e.line,
                        format!("{key} must be non-negative"),
                    ));
                }
                *out = SimDuration::from_secs_f64(v / 1e3);
            }
            Ok(())
        };
    let mut d = (
        spec.blackout,
        spec.crash_downtime,
        spec.ps_stall,
        spec.onset_window,
    );
    millis(&mut f, "blackout_ms", &mut d.0)?;
    millis(&mut f, "crash_downtime_ms", &mut d.1)?;
    millis(&mut f, "ps_stall_ms", &mut d.2)?;
    millis(&mut f, "onset_window_ms", &mut d.3)?;
    (
        spec.blackout,
        spec.crash_downtime,
        spec.ps_stall,
        spec.onset_window,
    ) = d;

    if let Some(e) = f.take("straggler_factor") {
        let v = parse_num::<f64>(&scalar(&e)?, e.line, "straggler_factor")?;
        if !v.is_finite() || v < 1.0 {
            return Err(ParseError::at(e.line, "straggler_factor must be >= 1"));
        }
        spec.straggler_factor = v;
    }
    if let Some(e) = f.take("barrier_timeout_ms") {
        let v = parse_num::<f64>(&scalar(&e)?, e.line, "barrier_timeout_ms")?;
        if !v.is_finite() || v <= 0.0 {
            return Err(ParseError::at(
                e.line,
                "barrier_timeout_ms must be positive",
            ));
        }
        spec.barrier_timeout = Some(SimDuration::from_secs_f64(v / 1e3));
    }
    f.finish()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "\
name: vgg19_hetero
model: vgg_19
mode: training
batch: 32
cluster:
  workers: 4
  parameter_servers: 2
  worker_speeds: [1.0, 1.0, 1.0, 0.5]
  link_bandwidths: [1.0, 1.0, 1.0, 0.25]
env: g
scheduler: tac
backend: sim
seed: 7
iterations: 4
warmup: 1
faults:
  straggler_prob: 0.25
  straggler_factor: 2.0
store: results/runs.jsonl
";

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::parse(FULL).unwrap();
        assert_eq!(s.name, "vgg19_hetero");
        assert_eq!(s.model, Model::Vgg19);
        assert_eq!(s.mode, Mode::Training);
        assert_eq!(s.batch, 32);
        assert_eq!(s.cluster.workers, 4);
        assert_eq!(s.cluster.worker_speed(3), 0.5);
        assert_eq!(s.cluster.link_bandwidth(3, 1), 0.25);
        assert_eq!(s.scheduler, SchedulerKind::Tac);
        assert_eq!(s.backend, BackendKind::Sim);
        assert_eq!(s.seed, 7);
        assert_eq!(s.iterations, 4);
        assert_eq!(s.warmup, 1);
        assert_eq!(s.faults.straggler_prob, 0.25);
        assert_eq!(s.store.as_deref(), Some("results/runs.jsonl"));
        let cfg = s.sim_config();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.faults.straggler_factor, 2.0);
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let s =
            Scenario::parse("model: alexnet_v2\ncluster:\n  workers: 2\n  parameter_servers: 1\n")
                .unwrap();
        assert_eq!(s.name, "alexnet_v2");
        assert_eq!(s.batch, Model::AlexNetV2.default_batch());
        assert_eq!(s.mode, Mode::Training);
        assert_eq!(s.env, EnvPreset::G);
        assert_eq!(s.scheduler, SchedulerKind::Baseline);
        assert_eq!(s.backend, BackendKind::Sim);
        assert_eq!(s.seed, DEFAULT_SEED);
        assert_eq!(s.iterations, 10);
        assert_eq!(s.warmup, 2);
        assert!(s.faults.is_quiet());
        assert!(s.cluster.is_uniform());
        assert_eq!(s.store, None);
    }

    #[test]
    fn grid_expansion_is_the_cross_product() {
        let doc = "\
model: alexnet_v2
cluster:
  workers: 2
  parameter_servers: 1
scheduler: [baseline, tac]
backend: [sim, threaded]
seed: [1, 2, 3]
";
        let grid = Scenario::parse_grid(doc).unwrap();
        assert_eq!(grid.len(), 12);
        // Scheduler-major, seed-minor.
        assert_eq!(grid[0].scheduler, SchedulerKind::Baseline);
        assert_eq!(grid[0].backend, BackendKind::Sim);
        assert_eq!(grid[0].seed, 1);
        assert_eq!(grid[11].scheduler, SchedulerKind::Tac);
        assert_eq!(grid[11].backend, BackendKind::Threaded);
        assert_eq!(grid[11].seed, 3);
        // Every point has a distinct fingerprint.
        let mut fps: Vec<u64> = grid.iter().map(Scenario::fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 12);
        // And `parse` refuses a grid.
        assert!(Scenario::parse(doc)
            .unwrap_err()
            .msg
            .contains("expands to 12"));
    }

    #[test]
    fn fingerprint_is_stable_and_semantic() {
        let s = Scenario::parse(FULL).unwrap();
        // Stable across parses.
        assert_eq!(
            s.fingerprint(),
            Scenario::parse(FULL).unwrap().fingerprint()
        );
        // Renaming or redirecting output does not change identity…
        let mut relabeled = s.clone();
        relabeled.name = "other".into();
        relabeled.store = None;
        assert_eq!(s.fingerprint(), relabeled.fingerprint());
        // …but any semantic change does.
        let mut other = s.clone();
        other.seed += 1;
        assert_ne!(s.fingerprint(), other.fingerprint());
        let mut other = s.clone();
        other.cluster = ClusterSpec::builder()
            .workers(4)
            .parameter_servers(2)
            .worker_speeds(vec![1.0, 1.0, 0.5, 1.0]) // straggler moved
            .link_bandwidths(vec![1.0, 1.0, 1.0, 0.25])
            .build()
            .unwrap();
        assert_ne!(s.fingerprint(), other.fingerprint());
    }

    #[test]
    fn rejects_unknown_and_invalid_fields() {
        let base = "model: alexnet_v2\ncluster:\n  workers: 2\n  parameter_servers: 1\n";
        let cases: &[(String, &str)] = &[
            (format!("{base}bogus: 1\n"), "unknown field `bogus`"),
            ("cluster:\n  workers: 2\n  parameter_servers: 1\n".into(), "missing required field `model`"),
            ("model: alexnet_v2\n".into(), "missing required field `cluster`"),
            ("model: notanet\ncluster:\n  workers: 1\n  parameter_servers: 1\n".into(), "unknown model"),
            (format!("{base}scheduler: fifo\n"), "unknown scheduler `fifo`"),
            (format!("{base}backend: gpu\n"), "backend must be"),
            (format!("{base}env: x\n"), "env must be"),
            (format!("{base}mode: eval\n"), "mode must be"),
            (format!("{base}iterations: many\n"), "invalid iterations"),
            (format!("{base}time_scale: -1\n"), "time_scale must be positive"),
            (
                "model: alexnet_v2\ncluster:\n  workers: 2\n  parameter_servers: 1\n  worker_speeds: [1.0]\n".into(),
                "invalid cluster",
            ),
            (
                format!("{base}faults:\n  drop_prob: 1.5\n"),
                "must be in [0, 1]",
            ),
            (
                format!("{base}faults:\n  straggler_factor: 0.5\n"),
                "straggler_factor must be >= 1",
            ),
            (
                format!("{base}faults:\n  warp_prob: 0.5\n"),
                "unknown field `warp_prob`",
            ),
        ];
        for (doc, want) in cases {
            let err = Scenario::parse_grid(doc).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "expected {want:?} in `{err}`"
            );
        }
    }

    #[test]
    fn comm_section_lowers_onto_the_cluster() {
        let doc = "\
model: vgg_16
cluster:
  workers: 4
  parameter_servers: 2
comm:
  partition_bytes: 4194304
  fusion_bytes: 65536
";
        let s = Scenario::parse(doc).unwrap();
        assert_eq!(s.cluster.comm().partition_bytes, Some(4 << 20));
        assert_eq!(s.cluster.comm().fusion_bytes, Some(64 << 10));
        // A scenario without a `comm:` section keeps the default (both
        // passes off), and its fingerprint is unchanged from pre-comm
        // parses of the same document.
        let plain =
            Scenario::parse("model: vgg_16\ncluster:\n  workers: 4\n  parameter_servers: 2\n")
                .unwrap();
        assert!(plain.cluster.comm().is_default());
        assert_ne!(s.fingerprint(), plain.fingerprint());
        // Each threshold is semantic on its own.
        let part_only = Scenario::parse(
            "model: vgg_16\ncluster:\n  workers: 4\n  parameter_servers: 2\ncomm:\n  partition_bytes: 4194304\n",
        )
        .unwrap();
        assert_eq!(part_only.cluster.comm().fusion_bytes, None);
        assert_ne!(s.fingerprint(), part_only.fingerprint());
        assert_ne!(plain.fingerprint(), part_only.fingerprint());
    }

    #[test]
    fn comm_section_rejects_bad_thresholds() {
        let base = "model: alexnet_v2\ncluster:\n  workers: 2\n  parameter_servers: 1\n";
        let cases: &[(String, &str)] = &[
            (
                format!("{base}comm:\n  partition_bytes: 0\n"),
                "partition_bytes must be at least 1",
            ),
            (
                format!("{base}comm:\n  fusion_bytes: lots\n"),
                "invalid fusion_bytes",
            ),
            (
                format!("{base}comm:\n  chunk_count: 4\n"),
                "unknown field `chunk_count`",
            ),
            (format!("{base}comm: on\n"), "`comm` must be a section"),
        ];
        for (doc, want) in cases {
            let err = Scenario::parse_grid(doc).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "expected {want:?} in `{err}`"
            );
        }
        // Errors carry the offending line number.
        let err =
            Scenario::parse_grid(&format!("{base}comm:\n  partition_bytes: 0\n")).unwrap_err();
        assert!(err.to_string().contains("line 6"), "got `{err}`");
    }

    #[test]
    fn fault_section_lowers_durations_from_millis() {
        let doc = "\
model: alexnet_v2
cluster:
  workers: 2
  parameter_servers: 1
faults:
  ps_stall_prob: 0.5
  ps_stall_ms: 5
  barrier_timeout_ms: 200
";
        let s = Scenario::parse(doc).unwrap();
        assert_eq!(s.faults.ps_stall, SimDuration::from_millis(5));
        assert_eq!(
            s.faults.barrier_timeout,
            Some(SimDuration::from_millis(200))
        );
    }
}
