//! A strict, hand-rolled parser for the scenario DSL — a small YAML
//! subset with JSON-style inline lists.
//!
//! Grammar (line-oriented, two-space indentation, one nesting level):
//!
//! ```yaml
//! # comment
//! key: scalar
//! key: [scalar, scalar]     # inline list
//! section:                  # nested mapping
//!   key: scalar
//! ```
//!
//! The parser is deliberately strict, in the house style of
//! `tictac-store`'s record decoder: unknown keys, duplicate keys, missing
//! required fields, tabs, and malformed indentation are all hard errors
//! carrying the offending line number. There is no quoting, no multi-line
//! values, no anchors — scenario files stay diffable and greppable.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A parse error with its 1-based line number (0 = whole document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on (0 for document-level
    /// errors such as a missing required section).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.msg)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.msg)
        }
    }
}

impl Error for ParseError {}

/// A parsed value: a bare scalar or an inline list of bare scalars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A single unquoted token (`tac`, `4`, `0.5`, `results/runs.jsonl`).
    Scalar(String),
    /// A JSON-style inline list of unquoted tokens (`[1.0, 0.5]`).
    List(Vec<String>),
}

/// One `key: value` entry with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub line: usize,
    pub key: String,
    pub value: Option<Value>,
    /// Entries nested under this key (non-empty only for section headers).
    pub children: Vec<Entry>,
}

/// Parses a document into its top-level entries.
pub(crate) fn parse_document(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut top: Vec<Entry> = Vec::new();
    let mut seen_top: BTreeSet<String> = BTreeSet::new();
    let mut seen_nested: BTreeSet<String> = BTreeSet::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.contains('\t') {
            return Err(ParseError::at(
                line_no,
                "tabs are not allowed; indent with two spaces",
            ));
        }
        let without_comment = strip_comment(raw);
        let trimmed = without_comment.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        let body = trimmed.trim_start();

        match indent {
            0 => {
                let (key, rest) = split_key(body, line_no)?;
                if !seen_top.insert(key.to_string()) {
                    return Err(ParseError::at(line_no, format!("duplicate key `{key}`")));
                }
                seen_nested.clear();
                let value = parse_value(rest, line_no)?;
                top.push(Entry {
                    line: line_no,
                    key: key.to_string(),
                    value,
                    children: Vec::new(),
                });
            }
            2 => {
                let parent = top.last_mut().ok_or_else(|| {
                    ParseError::at(line_no, "indented entry before any section header")
                })?;
                if parent.value.is_some() {
                    return Err(ParseError::at(
                        line_no,
                        format!(
                            "`{}` has a value and cannot also hold a section",
                            parent.key
                        ),
                    ));
                }
                let (key, rest) = split_key(body, line_no)?;
                if !seen_nested.insert(key.to_string()) {
                    return Err(ParseError::at(line_no, format!("duplicate key `{key}`")));
                }
                let value = parse_value(rest, line_no)?;
                if value.is_none() {
                    return Err(ParseError::at(
                        line_no,
                        format!("`{key}`: nested sections may not nest further"),
                    ));
                }
                parent.children.push(Entry {
                    line: line_no,
                    key: key.to_string(),
                    value,
                    children: Vec::new(),
                });
            }
            n => {
                return Err(ParseError::at(
                    line_no,
                    format!("indentation must be 0 or 2 spaces, found {n}"),
                ));
            }
        }
    }

    // A section header with no children and no value is an empty section —
    // reject it so a typo'd indent can't silently drop a whole block.
    for e in &top {
        if e.value.is_none() && e.children.is_empty() {
            return Err(ParseError::at(
                e.line,
                format!("section `{}` is empty", e.key),
            ));
        }
    }
    Ok(top)
}

/// Strips a `#` comment. The grammar has no quoting, so any `#` preceded
/// by start-of-line or whitespace begins a comment.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && (i == 0 || bytes[i - 1].is_ascii_whitespace()) {
            return &line[..i];
        }
    }
    line
}

/// Splits `key: rest` (or a bare `key:` header), validating the key.
fn split_key(body: &str, line: usize) -> Result<(&str, &str), ParseError> {
    let Some(colon) = body.find(':') else {
        return Err(ParseError::at(
            line,
            format!("expected `key: value`, found `{body}`"),
        ));
    };
    let key = body[..colon].trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(ParseError::at(line, format!("invalid key `{key}`")));
    }
    Ok((key, body[colon + 1..].trim()))
}

/// Parses the text after `key:` — empty (section header), a scalar, or an
/// inline list.
fn parse_value(rest: &str, line: usize) -> Result<Option<Value>, ParseError> {
    if rest.is_empty() {
        return Ok(None);
    }
    if let Some(inner) = rest.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(ParseError::at(
                line,
                "inline list is missing its closing `]`",
            ));
        };
        let items: Vec<String> = inner.split(',').map(|s| s.trim().to_string()).collect();
        if items.iter().any(String::is_empty) {
            return Err(ParseError::at(line, "inline list has an empty element"));
        }
        return Ok(Some(Value::List(items)));
    }
    if rest.contains('[') || rest.contains(']') || rest.contains(',') {
        return Err(ParseError::at(
            line,
            format!("malformed value `{rest}` (lists must be `[a, b, c]`)"),
        ));
    }
    Ok(Some(Value::Scalar(rest.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_sections_and_lists() {
        let doc = "\
# a comment
model: vgg_19
cluster:
  workers: 4   # trailing comment
  worker_speeds: [1.0, 0.5]
seed: [1, 2, 3]
";
        let top = parse_document(doc).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].key, "model");
        assert_eq!(top[0].value, Some(Value::Scalar("vgg_19".into())));
        assert_eq!(top[1].key, "cluster");
        assert_eq!(top[1].children.len(), 2);
        assert_eq!(top[1].children[0].value, Some(Value::Scalar("4".into())));
        assert_eq!(
            top[1].children[1].value,
            Some(Value::List(vec!["1.0".into(), "0.5".into()]))
        );
        assert_eq!(
            top[2].value,
            Some(Value::List(vec!["1".into(), "2".into(), "3".into()]))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        let cases: &[(&str, &str)] = &[
            ("model: a\nmodel: b\n", "duplicate key"),
            ("  workers: 4\n", "before any section header"),
            ("model: a\n  workers: 4\n", "cannot also hold a section"),
            ("cluster:\n   workers: 4\n", "indentation must be 0 or 2"),
            ("cluster:\n", "section `cluster` is empty"),
            ("model\n", "expected `key: value`"),
            ("se+ed: 1\n", "invalid key"),
            ("seed: [1, 2\n", "missing its closing"),
            ("seed: [1, , 2]\n", "empty element"),
            ("seed: 1, 2\n", "malformed value"),
            ("\tmodel: a\n", "tabs are not allowed"),
        ];
        for (doc, want) in cases {
            let err = parse_document(doc).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "{doc:?}: expected {want:?} in {err}"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_document("model: a\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
