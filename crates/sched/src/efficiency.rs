//! Scheduling-efficiency metric (§3.2 of the paper).
//!
//! For a set of ops with measured (or predicted) durations on a set of
//! resources:
//!
//! * Equation 1 — the **upper** makespan bound `U = Σ Time(op)`: fully
//!   sequential execution, one resource busy at a time.
//! * Equation 2 — the **lower** makespan bound
//!   `L = max_d Σ_{op on d} Time(op)`: every resource perfectly busy; the
//!   bottleneck resource's load.
//! * Equation 3 — **scheduling efficiency** `E = (U − m) / (U − L)` for a
//!   measured makespan `m`: 1 is a perfect ordering, 0 the worst.
//! * Equation 4 — **speedup potential** `S = (U − L) / L`: the maximum
//!   throughput gain a perfect schedule can deliver over the worst one.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tictac_graph::{Graph, OpId, Resource};
use tictac_timing::SimDuration;

/// The makespan bounds and derived metrics for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyReport {
    /// Equation 1: sequential-execution upper bound `U`.
    pub upper: SimDuration,
    /// Equation 2: bottleneck-resource lower bound `L`.
    pub lower: SimDuration,
    /// The measured makespan `m`.
    pub makespan: SimDuration,
    /// Equation 3: scheduling efficiency `E ∈ [0, 1]` for achievable
    /// makespans (not clamped; see [`EfficiencyReport::efficiency_clamped`]).
    pub efficiency: f64,
    /// Equation 4: speedup potential `S`.
    pub speedup_potential: f64,
}

impl EfficiencyReport {
    /// Efficiency clamped to `[0, 1]` (measurement noise can push the raw
    /// value slightly outside the bounds).
    pub fn efficiency_clamped(&self) -> f64 {
        self.efficiency.clamp(0.0, 1.0)
    }
}

/// Equation 1: `U = Σ Time(op)`.
pub fn upper_makespan<I>(durations: I) -> SimDuration
where
    I: IntoIterator<Item = SimDuration>,
{
    durations.into_iter().sum()
}

/// Equation 2: `L = max_d Σ_{op ∈ G_d} Time(op)` over the resources the
/// given ops execute on.
pub fn lower_makespan(
    graph: &Graph,
    ops: &[OpId],
    mut duration: impl FnMut(OpId) -> SimDuration,
) -> SimDuration {
    let mut per_resource: HashMap<Resource, SimDuration> = HashMap::new();
    for &op in ops {
        *per_resource
            .entry(graph.resource(op))
            .or_insert(SimDuration::ZERO) += duration(op);
    }
    per_resource
        .into_values()
        .max()
        .unwrap_or(SimDuration::ZERO)
}

/// Computes the full efficiency report (Equations 1–4) for `ops` with the
/// observed iteration `makespan`.
///
/// When `U == L` there is no scheduling freedom at all; efficiency is
/// defined as 1 and speedup potential as 0.
pub fn evaluate(
    graph: &Graph,
    ops: &[OpId],
    mut duration: impl FnMut(OpId) -> SimDuration,
    makespan: SimDuration,
) -> EfficiencyReport {
    let upper = upper_makespan(ops.iter().map(|&op| duration(op)));
    let lower = lower_makespan(graph, ops, &mut duration);
    let span = upper.saturating_sub(lower);
    let efficiency = if span.is_zero() {
        1.0
    } else {
        (upper.as_secs_f64() - makespan.as_secs_f64()) / span.as_secs_f64()
    };
    let speedup_potential = if lower.is_zero() {
        0.0
    } else {
        span.as_secs_f64() / lower.as_secs_f64()
    };
    EfficiencyReport {
        upper,
        lower,
        makespan,
        efficiency,
        speedup_potential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};

    /// Two resources: channel carries two 10us recvs, compute runs two
    /// 10us ops. U = 40us, L = 20us.
    fn balanced() -> (Graph, Vec<OpId>) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("p1", 10);
        let p2 = b.add_param("p2", 10);
        let r1 = b.add_op("r1", w, OpKind::recv(p1, ch), Cost::bytes(10), &[]);
        let r2 = b.add_op("r2", w, OpKind::recv(p2, ch), Cost::bytes(10), &[]);
        let c1 = b.add_op("c1", w, OpKind::Compute, Cost::flops(1.0), &[r1]);
        let c2 = b.add_op("c2", w, OpKind::Compute, Cost::flops(1.0), &[c1, r2]);
        let g = b.build().unwrap();
        (g, vec![r1, r2, c1, c2])
    }

    fn ten_us(_: OpId) -> SimDuration {
        SimDuration::from_micros(10)
    }

    #[test]
    fn bounds_match_hand_computation() {
        let (g, ops) = balanced();
        assert_eq!(
            upper_makespan(ops.iter().map(|_| SimDuration::from_micros(10))),
            SimDuration::from_micros(40)
        );
        assert_eq!(
            lower_makespan(&g, &ops, ten_us),
            SimDuration::from_micros(20)
        );
    }

    #[test]
    fn perfect_overlap_scores_one() {
        let (g, ops) = balanced();
        let r = evaluate(&g, &ops, ten_us, SimDuration::from_micros(20));
        assert_eq!(r.efficiency, 1.0);
        assert_eq!(r.speedup_potential, 1.0); // (40-20)/20: up to 2x
    }

    #[test]
    fn fully_sequential_scores_zero() {
        let (g, ops) = balanced();
        let r = evaluate(&g, &ops, ten_us, SimDuration::from_micros(40));
        assert_eq!(r.efficiency, 0.0);
    }

    #[test]
    fn halfway_scores_half() {
        let (g, ops) = balanced();
        let r = evaluate(&g, &ops, ten_us, SimDuration::from_micros(30));
        assert!((r.efficiency - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamping_handles_noise() {
        let (g, ops) = balanced();
        let r = evaluate(&g, &ops, ten_us, SimDuration::from_micros(45));
        assert!(r.efficiency < 0.0);
        assert_eq!(r.efficiency_clamped(), 0.0);
    }

    #[test]
    fn degenerate_single_resource_has_no_freedom() {
        // Everything on one compute resource: U == L.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let a = b.add_op("a", w, OpKind::Compute, Cost::flops(1.0), &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::flops(1.0), &[a]);
        let g = b.build().unwrap();
        let r = evaluate(&g, &[a, c], ten_us, SimDuration::from_micros(20));
        assert_eq!(r.efficiency, 1.0);
        assert_eq!(r.speedup_potential, 0.0);
    }

    #[test]
    fn empty_op_set_is_harmless() {
        let (g, _) = balanced();
        let r = evaluate(&g, &[], ten_us, SimDuration::ZERO);
        assert_eq!(r.upper, SimDuration::ZERO);
        assert_eq!(r.lower, SimDuration::ZERO);
        assert_eq!(r.efficiency, 1.0);
        assert_eq!(r.speedup_potential, 0.0);
    }
}
