//! Communication-scheduling heuristics of the TicTac paper.
//!
//! This crate implements the paper's contribution:
//!
//! * [`PartitionGraph`] — a worker's partition of the computational graph
//!   with per-op *communication dependencies* (`op.dep`, §4.1).
//! * [`OpProperties`] — Algorithm 1: communication time `M`,
//!   directly-dependent compute load `P` and impending communication load
//!   `M⁺` for a set of outstanding `recv` ops.
//! * [`tic`] — Algorithm 2, *Timing-Independent Communication scheduling*:
//!   priorities from DAG structure alone under the general time oracle
//!   (Equation 5).
//! * [`tac`] — Algorithm 3, *Timing-Aware Communication scheduling*:
//!   iterative selection with the comparator derived in §4.3 (Equation 6).
//! * [`Schedule`] — priority assignments over `recv` ops, plus baselines
//!   ([`no_ordering`], [`random_order`]).
//! * [`Scheduler`] — a trait over the ordering policies ([`Baseline`],
//!   [`Random`], [`TicScheduler`], [`TacScheduler`]) so engines and
//!   sessions can dispatch without matching on policy kinds.
//! * [`efficiency`] — the scheduling-efficiency metric `E` (Equation 3),
//!   makespan bounds (Equations 1–2) and the speedup potential `S`
//!   (Equation 4).
//!
//! # Comparator note
//!
//! The paper's Algorithm 3 pseudo-code (`A ← min(P_A, M_B); B ← min(P_B,
//! M_A); return A < B`) contradicts its own derivation: Equation 6 states
//! `A ≺ B ⇔ min{P_B, M_A} < min{P_A, M_B}`, and applying the pseudo-code to
//! Figure 1a would schedule `recv2` before `recv1` — the order the paper
//! calls out as bad. We implement Equation 6 and verify it against both
//! worked examples (Figure 4a/4b) in unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod efficiency;
mod partition;
mod properties;
mod schedule;
mod scheduler;
mod tac;
mod tic;

pub use partition::PartitionGraph;
pub use properties::OpProperties;
pub use schedule::{merge_schedules, no_ordering, random_order, Schedule};
pub use scheduler::{
    Baseline, Random, Scheduler, SchedulerKind, Tac as TacScheduler, Tic as TicScheduler,
};
pub use tac::{
    tac, tac_observed, tac_order, tac_order_naive, tac_order_observed, worst_case, TacComparator,
};
pub use tic::{tic, tic_observed};
