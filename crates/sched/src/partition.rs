//! Worker-partition views of the global graph.

use tictac_graph::topo::RecvSet;
use tictac_graph::{DeviceId, Graph, OpId};
use tictac_timing::{SimDuration, TimeOracle};

/// A worker's partition of the computational graph, prepared for the
/// scheduling algorithms.
///
/// The partition contains the ops placed on one worker device. Within it,
/// `recv` ops are roots (their PS-side predecessors are outside the
/// partition), matching the paper's observation that "in the worker DAG,
/// all recv ops are roots and send ops are leaves" (§2.2).
///
/// Communication dependencies (`op.dep` — the set of recv ops an op
/// directly or transitively depends on, §4.1) are precomputed as bitsets
/// whose bit positions index [`PartitionGraph::recvs`].
#[derive(Debug, Clone)]
pub struct PartitionGraph {
    device: DeviceId,
    /// Global op ids in the partition; local index = position.
    ops: Vec<OpId>,
    /// Local index of a global op id.
    local: Vec<Option<u32>>,
    /// Local predecessor lists (edges whose both endpoints are local).
    preds: Vec<Vec<u32>>,
    /// Local indices of recv ops; bit `i` of a [`RecvSet`] refers to
    /// `recvs[i]`.
    recvs: Vec<u32>,
    /// Per local op: communication-dependency bitset.
    deps: Vec<RecvSet>,
}

impl PartitionGraph {
    /// Extracts the partition of `device` from `graph`.
    pub fn new(graph: &Graph, device: DeviceId) -> Self {
        let ops: Vec<OpId> = graph.ops_on(device).collect();
        let mut local = vec![None; graph.len()];
        for (i, &id) in ops.iter().enumerate() {
            local[id.index()] = Some(i as u32);
        }
        let preds: Vec<Vec<u32>> = ops
            .iter()
            .map(|&id| {
                graph
                    .preds(id)
                    .iter()
                    .filter_map(|p| local[p.index()])
                    .collect()
            })
            .collect();
        let recvs: Vec<u32> = ops
            .iter()
            .enumerate()
            .filter(|(_, &id)| graph.op(id).is_recv())
            .map(|(i, _)| i as u32)
            .collect();

        // Communication dependencies via forward propagation in local
        // topological order. Local ids preserve global id order, and global
        // ids are topologically consistent only if the builder inserted ops
        // in dependency order — which GraphBuilder does not guarantee.
        // Compute a local topo order explicitly.
        let order = local_topo_order(&ops, &preds);
        let words = RecvSet::words_for(recvs.len());
        let mut bit_of = vec![u32::MAX; ops.len()];
        for (bit, &r) in recvs.iter().enumerate() {
            bit_of[r as usize] = bit as u32;
        }
        let mut deps: Vec<RecvSet> = (0..ops.len()).map(|_| RecvSet::empty(words)).collect();
        for &i in &order {
            let mut acc = RecvSet::empty(words);
            for &p in &preds[i as usize] {
                acc.union_with(&deps[p as usize]);
            }
            if bit_of[i as usize] != u32::MAX {
                acc.insert(bit_of[i as usize] as usize);
            }
            deps[i as usize] = acc;
        }

        Self {
            device,
            ops,
            local,
            preds,
            recvs,
            deps,
        }
    }

    /// The worker device this partition belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of ops in the partition.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Global op id of local index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn global(&self, i: usize) -> OpId {
        self.ops[i]
    }

    /// Local index of a global op id, if the op is in this partition.
    pub fn local(&self, id: OpId) -> Option<usize> {
        self.local
            .get(id.index())
            .copied()
            .flatten()
            .map(|i| i as usize)
    }

    /// Local indices of recv ops; bit `i` of dependency sets refers to
    /// entry `i` of this slice.
    pub fn recvs(&self) -> &[u32] {
        &self.recvs
    }

    /// Global op ids of the partition's recv ops, in bit order.
    pub fn recv_ids(&self) -> Vec<OpId> {
        self.recvs.iter().map(|&r| self.ops[r as usize]).collect()
    }

    /// The communication-dependency set of local op `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn deps(&self, i: usize) -> &RecvSet {
        &self.deps[i]
    }

    /// Local predecessor list of local op `i`.
    pub fn preds(&self, i: usize) -> &[u32] {
        self.preds[i].as_slice()
    }

    /// Evaluates the oracle for every local op.
    pub fn durations(&self, graph: &Graph, oracle: &dyn TimeOracle) -> Vec<SimDuration> {
        self.ops
            .iter()
            .map(|&id| oracle.duration(graph, id))
            .collect()
    }
}

/// Kahn's algorithm over the local adjacency, smallest local id first.
fn local_topo_order(ops: &[OpId], preds: &[Vec<u32>]) -> Vec<u32> {
    let n = ops.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        indegree[i] = ps.len();
        for &p in ps {
            succs[p as usize].push(i as u32);
        }
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i as u32))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = heap.pop() {
        order.push(i);
        for &s in &succs[i as usize] {
            indegree[s as usize] -= 1;
            if indegree[s as usize] == 0 {
                heap.push(std::cmp::Reverse(s));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "partition of a DAG must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};

    /// Figure 1a plus PS-side ops, to check cross-device edges are cut.
    fn fig1a_with_ps() -> (Graph, DeviceId, [OpId; 4]) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("w1", 100);
        let p2 = b.add_param("w2", 100);
        let s1 = b.add_op("ps_send1", ps, OpKind::send(p1, ch), Cost::bytes(100), &[]);
        let s2 = b.add_op("ps_send2", ps, OpKind::send(p2, ch), Cost::bytes(100), &[]);
        let r1 = b.add_op("recv1", w, OpKind::recv(p1, ch), Cost::bytes(100), &[s1]);
        let r2 = b.add_op("recv2", w, OpKind::recv(p2, ch), Cost::bytes(100), &[s2]);
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(10.0), &[r1]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(10.0), &[op1, r2]);
        (b.build().unwrap(), w, [r1, r2, op1, op2])
    }

    #[test]
    fn partition_contains_only_worker_ops() {
        let (g, w, [r1, r2, op1, op2]) = fig1a_with_ps();
        let p = PartitionGraph::new(&g, w);
        assert_eq!(p.len(), 4);
        assert_eq!(p.recv_ids(), vec![r1, r2]);
        assert_eq!(p.local(r1), Some(0));
        assert_eq!(p.local(op2), Some(3));
        // PS ops are not in the partition.
        assert_eq!(p.local(OpId::from_index(0)), None);
        // recv1 has a PS-side pred which must be cut: locally a root.
        assert!(p.preds(p.local(r1).unwrap()).is_empty());
        assert_eq!(p.preds(p.local(op1).unwrap()), &[0]);
        assert_eq!(p.device(), w);
    }

    #[test]
    fn communication_dependencies_are_transitive() {
        let (g, w, [r1, r2, op1, op2]) = fig1a_with_ps();
        let p = PartitionGraph::new(&g, w);
        let d_op1 = p.deps(p.local(op1).unwrap());
        let d_op2 = p.deps(p.local(op2).unwrap());
        assert_eq!(d_op1.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(d_op2.iter().collect::<Vec<_>>(), vec![0, 1]);
        let d_r1 = p.deps(p.local(r1).unwrap());
        assert_eq!(d_r1.iter().collect::<Vec<_>>(), vec![0]);
        let d_r2 = p.deps(p.local(r2).unwrap());
        assert_eq!(d_r2.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn durations_use_oracle() {
        use tictac_timing::GeneralOracle;
        let (g, w, _) = fig1a_with_ps();
        let p = PartitionGraph::new(&g, w);
        let d = p.durations(&g, &GeneralOracle);
        // Two recvs at unit cost, two computes at zero.
        let unit = GeneralOracle::UNIT;
        assert_eq!(d.iter().filter(|&&x| x == unit).count(), 2);
        assert_eq!(d.iter().filter(|&&x| x.is_zero()).count(), 2);
    }
}
