//! Algorithm 1 of the paper: op properties over a set of outstanding recvs.
//!
//! For a partition `G`, a time oracle and a set `R` of outstanding (not yet
//! transferred) recv ops, the paper defines (§4.1):
//!
//! * `op.M` — *communication time*: total outstanding transfer time the op
//!   still waits for, `Σ_{r ∈ op.dep ∩ R} Time(r)`.
//! * `recv.P` — *directly-dependent compute load*: total `Time(op)` over
//!   ops that become unblocked by completing this recv alone (their only
//!   outstanding communication dependency is this recv).
//! * `recv.M⁺` — *impending communication load*: the minimum `op.M` over
//!   ops with **multiple** outstanding recv dependencies that include this
//!   recv; `∞` if there is no such op. `M⁺` includes the recv's own
//!   transfer time (it is part of `op.M`).
//!
//! The paper recomputes all properties from scratch every round
//! (`UpdateProperties`). This implementation is fully incremental
//! (DESIGN.md §7): a reverse index maps each recv bit to the ops whose
//! transitive dependency set contains it, so [`OpProperties::complete`]
//! touches only the ops whose count actually changes — `M` and the counts
//! are decremented in place, `P` accumulates exactly when an op's count
//! drops to one, and `M⁺` is maintained by a frontier-restricted min-merge
//! plus targeted re-derivation of the few bits whose minimum may have
//! risen. The naive per-round sweep survives as
//! [`OpProperties::recompute_m_plus`] / [`OpProperties::complete_naive`],
//! the reference implementation that seeds the initial state and anchors
//! the equivalence tests and benchmarks.
//!
//! # Why the incremental `M⁺` is exact
//!
//! Dependency sets grow along partition edges (`dep(succ) ⊇ dep(pred)`),
//! so both `op.M` and the outstanding count are monotone non-decreasing
//! from predecessor to successor. Three consequences:
//!
//! 1. The candidate set for a bit `c` (ops with `cnt ≥ 2` and `c ∈ dep`)
//!    is *up-closed*: `M⁺[c]` is attained at a minimal candidate.
//! 2. When completing a bit decreases a surviving candidate `i`, merging
//!    `min(M⁺[c], M[i])` into every `c ∈ dep(i) ∩ R` is sound — and any
//!    `c` covered by a predecessor `p` of `i` with `cnt(p) ≥ 2` can be
//!    skipped, because `M⁺[c] ≤ M[p] ≤ M[i]` is guaranteed by `p`'s own
//!    merge (or, inductively, by one of `p`'s predecessors').
//! 3. The minimum for `c` can only *rise* when a candidate leaves the set
//!    (its count drops from 2 to 1) while holding the stored minimum;
//!    exactly those bits are re-derived from the reverse index.

use crate::partition::PartitionGraph;
use tictac_graph::topo::RecvSet;
use tictac_timing::SimDuration;

/// Properties of Algorithm 1, maintained incrementally as recvs complete.
#[derive(Debug, Clone)]
pub struct OpProperties {
    /// Outstanding recv bits (the set `R`).
    outstanding: RecvSet,
    n_outstanding: usize,
    /// Per local op: `op.M`.
    m: Vec<SimDuration>,
    /// Per local op: `|op.dep ∩ R|`.
    cnt: Vec<u32>,
    /// Per recv bit: `P`.
    p: Vec<SimDuration>,
    /// Per recv bit: `M⁺` (`None` = ∞).
    m_plus: Vec<Option<SimDuration>>,
    /// Per local op: `Time(op)` under the oracle in use.
    durations: Vec<SimDuration>,
    /// Per recv bit: whether the op is a recv currently in `R` (used to
    /// exclude outstanding recvs from `P` contributions).
    is_recv: Vec<bool>,
    /// Per recv bit: local ops whose transitive dependency set contains the
    /// bit, ascending. The reverse of `part.deps`; lets `complete` touch
    /// only affected ops instead of sweeping the partition.
    dependents: Vec<Vec<u32>>,
    /// Scratch bitset for the frontier-restricted merge (avoids per-round
    /// allocation).
    scratch_set: RecvSet,
    /// Scratch: pre-completion `M` of each affected op.
    scratch_old_m: Vec<SimDuration>,
    /// Scratch: bits whose `M⁺` must be re-derived this round.
    scratch_dirty: Vec<usize>,
    /// Total `M⁺` min-merges applied by [`complete`](Self::complete)
    /// (Pass 3), across all rounds so far.
    merges: u64,
    /// Total dirty bits exactly re-derived by
    /// [`complete`](Self::complete) (Pass 4), across all rounds so far.
    rederived: u64,
}

impl OpProperties {
    /// Initializes properties with **all** recvs outstanding.
    ///
    /// # Panics
    ///
    /// Panics if `durations` does not cover every op of the partition.
    pub fn new(part: &PartitionGraph, durations: Vec<SimDuration>) -> Self {
        assert_eq!(
            durations.len(),
            part.len(),
            "durations must cover the partition"
        );
        let n_recv = part.recvs().len();
        let words = RecvSet::words_for(n_recv);
        let mut outstanding = RecvSet::empty(words);
        for bit in 0..n_recv {
            outstanding.insert(bit);
        }

        let mut is_recv = vec![false; part.len()];
        for &r in part.recvs() {
            is_recv[r as usize] = true;
        }

        let mut m = vec![SimDuration::ZERO; part.len()];
        let mut cnt = vec![0u32; part.len()];
        for i in 0..part.len() {
            let dep = part.deps(i);
            cnt[i] = dep.count() as u32;
            let mut total = SimDuration::ZERO;
            for bit in dep.iter() {
                total += durations[part.recvs()[bit] as usize];
            }
            m[i] = total;
        }

        // Initial P: non-recv ops whose entire dependency set is one recv.
        let mut p = vec![SimDuration::ZERO; n_recv];
        for i in 0..part.len() {
            if cnt[i] == 1 && !is_recv[i] {
                let bit = part.deps(i).iter().next().expect("cnt == 1");
                p[bit] += durations[i];
            }
        }

        let mut dependents = vec![Vec::new(); n_recv];
        for i in 0..part.len() {
            for bit in part.deps(i).iter() {
                dependents[bit].push(i as u32);
            }
        }

        let mut props = Self {
            outstanding,
            n_outstanding: n_recv,
            m,
            cnt,
            p,
            m_plus: vec![None; n_recv],
            durations,
            is_recv,
            dependents,
            scratch_set: RecvSet::empty(words),
            scratch_old_m: Vec::new(),
            scratch_dirty: Vec::new(),
            merges: 0,
            rederived: 0,
        };
        props.recompute_m_plus(part);
        props
    }

    /// Number of recvs still outstanding.
    pub fn outstanding_count(&self) -> usize {
        self.n_outstanding
    }

    /// Whether recv bit `bit` is outstanding.
    pub fn is_outstanding(&self, bit: usize) -> bool {
        self.outstanding.contains(bit)
    }

    /// Iterates over outstanding recv bits.
    pub fn outstanding(&self) -> impl Iterator<Item = usize> + '_ {
        self.outstanding.iter()
    }

    /// `op.M` of local op `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn m(&self, i: usize) -> SimDuration {
        self.m[i]
    }

    /// `P` of recv bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of bounds.
    pub fn p(&self, bit: usize) -> SimDuration {
        self.p[bit]
    }

    /// `M⁺` of recv bit `bit` (`None` = ∞).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of bounds.
    pub fn m_plus(&self, bit: usize) -> Option<SimDuration> {
        self.m_plus[bit]
    }

    /// The transfer time of recv bit `bit` (its `M` as a root op).
    pub fn recv_time(&self, part: &PartitionGraph, bit: usize) -> SimDuration {
        self.durations[part.recvs()[bit] as usize]
    }

    /// Total `M⁺` min-merges applied by the incremental
    /// [`complete`](Self::complete) so far — one per (candidate, bit) pair
    /// actually touched in the frontier-restricted merge.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total dirty bits whose `M⁺` the incremental
    /// [`complete`](Self::complete) re-derived exactly so far.
    pub fn rederived(&self) -> u64 {
        self.rederived
    }

    /// Marks recv `bit` as completed (removes it from `R`) and updates `M`,
    /// counts, `P` **and `M⁺`** incrementally.
    ///
    /// Only ops whose dependency count actually changes (the reverse index
    /// of `bit`) are touched; `M⁺` is maintained by a frontier-restricted
    /// min-merge plus exact re-derivation of bits whose minimum may have
    /// risen (see the module docs). Equivalent to
    /// [`complete_naive`](Self::complete_naive) followed by
    /// [`recompute_m_plus`](Self::recompute_m_plus).
    ///
    /// # Panics
    ///
    /// Panics if the recv is not outstanding.
    pub fn complete(&mut self, part: &PartitionGraph, bit: usize) {
        assert!(self.outstanding.contains(bit), "recv {bit} not outstanding");
        self.outstanding.remove(bit);
        self.n_outstanding -= 1;
        let recv_dur = self.durations[part.recvs()[bit] as usize];

        // The completed bit can never be selected again, so its dependents
        // list is dead weight: take it, freeing the borrow for the passes
        // below.
        let affected = std::mem::take(&mut self.dependents[bit]);

        // Pass 1: decrement M and the counts, accumulate P — the same
        // transitions as the naive sweep, restricted to affected ops.
        self.scratch_old_m.clear();
        for &i in &affected {
            let i = i as usize;
            self.scratch_old_m.push(self.m[i]);
            self.m[i] = self.m[i].saturating_sub(recv_dur);
            self.cnt[i] -= 1;
            if self.cnt[i] == 1 && !self.is_recv[i] {
                // The op now waits on exactly one outstanding recv.
                if let Some(owner) = part.deps(i).iter_intersection(&self.outstanding).next() {
                    self.p[owner] += self.durations[i];
                }
            }
        }

        // The completed recv left `R`; its own M+ slot is undefined now.
        self.m_plus[bit] = None;

        // Pass 2: an op leaving the candidate set (count 2 -> 1) while its
        // old M equals the stored minimum may have been the argmin — those
        // bits must be re-derived from scratch.
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        for (k, &i) in affected.iter().enumerate() {
            let i = i as usize;
            if self.cnt[i] != 1 {
                continue;
            }
            let old_m = self.scratch_old_m[k];
            for c in part.deps(i).iter_intersection(&self.outstanding) {
                if self.m_plus[c] == Some(old_m) {
                    dirty.push(c);
                }
            }
        }

        // Pass 3: surviving candidates decreased; min-merge their new M
        // into their dependency bits. Bits covered by a predecessor that is
        // itself a candidate are skipped: the predecessor's (smaller) M
        // already bounds them.
        let mut fresh = std::mem::take(&mut self.scratch_set);
        for &i in &affected {
            let i = i as usize;
            if self.cnt[i] < 2 {
                continue;
            }
            // Dependency sets nest along edges, so a qualifying predecessor
            // with the same count has the *same* outstanding set — every
            // bit is covered and the merge is a no-op. This catches almost
            // every op on chain-shaped models without touching bitset
            // words.
            if part
                .preds(i)
                .iter()
                .any(|&p| self.cnt[p as usize] == self.cnt[i])
            {
                continue;
            }
            let m_new = self.m[i];
            fresh.copy_from(part.deps(i));
            fresh.intersect_with(&self.outstanding);
            for &p in part.preds(i) {
                if self.cnt[p as usize] >= 2 {
                    fresh.difference_with(part.deps(p as usize));
                }
            }
            for c in fresh.iter() {
                self.merges += 1;
                let slot = &mut self.m_plus[c];
                *slot = Some(match *slot {
                    Some(cur) => cur.min(m_new),
                    None => m_new,
                });
            }
        }
        self.scratch_set = fresh;

        // Pass 4: exact re-derivation of the dirty bits via the reverse
        // index (overwrites whatever the merges left there).
        dirty.sort_unstable();
        dirty.dedup();
        self.rederived += dirty.len() as u64;
        for &c in &dirty {
            let mut best: Option<SimDuration> = None;
            for &j in &self.dependents[c] {
                let j = j as usize;
                if self.cnt[j] >= 2 {
                    best = Some(match best {
                        Some(b) => b.min(self.m[j]),
                        None => self.m[j],
                    });
                }
            }
            self.m_plus[c] = best;
        }
        self.scratch_dirty = dirty;
    }

    /// Reference implementation of the completion step: the full `O(|G|)`
    /// sweep of the seed engine, leaving `M⁺` stale. Pair with
    /// [`recompute_m_plus`](Self::recompute_m_plus) to reproduce the naive
    /// per-round cost; used by the equivalence tests and the benchmark
    /// harness's `tac_naive` stage.
    ///
    /// # Panics
    ///
    /// Panics if the recv is not outstanding.
    pub fn complete_naive(&mut self, part: &PartitionGraph, bit: usize) {
        assert!(self.outstanding.contains(bit), "recv {bit} not outstanding");
        self.outstanding.remove(bit);
        self.n_outstanding -= 1;
        let recv_dur = self.durations[part.recvs()[bit] as usize];
        for i in 0..part.len() {
            if !part.deps(i).contains(bit) {
                continue;
            }
            self.m[i] = self.m[i].saturating_sub(recv_dur);
            self.cnt[i] -= 1;
            if self.cnt[i] == 1 && !self.is_recv[i] {
                // The op now waits on exactly one outstanding recv.
                if let Some(owner) = part.deps(i).iter_intersection(&self.outstanding).next() {
                    self.p[owner] += self.durations[i];
                }
            }
        }
    }

    /// Recomputes `M⁺` for all outstanding recvs with a full sweep — the
    /// naive per-round reference. [`complete`](Self::complete) maintains
    /// the same values incrementally; this remains for initialization and
    /// as the oracle in equivalence tests and benchmarks.
    pub fn recompute_m_plus(&mut self, part: &PartitionGraph) {
        for v in &mut self.m_plus {
            *v = None;
        }
        for i in 0..part.len() {
            if self.cnt[i] <= 1 {
                continue;
            }
            let op_m = self.m[i];
            for bit in part.deps(i).iter_intersection(&self.outstanding) {
                let slot = &mut self.m_plus[bit];
                *slot = Some(match *slot {
                    Some(cur) => cur.min(op_m),
                    None => op_m,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, DeviceId, Graph, GraphBuilder, OpId, OpKind};
    use tictac_timing::{CostOracle, Platform, TimeOracle};

    /// Figure 1a: recv1 -> op1 -> op2, recv2 -> op2.
    fn fig1a() -> (Graph, DeviceId, [OpId; 4]) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("w1", 1_000_000);
        let p2 = b.add_param("w2", 2_000_000);
        let r1 = b.add_op(
            "recv1",
            w,
            OpKind::recv(p1, ch),
            Cost::bytes(1_000_000),
            &[],
        );
        let r2 = b.add_op(
            "recv2",
            w,
            OpKind::recv(p2, ch),
            Cost::bytes(2_000_000),
            &[],
        );
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(5.0e8), &[r1]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(5.0e8), &[op1, r2]);
        (b.build().unwrap(), w, [r1, r2, op1, op2])
    }

    #[test]
    fn initial_properties_match_paper_figure_1a() {
        let (g, w, [r1, r2, op1, op2]) = fig1a();
        let part = PartitionGraph::new(&g, w);
        let oracle = CostOracle::new(Platform::cpu_cluster());
        let durs = part.durations(&g, &oracle);
        let props = OpProperties::new(&part, durs.clone());

        let t_r1 = oracle.duration(&g, r1);
        let t_r2 = oracle.duration(&g, r2);
        let t_op1 = oracle.duration(&g, op1);

        // op1.M = Time(recv1); op2.M = Time(recv1) + Time(recv2) (§4.1).
        assert_eq!(props.m(part.local(op1).unwrap()), t_r1);
        assert_eq!(props.m(part.local(op2).unwrap()), t_r1 + t_r2);

        // recv1.P = Time(op1); recv2.P = 0 (§4.1).
        assert_eq!(props.p(0), t_op1);
        assert_eq!(props.p(1), SimDuration::ZERO);

        // recv1.M+ = recv2.M+ = Time(recv1) + Time(recv2) via op2 (§4.1).
        assert_eq!(props.m_plus(0), Some(t_r1 + t_r2));
        assert_eq!(props.m_plus(1), Some(t_r1 + t_r2));

        assert_eq!(props.outstanding_count(), 2);
        assert_eq!(props.recv_time(&part, 0), t_r1);
        assert_eq!(props.recv_time(&part, 1), t_r2);
    }

    #[test]
    fn completing_a_recv_updates_m_cnt_and_p() {
        let (g, w, [_r1, r2, op1, op2]) = fig1a();
        let part = PartitionGraph::new(&g, w);
        let oracle = CostOracle::new(Platform::cpu_cluster());
        let durs = part.durations(&g, &oracle);
        let mut props = OpProperties::new(&part, durs);

        let t_r2 = oracle.duration(&g, r2);
        let t_op2 = oracle.duration(&g, op2);

        props.complete(&part, 0); // recv1 done
        props.recompute_m_plus(&part);

        assert!(!props.is_outstanding(0));
        assert!(props.is_outstanding(1));
        assert_eq!(props.outstanding_count(), 1);
        // op2 now waits only on recv2.
        assert_eq!(props.m(part.local(op2).unwrap()), t_r2);
        // op2's only outstanding dependency is recv2 => contributes to P.
        // op1 has no outstanding deps and contributes to nothing.
        assert_eq!(props.p(1), t_op2);
        // No op has multiple outstanding recv deps anymore: M+ = infinity.
        assert_eq!(props.m_plus(1), None);
        // op1.M dropped to zero.
        assert_eq!(props.m(part.local(op1).unwrap()), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "not outstanding")]
    fn double_completion_panics() {
        let (g, w, _) = fig1a();
        let part = PartitionGraph::new(&g, w);
        let oracle = CostOracle::new(Platform::cpu_cluster());
        let durs = part.durations(&g, &oracle);
        let mut props = OpProperties::new(&part, durs);
        props.complete(&part, 0);
        props.complete(&part, 0);
    }

    /// Figure 4b: op1 <- {A, B}; op2 <- {op1, C}; op3 <- {op2, D}.
    /// With everything outstanding, A and B tie at the smallest M+.
    #[test]
    fn figure_4b_m_plus_ordering() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let recv = |b: &mut GraphBuilder, name: &str, bytes: u64| {
            let p = b.add_param(format!("p_{name}"), bytes);
            b.add_op(name, w, OpKind::recv(p, ch), Cost::bytes(bytes), &[])
        };
        let a = recv(&mut b, "A", 1_000_000);
        let bb = recv(&mut b, "B", 1_000_000);
        let c = recv(&mut b, "C", 1_000_000);
        let d = recv(&mut b, "D", 1_000_000);
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1e8), &[a, bb]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(1e8), &[op1, c]);
        let _op3 = b.add_op("op3", w, OpKind::Compute, Cost::flops(1e8), &[op2, d]);
        let g = b.build().unwrap();
        let part = PartitionGraph::new(&g, w);
        let oracle = CostOracle::new(Platform::cpu_cluster());
        let props = OpProperties::new(&part, part.durations(&g, &oracle));

        let t = |id| oracle.duration(&g, id);
        // Bits follow recv order of addition: A=0, B=1, C=2, D=3.
        assert_eq!(props.m_plus(0), Some(t(a) + t(bb)));
        assert_eq!(props.m_plus(1), Some(t(a) + t(bb)));
        assert_eq!(props.m_plus(2), Some(t(a) + t(bb) + t(c)));
        assert_eq!(props.m_plus(3), Some(t(a) + t(bb) + t(c) + t(d)));
        // All P are zero: nothing unblocks on a single recv.
        for bit in 0..4 {
            assert_eq!(props.p(bit), SimDuration::ZERO);
        }
    }
}
