//! Priority schedules over ops, plus the paper's baselines.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tictac_graph::{ChannelId, DeviceId, Graph, OpId};

/// Priority assignments for a graph's ops.
///
/// Following the paper (§3.1): a priority is a non-negative number; *lower*
/// numbers are scheduled first; ops may share a priority if their relative
/// order is insignificant; ops without a priority are unconstrained. The
/// simulator's ready-queue rule consumes this type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    by_op: Vec<Option<u64>>,
}

impl Schedule {
    /// A schedule with no priorities for a graph of `n` ops (the paper's
    /// *baseline*: execution order is arbitrary).
    pub fn empty(n: usize) -> Self {
        Self {
            by_op: vec![None; n],
        }
    }

    /// Assigns priority `priority` to `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of bounds for the schedule.
    pub fn set(&mut self, op: OpId, priority: u64) {
        self.by_op[op.index()] = Some(priority);
    }

    /// The priority of `op`, if assigned.
    pub fn priority(&self, op: OpId) -> Option<u64> {
        self.by_op.get(op.index()).copied().flatten()
    }

    /// Number of ops covered (prioritized or not).
    pub fn len(&self) -> usize {
        self.by_op.len()
    }

    /// Whether the schedule covers zero ops.
    pub fn is_empty(&self) -> bool {
        self.by_op.is_empty()
    }

    /// Whether no op has a priority (baseline behaviour).
    pub fn is_unordered(&self) -> bool {
        self.by_op.iter().all(Option::is_none)
    }

    /// Iterates over `(op, priority)` pairs that have priorities.
    pub fn prioritized(&self) -> impl Iterator<Item = (OpId, u64)> + '_ {
        self.by_op
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (OpId::from_index(i), p)))
    }

    /// The prioritized `recv` ops of `channel`, in priority order (ties by
    /// op id).
    ///
    /// This is the per-channel transfer order the enforcement module
    /// normalizes to ranks `[0, n)` (paper §5.1). For one channel at a
    /// time; callers walking *every* channel should use
    /// [`ordered_recvs_per_channel`](Self::ordered_recvs_per_channel),
    /// which buckets all channels in one pass instead of rescanning the
    /// prioritized set per channel.
    pub fn ordered_recvs(&self, graph: &Graph, channel: ChannelId) -> Vec<OpId> {
        let mut recvs: Vec<(u64, OpId)> = self
            .prioritized()
            .filter(|(op, _)| {
                let o = graph.op(*op);
                o.is_recv() && o.kind().channel() == Some(channel)
            })
            .map(|(op, p)| (p, op))
            .collect();
        recvs.sort_unstable();
        recvs.into_iter().map(|(_, op)| op).collect()
    }

    /// [`ordered_recvs`](Self::ordered_recvs) for every channel at once:
    /// `result[c]` is the prioritized recv order of channel `c` (priority
    /// order, ties by op id).
    ///
    /// A single pass over the prioritized set with per-channel bucketing —
    /// `O(P log P)` total instead of the `O(C · P)` a per-channel rescan
    /// costs, which dominates engine setup at thousand-worker scale
    /// (a 1024-worker / 32-shard deployment has 32768 channels).
    pub fn ordered_recvs_per_channel(&self, graph: &Graph) -> Vec<Vec<OpId>> {
        let mut per_channel: Vec<Vec<(u64, OpId)>> = vec![Vec::new(); graph.channels().len()];
        for (op, p) in self.prioritized() {
            let o = graph.op(op);
            if !o.is_recv() {
                continue;
            }
            if let Some(ch) = o.kind().channel() {
                per_channel[ch.index()].push((p, op));
            }
        }
        per_channel
            .into_iter()
            .map(|mut recvs| {
                recvs.sort_unstable();
                recvs.into_iter().map(|(_, op)| op).collect()
            })
            .collect()
    }
}

/// The paper's baseline: no enforced ordering at all.
pub fn no_ordering(graph: &Graph) -> Schedule {
    Schedule::empty(graph.len())
}

/// A uniformly random total order over the recv ops of `worker`.
///
/// Used in §6.3 to show that enforcing *any* consistent order already
/// reduces the straggler effect, regardless of order quality.
pub fn random_order(graph: &Graph, worker: DeviceId, rng: &mut impl Rng) -> Schedule {
    let mut recvs = graph.recv_ops_on(worker);
    recvs.shuffle(rng);
    let mut s = Schedule::empty(graph.len());
    for (rank, op) in recvs.into_iter().enumerate() {
        s.set(op, rank as u64);
    }
    s
}

/// Merges per-worker schedules into one graph-wide schedule.
///
/// # Panics
///
/// Panics if schedules overlap (two schedules assign the same op) or cover
/// different graph sizes.
pub fn merge_schedules<I: IntoIterator<Item = Schedule>>(schedules: I) -> Schedule {
    let mut iter = schedules.into_iter();
    let mut merged = iter.next().expect("at least one schedule");
    for s in iter {
        assert_eq!(s.len(), merged.len(), "schedules cover different graphs");
        for (op, pri) in s.prioritized() {
            assert!(
                merged.priority(op).is_none(),
                "op {op} prioritized by two schedules"
            );
            merged.set(op, pri);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tictac_graph::{Cost, GraphBuilder, OpKind};

    fn two_channel_graph() -> (Graph, DeviceId, Vec<OpId>) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps0 = b.add_parameter_server("ps0");
        let ps1 = b.add_parameter_server("ps1");
        let ch0 = b.add_channel(w, ps0);
        let ch1 = b.add_channel(w, ps1);
        let mut recvs = Vec::new();
        for i in 0..4 {
            let p = b.add_param(format!("p{i}"), 10);
            let ch = if i % 2 == 0 { ch0 } else { ch1 };
            recvs.push(b.add_op(
                format!("recv{i}"),
                w,
                OpKind::recv(p, ch),
                Cost::bytes(10),
                &[],
            ));
        }
        (b.build().unwrap(), w, recvs)
    }

    #[test]
    fn empty_schedule_is_unordered() {
        let (g, ..) = two_channel_graph();
        let s = no_ordering(&g);
        assert!(s.is_unordered());
        assert_eq!(s.prioritized().count(), 0);
        assert_eq!(s.len(), g.len());
    }

    #[test]
    fn set_and_get_priorities() {
        let (g, _, recvs) = two_channel_graph();
        let mut s = Schedule::empty(g.len());
        s.set(recvs[2], 0);
        s.set(recvs[0], 1);
        assert_eq!(s.priority(recvs[2]), Some(0));
        assert_eq!(s.priority(recvs[0]), Some(1));
        assert_eq!(s.priority(recvs[1]), None);
        assert!(!s.is_unordered());
        assert_eq!(s.prioritized().count(), 2);
    }

    #[test]
    fn ordered_recvs_filters_by_channel_and_sorts() {
        let (g, _, recvs) = two_channel_graph();
        let ch0 = g.channels()[0].id();
        let ch1 = g.channels()[1].id();
        let mut s = Schedule::empty(g.len());
        // recv0 and recv2 are on ch0; give recv2 the higher priority.
        s.set(recvs[0], 5);
        s.set(recvs[2], 1);
        s.set(recvs[1], 0);
        assert_eq!(s.ordered_recvs(&g, ch0), vec![recvs[2], recvs[0]]);
        assert_eq!(s.ordered_recvs(&g, ch1), vec![recvs[1]]);
    }

    #[test]
    fn ordered_recvs_breaks_ties_by_op_id() {
        let (g, _, recvs) = two_channel_graph();
        let ch0 = g.channels()[0].id();
        let mut s = Schedule::empty(g.len());
        s.set(recvs[0], 3);
        s.set(recvs[2], 3);
        assert_eq!(s.ordered_recvs(&g, ch0), vec![recvs[0], recvs[2]]);
    }

    #[test]
    fn per_channel_bucketing_matches_the_single_channel_path() {
        let (g, _, recvs) = two_channel_graph();
        let mut s = Schedule::empty(g.len());
        s.set(recvs[0], 5);
        s.set(recvs[2], 1);
        s.set(recvs[1], 0);
        // recv3 deliberately unprioritized; ties exercised separately.
        let bulk = s.ordered_recvs_per_channel(&g);
        assert_eq!(bulk.len(), g.channels().len());
        for ch in g.channels() {
            assert_eq!(bulk[ch.id().index()], s.ordered_recvs(&g, ch.id()));
        }
    }

    #[test]
    fn random_order_is_a_permutation_and_seeded() {
        let (g, w, recvs) = two_channel_graph();
        let s1 = random_order(&g, w, &mut SmallRng::seed_from_u64(9));
        let s2 = random_order(&g, w, &mut SmallRng::seed_from_u64(9));
        assert_eq!(s1, s2);
        let mut pris: Vec<u64> = recvs.iter().map(|&r| s1.priority(r).unwrap()).collect();
        pris.sort_unstable();
        assert_eq!(pris, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_combines_disjoint_schedules() {
        let (g, _, recvs) = two_channel_graph();
        let mut a = Schedule::empty(g.len());
        a.set(recvs[0], 0);
        let mut b = Schedule::empty(g.len());
        b.set(recvs[1], 7);
        let merged = merge_schedules([a, b]);
        assert_eq!(merged.priority(recvs[0]), Some(0));
        assert_eq!(merged.priority(recvs[1]), Some(7));
    }

    #[test]
    #[should_panic(expected = "prioritized by two schedules")]
    fn merge_rejects_overlap() {
        let (g, _, recvs) = two_channel_graph();
        let mut a = Schedule::empty(g.len());
        a.set(recvs[0], 0);
        let mut b = Schedule::empty(g.len());
        b.set(recvs[0], 1);
        merge_schedules([a, b]);
    }
}
