//! The [`Scheduler`] trait: a uniform interface over the paper's
//! transfer-ordering policies.
//!
//! Each policy assigns priorities to the `recv` ops of one worker; callers
//! (e.g. `tictac-core`'s session) pick a reference worker, call
//! [`Scheduler::assign`], and replicate the result across workers. The
//! legacy free functions ([`tic`], [`tac`], [`no_ordering`],
//! [`random_order`]) remain as thin wrappers; trait output is pinned to
//! them by conformance tests.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tictac_graph::{DeviceId, Graph};
use tictac_obs::Registry;
use tictac_timing::TimeOracle;

use crate::schedule::{no_ordering, random_order, Schedule};
use crate::tac::tac_observed;
use crate::tic::tic_observed;

/// Which transfer-scheduling policy to enforce.
///
/// The closed, nameable counterpart of the open [`Scheduler`] trait:
/// config surfaces (sessions, scenario files, run records, CLIs) carry a
/// `SchedulerKind`; `tictac-core` lowers it onto the corresponding
/// policy implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// No enforced order — the paper's baseline; transfer order is whatever
    /// the runtime's random ready-queue pops produce.
    Baseline,
    /// A uniformly random but *fixed* total order, identical on all
    /// workers (used in §6.3 to isolate the benefit of consistency).
    Random,
    /// Timing-Independent Communication scheduling (Algorithm 2).
    Tic,
    /// Timing-Aware Communication scheduling (Algorithm 3), fed by the
    /// min-of-5 traced profile (§5).
    Tac,
}

impl SchedulerKind {
    /// All policies, baseline first.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Baseline,
        SchedulerKind::Random,
        SchedulerKind::Tic,
        SchedulerKind::Tac,
    ];

    /// The policy's short lowercase name (the [`Display`](std::fmt::Display)
    /// rendering).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "baseline",
            SchedulerKind::Random => "random",
            SchedulerKind::Tic => "tic",
            SchedulerKind::Tac => "tac",
        }
    }

    /// Parses a policy from its short lowercase name.
    pub fn from_name(name: &str) -> Option<SchedulerKind> {
        SchedulerKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A transfer-ordering policy: assigns priorities to `worker`'s recv ops.
pub trait Scheduler {
    /// Short lowercase policy name (e.g. `"tac"`), for display and metrics.
    fn name(&self) -> &'static str;

    /// Computes the schedule for `worker`'s recv ops on `graph`.
    ///
    /// `oracle` provides per-op durations (ignored by timing-independent
    /// policies); `registry`, when given and enabled, receives derivation
    /// timings (`sched.*.derive_ns`).
    fn assign(
        &self,
        graph: &Graph,
        worker: DeviceId,
        oracle: &dyn TimeOracle,
        registry: Option<&Registry>,
    ) -> Schedule;
}

/// The paper's baseline: no enforced ordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl Scheduler for Baseline {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn assign(
        &self,
        graph: &Graph,
        _worker: DeviceId,
        _oracle: &dyn TimeOracle,
        _registry: Option<&Registry>,
    ) -> Schedule {
        no_ordering(graph)
    }
}

/// A uniformly random total order, deterministic in `seed` (§6.3: any
/// consistent order already beats none).
#[derive(Debug, Clone, Copy)]
pub struct Random {
    /// RNG seed; the same seed yields the same order.
    pub seed: u64,
}

impl Scheduler for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(
        &self,
        graph: &Graph,
        worker: DeviceId,
        _oracle: &dyn TimeOracle,
        _registry: Option<&Registry>,
    ) -> Schedule {
        random_order(graph, worker, &mut SmallRng::seed_from_u64(self.seed))
    }
}

/// Timing-Independent Communication scheduling (Algorithm 2). Ignores the
/// oracle: TIC costs ops with the general time oracle by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tic;

impl Scheduler for Tic {
    fn name(&self) -> &'static str {
        "tic"
    }

    fn assign(
        &self,
        graph: &Graph,
        worker: DeviceId,
        _oracle: &dyn TimeOracle,
        registry: Option<&Registry>,
    ) -> Schedule {
        let disabled = Registry::disabled();
        tic_observed(graph, worker, registry.unwrap_or(&disabled))
    }
}

/// Timing-Aware Communication scheduling (Algorithm 3), driven by the
/// caller's oracle (typically a measured min-of-5 profile, §5).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tac;

impl Scheduler for Tac {
    fn name(&self) -> &'static str {
        "tac"
    }

    fn assign(
        &self,
        graph: &Graph,
        worker: DeviceId,
        oracle: &dyn TimeOracle,
        registry: Option<&Registry>,
    ) -> Schedule {
        let disabled = Registry::disabled();
        tac_observed(graph, worker, oracle, registry.unwrap_or(&disabled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tac, tic};
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_timing::GeneralOracle;

    fn deployed() -> (Graph, DeviceId) {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let w = d.workers()[0];
        (d.graph().clone(), w)
    }

    #[test]
    fn trait_objects_dispatch() {
        let (g, w) = deployed();
        let policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Baseline),
            Box::new(Random { seed: 7 }),
            Box::new(Tic),
            Box::new(Tac),
        ];
        for p in &policies {
            let s = p.assign(&g, w, &GeneralOracle, None);
            assert_eq!(s.len(), g.len());
        }
    }

    #[test]
    fn baseline_matches_no_ordering() {
        let (g, w) = deployed();
        assert_eq!(
            Baseline.assign(&g, w, &GeneralOracle, None),
            no_ordering(&g)
        );
    }

    #[test]
    fn random_matches_seeded_free_function() {
        let (g, w) = deployed();
        let via_trait = Random { seed: 42 }.assign(&g, w, &GeneralOracle, None);
        let direct = random_order(&g, w, &mut SmallRng::seed_from_u64(42));
        assert_eq!(via_trait, direct);
        assert!(!via_trait.is_unordered());
    }

    #[test]
    fn tic_and_tac_match_free_functions() {
        let (g, w) = deployed();
        assert_eq!(Tic.assign(&g, w, &GeneralOracle, None), tic(&g, w));
        assert_eq!(
            Tac.assign(&g, w, &GeneralOracle, None),
            tac(&g, w, &GeneralOracle)
        );
    }

    #[test]
    fn registry_presence_never_changes_the_schedule() {
        let (g, w) = deployed();
        let reg = Registry::enabled();
        for p in [&Tic as &dyn Scheduler, &Tac] {
            assert_eq!(
                p.assign(&g, w, &GeneralOracle, Some(&reg)),
                p.assign(&g, w, &GeneralOracle, None)
            );
        }
    }
}
