//! Algorithm 3: Timing-Aware Communication scheduling (TAC).

use crate::partition::PartitionGraph;
use crate::properties::OpProperties;
use crate::schedule::Schedule;
use tictac_graph::{DeviceId, Graph, OpId};
use tictac_obs::Registry;
use tictac_timing::{SimDuration, TimeOracle};

/// The pairwise comparator of §4.3.
///
/// For two outstanding recvs `A` and `B`, with `P` the directly-dependent
/// compute load, `M` the transfer time and `M⁺` the impending
/// communication load:
///
/// * Case 1 (Equation 6): `A ≺ B ⇔ min{P_B, M_A} < min{P_A, M_B}` —
///   prefer the transfer whose completion unblocks more computation per
///   unit of communication.
/// * Case 2: on ties (e.g. all `P = 0` at the start of an iteration),
///   prefer the smaller `M⁺` — the transfer that completes a computation's
///   communication requirements soonest. `∞` (no joint dependent op)
///   compares greater than any finite load.
///
/// See the crate-level note: the paper's pseudo-code swaps the operands of
/// Equation 6; we follow the derivation (and reproduce the paper's worked
/// examples in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TacComparator;

/// The per-recv inputs consumed by [`TacComparator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvScore {
    /// Directly-dependent compute load `P`.
    pub p: SimDuration,
    /// Transfer time `M` of the recv itself.
    pub m: SimDuration,
    /// Impending communication load `M⁺` (`None` = ∞).
    pub m_plus: Option<SimDuration>,
}

impl TacComparator {
    /// Whether `a` should strictly precede `b`.
    pub fn precedes(self, a: RecvScore, b: RecvScore) -> bool {
        let lhs = b.p.min(a.m); // min{P_B, M_A}
        let rhs = a.p.min(b.m); // min{P_A, M_B}
        if lhs != rhs {
            return lhs < rhs;
        }
        match (a.m_plus, b.m_plus) {
            (Some(x), Some(y)) => x < y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => false,
        }
    }
}

/// Picks the minimum outstanding recv under [`TacComparator`] (ties broken
/// by op id for determinism).
fn select_best(part: &PartitionGraph, props: &OpProperties) -> usize {
    props
        .outstanding()
        .map(|bit| {
            (
                bit,
                RecvScore {
                    p: props.p(bit),
                    m: props.recv_time(part, bit),
                    m_plus: props.m_plus(bit),
                },
            )
        })
        .reduce(|best, cand| {
            if TacComparator.precedes(cand.1, best.1) {
                cand
            } else {
                best
            }
        })
        .map(|(bit, _)| bit)
        .expect("outstanding set is non-empty")
}

/// Computes the TAC transfer order for the recv ops of `worker`.
///
/// Iteratively (Algorithm 3): update properties for the outstanding set,
/// pick the minimum recv under [`TacComparator`] (ties broken by op id for
/// determinism), mark it complete and repeat. Returns recv ops in transfer
/// order.
///
/// Properties are maintained incrementally across rounds (DESIGN.md §7);
/// [`tac_order_naive`] is the reference implementation with the paper's
/// per-round recomputation, kept for equivalence tests and benchmarks.
pub fn tac_order(graph: &Graph, worker: DeviceId, oracle: &dyn TimeOracle) -> Vec<OpId> {
    tac_order_observed(graph, worker, oracle, &Registry::disabled())
}

/// [`tac_order`] with derivation instrumented into `registry`:
///
/// * `sched.tac.derive_ns` (timer) — the wall-clock derivation span;
/// * `sched.tac.merges` (counter) — `M⁺` min-merges applied by the
///   incremental property maintenance;
/// * `sched.tac.rederived` (counter) — dirty bits whose `M⁺` was
///   re-derived exactly.
///
/// With a disabled registry this is exactly [`tac_order`]: the order never
/// depends on the registry.
pub fn tac_order_observed(
    graph: &Graph,
    worker: DeviceId,
    oracle: &dyn TimeOracle,
    registry: &Registry,
) -> Vec<OpId> {
    let span = registry.timer("sched.tac.derive_ns");
    let _guard = span.start();
    let part = PartitionGraph::new(graph, worker);
    let durations = part.durations(graph, oracle);
    let mut props = OpProperties::new(&part, durations);

    let mut order = Vec::with_capacity(part.recvs().len());
    while props.outstanding_count() > 0 {
        let best = select_best(&part, &props);
        order.push(part.global(part.recvs()[best] as usize));
        props.complete(&part, best);
    }
    registry.counter("sched.tac.merges").add(props.merges());
    registry
        .counter("sched.tac.rederived")
        .add(props.rederived());
    order
}

/// Reference implementation of [`tac_order`] using the naive full sweep
/// (`complete_naive` + `recompute_m_plus`) every round, as the paper's
/// pseudo-code is written. Returns the same order as [`tac_order`] — the
/// proptest and zoo equivalence tests pin that — at `O(|R|²·|G|)` cost.
pub fn tac_order_naive(graph: &Graph, worker: DeviceId, oracle: &dyn TimeOracle) -> Vec<OpId> {
    let part = PartitionGraph::new(graph, worker);
    let durations = part.durations(graph, oracle);
    let mut props = OpProperties::new(&part, durations);

    let mut order = Vec::with_capacity(part.recvs().len());
    while props.outstanding_count() > 0 {
        let best = select_best(&part, &props);
        order.push(part.global(part.recvs()[best] as usize));
        props.complete_naive(&part, best);
        props.recompute_m_plus(&part);
    }
    order
}

/// Computes the TAC schedule for the recv ops of `worker`: sequential
/// priorities `0, 1, 2, …` in [`tac_order`].
pub fn tac(graph: &Graph, worker: DeviceId, oracle: &dyn TimeOracle) -> Schedule {
    tac_observed(graph, worker, oracle, &Registry::disabled())
}

/// [`tac`] with derivation instrumented into `registry`; see
/// [`tac_order_observed`] for the metrics recorded.
pub fn tac_observed(
    graph: &Graph,
    worker: DeviceId,
    oracle: &dyn TimeOracle,
    registry: &Registry,
) -> Schedule {
    let mut schedule = Schedule::empty(graph.len());
    for (rank, op) in tac_order_observed(graph, worker, oracle, registry)
        .into_iter()
        .enumerate()
    {
        schedule.set(op, rank as u64);
    }
    schedule
}

/// An *adversarial* schedule: the reverse of [`tac_order`], delaying the
/// transfers that unblock computation soonest until the very end.
///
/// Not in the paper; used to measure the empirical best-to-worst spread of
/// enforced orders and compare it with the theoretical speedup potential
/// `S` of Equation 4 (which ignores DAG dependencies and therefore upper
/// bounds it).
pub fn worst_case(graph: &Graph, worker: DeviceId, oracle: &dyn TimeOracle) -> Schedule {
    let mut schedule = Schedule::empty(graph.len());
    for (rank, op) in tac_order(graph, worker, oracle)
        .into_iter()
        .rev()
        .enumerate()
    {
        schedule.set(op, rank as u64);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};
    use tictac_timing::{CostOracle, Platform};

    fn dur(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn comparator_case_1_prefers_unblocking_transfer() {
        // Figure 1a/4a: A unblocks computation (P_A > 0), B does not.
        let a = RecvScore {
            p: dur(100),
            m: dur(10),
            m_plus: Some(dur(30)),
        };
        let b = RecvScore {
            p: SimDuration::ZERO,
            m: dur(20),
            m_plus: Some(dur(30)),
        };
        assert!(TacComparator.precedes(a, b));
        assert!(!TacComparator.precedes(b, a));
    }

    #[test]
    fn comparator_case_2_breaks_ties_with_m_plus() {
        // Figure 4b: all P = 0, so M+ decides.
        let a = RecvScore {
            p: SimDuration::ZERO,
            m: dur(10),
            m_plus: Some(dur(20)),
        };
        let c = RecvScore {
            p: SimDuration::ZERO,
            m: dur(10),
            m_plus: Some(dur(30)),
        };
        let d = RecvScore {
            p: SimDuration::ZERO,
            m: dur(10),
            m_plus: None,
        };
        assert!(TacComparator.precedes(a, c));
        assert!(TacComparator.precedes(c, d));
        assert!(!TacComparator.precedes(d, c));
        // Identical scores: neither strictly precedes.
        assert!(!TacComparator.precedes(a, a));
    }

    #[test]
    fn tac_orders_figure_1a_correctly() {
        // recv1 unblocks op1, recv2 unblocks nothing alone: recv1 first.
        // This is the "good execution order" of Figure 1b.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("w1", 1_000_000);
        let p2 = b.add_param("w2", 1_000_000);
        let r1 = b.add_op(
            "recv1",
            w,
            OpKind::recv(p1, ch),
            Cost::bytes(1_000_000),
            &[],
        );
        let r2 = b.add_op(
            "recv2",
            w,
            OpKind::recv(p2, ch),
            Cost::bytes(1_000_000),
            &[],
        );
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1e9), &[r1]);
        b.add_op("op2", w, OpKind::Compute, Cost::flops(1e9), &[op1, r2]);
        let g = b.build().unwrap();
        let oracle = CostOracle::new(Platform::cpu_cluster());
        assert_eq!(tac_order(&g, w, &oracle), vec![r1, r2]);
        let s = tac(&g, w, &oracle);
        assert_eq!(s.priority(r1), Some(0));
        assert_eq!(s.priority(r2), Some(1));
    }

    #[test]
    fn tac_orders_figure_4b_pairs_before_stragglers() {
        // op1 <- {A, B}, op2 <- {op1, C}, op3 <- {op2, D}:
        // A and B first (cheapest joint unblock), then C, then D.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let recv = |b: &mut GraphBuilder, name: &str| {
            let p = b.add_param(format!("p_{name}"), 1_000_000);
            b.add_op(name, w, OpKind::recv(p, ch), Cost::bytes(1_000_000), &[])
        };
        let a = recv(&mut b, "A");
        let bb = recv(&mut b, "B");
        let c = recv(&mut b, "C");
        let d = recv(&mut b, "D");
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1e9), &[a, bb]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(1e9), &[op1, c]);
        b.add_op("op3", w, OpKind::Compute, Cost::flops(1e9), &[op2, d]);
        let g = b.build().unwrap();
        let oracle = CostOracle::new(Platform::cpu_cluster());
        let order = tac_order(&g, w, &oracle);
        assert_eq!(order.len(), 4);
        // A and B (in either order) precede C, which precedes D.
        assert!(order[..2].contains(&a) && order[..2].contains(&bb));
        assert_eq!(order[2], c);
        assert_eq!(order[3], d);
    }

    #[test]
    fn observed_order_matches_and_records_metrics() {
        // Figure 4b topology: merges and re-derivations both fire.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let recv = |b: &mut GraphBuilder, name: &str| {
            let p = b.add_param(format!("p_{name}"), 1_000_000);
            b.add_op(name, w, OpKind::recv(p, ch), Cost::bytes(1_000_000), &[])
        };
        let a = recv(&mut b, "A");
        let bb = recv(&mut b, "B");
        let c = recv(&mut b, "C");
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1e9), &[a, bb]);
        b.add_op("op2", w, OpKind::Compute, Cost::flops(1e9), &[op1, c]);
        let g = b.build().unwrap();
        let oracle = CostOracle::new(Platform::cpu_cluster());

        let registry = tictac_obs::Registry::enabled();
        let observed = tac_order_observed(&g, w, &oracle, &registry);
        assert_eq!(observed, tac_order(&g, w, &oracle));

        let snap = registry.snapshot();
        assert!(snap.counter("sched.tac.merges").unwrap() > 0);
        let timers: Vec<_> = snap
            .entries
            .iter()
            .filter(|(name, _)| name == "sched.tac.derive_ns")
            .collect();
        assert_eq!(timers.len(), 1);
    }

    #[test]
    fn tac_is_deterministic() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mut prev = None;
        for i in 0..10 {
            let p = b.add_param(format!("p{i}"), 1000 * (i as u64 + 1));
            let r = b.add_op(
                format!("r{i}"),
                w,
                OpKind::recv(p, ch),
                Cost::bytes(1000 * (i as u64 + 1)),
                &[],
            );
            let deps = match prev {
                Some(l) => vec![l, r],
                None => vec![r],
            };
            prev = Some(b.add_op(format!("c{i}"), w, OpKind::Compute, Cost::flops(1e8), &deps));
        }
        let g = b.build().unwrap();
        let oracle = CostOracle::new(Platform::cpu_cluster());
        assert_eq!(tac_order(&g, w, &oracle), tac_order(&g, w, &oracle));
    }
}
