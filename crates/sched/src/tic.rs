//! Algorithm 2: Timing-Independent Communication scheduling (TIC).

use crate::partition::PartitionGraph;
use crate::properties::OpProperties;
use crate::schedule::Schedule;
use tictac_graph::{DeviceId, Graph};
use tictac_obs::Registry;
use tictac_timing::GeneralOracle;

/// Computes the TIC schedule for the recv ops of `worker`.
///
/// TIC prioritizes transfers using DAG structure alone: every op is costed
/// with the *general time oracle* of Equation 5 (`recv` = 1 unit, anything
/// else = 0), properties are computed once with all recvs outstanding
/// (Algorithm 1), and each recv's priority is its impending communication
/// load `M⁺` — under unit costs, the minimum number of outstanding
/// transfers needed to unblock some computation that depends on it.
///
/// Recvs with `M⁺ = ∞` (no dependent op joins them with another recv) get
/// the lowest priority (`u64::MAX`), matching Algorithm 2's literal
/// `priority ← M⁺`.
pub fn tic(graph: &Graph, worker: DeviceId) -> Schedule {
    tic_observed(graph, worker, &Registry::disabled())
}

/// [`tic`] with the derivation span timed into `registry` as
/// `sched.tic.derive_ns`. With a disabled registry this is exactly
/// [`tic`]: the schedule never depends on the registry.
pub fn tic_observed(graph: &Graph, worker: DeviceId, registry: &Registry) -> Schedule {
    let span = registry.timer("sched.tic.derive_ns");
    let _guard = span.start();
    let part = PartitionGraph::new(graph, worker);
    let durations = part.durations(graph, &GeneralOracle);
    let props = OpProperties::new(&part, durations);

    let mut schedule = Schedule::empty(graph.len());
    for (bit, &recv_local) in part.recvs().iter().enumerate() {
        let priority = match props.m_plus(bit) {
            // Express M+ in whole units of the general oracle so equal
            // loads share a priority number.
            Some(d) => d.as_nanos() / GeneralOracle::UNIT.as_nanos(),
            None => u64::MAX,
        };
        schedule.set(part.global(recv_local as usize), priority);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpId, OpKind};

    /// A linear chain: recv_i -> layer_i -> layer_{i+1} ... Each layer also
    /// depends on the previous layer, so layer_k transitively needs recvs
    /// 0..=k.
    fn chain(n: usize) -> (Graph, DeviceId, Vec<OpId>) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mut recvs = Vec::new();
        let mut prev: Option<OpId> = None;
        for i in 0..n {
            let p = b.add_param(format!("p{i}"), 100);
            let r = b.add_op(
                format!("recv{i}"),
                w,
                OpKind::recv(p, ch),
                Cost::bytes(100),
                &[],
            );
            recvs.push(r);
            let deps: Vec<OpId> = match prev {
                Some(l) => vec![l, r],
                None => vec![r],
            };
            prev = Some(b.add_op(
                format!("layer{i}"),
                w,
                OpKind::Compute,
                Cost::flops(1e6),
                &deps,
            ));
        }
        (b.build().unwrap(), w, recvs)
    }

    #[test]
    fn tic_prefers_earlier_layers_in_a_chain() {
        let (g, w, recvs) = chain(5);
        let s = tic(&g, w);
        // layer_k has deps {recv0..recvk}; for k >= 1 it has multiple recv
        // deps with M = k+1 units, so recv_k.M+ = k+1 (the cheapest
        // multi-dep op including it), except recv0 which also joins layer1
        // (M = 2).
        let p: Vec<u64> = recvs.iter().map(|&r| s.priority(r).unwrap()).collect();
        assert_eq!(p[0], 2);
        assert_eq!(p[1], 2);
        assert_eq!(p[2], 3);
        assert_eq!(p[3], 4);
        assert_eq!(p[4], 5);
        // Priorities are non-decreasing along the chain: earlier transfers
        // unblock computation sooner.
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tic_assigns_max_priority_to_isolated_recvs() {
        // One recv feeding a dedicated compute op (single dependency
        // everywhere) never appears in a multi-recv op: M+ = infinity.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p0 = b.add_param("p0", 10);
        let r0 = b.add_op("recv0", w, OpKind::recv(p0, ch), Cost::bytes(10), &[]);
        b.add_op("c0", w, OpKind::Compute, Cost::flops(1.0), &[r0]);
        let g = b.build().unwrap();
        let s = tic(&g, w);
        assert_eq!(s.priority(r0), Some(u64::MAX));
    }

    #[test]
    fn tic_only_prioritizes_the_requested_worker() {
        let mut b = GraphBuilder::new();
        let w0 = b.add_worker("w0");
        let w1 = b.add_worker("w1");
        let ps = b.add_parameter_server("ps0");
        let ch0 = b.add_channel(w0, ps);
        let ch1 = b.add_channel(w1, ps);
        let p = b.add_param("p", 10);
        let r0 = b.add_op("recv/w0", w0, OpKind::recv(p, ch0), Cost::bytes(10), &[]);
        let r1 = b.add_op("recv/w1", w1, OpKind::recv(p, ch1), Cost::bytes(10), &[]);
        let c0 = b.add_op("c0", w0, OpKind::Compute, Cost::flops(1.0), &[r0]);
        b.add_op("c1", w0, OpKind::Compute, Cost::flops(1.0), &[c0, r0]);
        let _ = r1;
        let g = b.build().unwrap();
        let s = tic(&g, w0);
        assert!(s.priority(g.find_op("recv/w0").unwrap()).is_some());
        assert!(s.priority(g.find_op("recv/w1").unwrap()).is_none());
    }
}
