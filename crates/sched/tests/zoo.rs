//! Scheduler invariants over the full model zoo (integration tests:
//! tictac-sched applied to graphs deployed by tictac-cluster).

use tictac_cluster::{deploy, ClusterSpec};
use tictac_models::{Mode, Model};
use tictac_sched::{tac_order, tac_order_naive, tic, PartitionGraph};
use tictac_timing::{CostOracle, Platform};

#[test]
fn tic_covers_every_recv_on_every_model() {
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(2, 1)).expect("valid cluster");
        let g = deployed.graph();
        let w0 = deployed.workers()[0];
        let schedule = tic(g, w0);
        for recv in g.recv_ops_on(w0) {
            assert!(
                schedule.priority(recv).is_some(),
                "{model}: {} unprioritized",
                g.op_name(recv)
            );
        }
        // And nothing outside worker 0 is prioritized.
        assert_eq!(
            schedule.prioritized().count(),
            g.recv_ops_on(w0).len(),
            "{model}"
        );
    }
}

#[test]
fn tac_is_a_total_order_on_every_model() {
    let oracle = CostOracle::new(Platform::cloud_gpu());
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(2, 1)).expect("valid cluster");
        let g = deployed.graph();
        let w0 = deployed.workers()[0];
        let mut order = tac_order(g, w0, &oracle);
        let n = order.len();
        assert_eq!(n, g.recv_ops_on(w0).len(), "{model}");
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), n, "{model}: duplicates in TAC order");
    }
}

#[test]
fn tac_schedules_stem_parameters_first() {
    // The first transfers should unblock the network stem: for chain-ish
    // models the very first TAC pick is the first layer's weights.
    let oracle = CostOracle::new(Platform::cloud_gpu());
    for (model, stem) in [
        (Model::Vgg16, "conv1/conv1_1/weights"),
        (Model::AlexNetV2, "conv1/weights"),
        (Model::ResNet50V1, "conv1/weights"),
    ] {
        let graph = model.build_with_batch(Mode::Inference, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(1, 1)).expect("valid cluster");
        let g = deployed.graph();
        let order = tac_order(g, deployed.workers()[0], &oracle);
        let first = g.op_name(order[0]);
        assert!(
            first.ends_with(stem),
            "{model}: first transfer {first}, expected *{stem}"
        );
    }
}

#[test]
fn tic_priorities_are_monotone_along_vgg_layers() {
    // VGG is a pure chain: TIC priorities must be non-decreasing in layer
    // order (weights of layer k before layer k+1).
    let graph = Model::Vgg16.build_with_batch(Mode::Inference, 2);
    let deployed = deploy(&graph, &ClusterSpec::new(1, 1)).expect("valid cluster");
    let g = deployed.graph();
    let w0 = deployed.workers()[0];
    let schedule = tic(g, w0);
    let recvs = g.recv_ops_on(w0); // id order == declaration (layer) order
    let priorities: Vec<u64> = recvs
        .iter()
        .map(|&r| schedule.priority(r).expect("prioritized"))
        .collect();
    assert!(
        priorities.windows(2).all(|w| w[0] <= w[1]),
        "priorities not monotone: {priorities:?}"
    );
}

#[test]
fn partition_sizes_match_deployment_accounting() {
    for model in [Model::InceptionV1, Model::ResNet50V2] {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(3, 2)).expect("valid cluster");
        let g = deployed.graph();
        for &w in deployed.workers() {
            let part = PartitionGraph::new(g, w);
            assert_eq!(part.len(), g.ops_on(w).count(), "{model}");
            assert_eq!(part.recvs().len(), g.recv_ops_on(w).len(), "{model}");
        }
    }
}

#[test]
fn incremental_tac_matches_naive_reference_on_the_zoo() {
    // The incremental M+ maintenance must reproduce the paper's per-round
    // recomputation pick-for-pick on every real model — the tie-breaking
    // reduce makes any property drift show up as a different order.
    let oracle = CostOracle::new(Platform::cloud_gpu());
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(2, 1)).expect("valid cluster");
        let g = deployed.graph();
        let w0 = deployed.workers()[0];
        assert_eq!(
            tac_order(g, w0, &oracle),
            tac_order_naive(g, w0, &oracle),
            "{model}: incremental TAC diverged from the naive reference"
        );
    }
}

#[test]
fn scheduling_large_models_is_fast_enough() {
    // The paper computes schedules offline in ~10 s; our implementation
    // must stay well under that even in debug builds.
    let oracle = CostOracle::new(Platform::cloud_gpu());
    let graph = Model::ResNet101V2.build_with_batch(Mode::Training, 2);
    let deployed = deploy(&graph, &ClusterSpec::new(4, 1)).expect("valid cluster");
    let g = deployed.graph();
    let w0 = deployed.workers()[0];
    let start = std::time::Instant::now();
    let _ = tic(g, w0);
    let _ = tac_order(g, w0, &oracle);
    assert!(
        start.elapsed().as_secs() < 10,
        "scheduling took {:?}",
        start.elapsed()
    );
}
