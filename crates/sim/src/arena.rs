//! SoA event arenas: flat `Vec`-backed event pools indexed by `u32`
//! handles and a calendar queue popping in exact `(at, seq)` order.
//!
//! The seed engine kept a `BinaryHeap<Reverse<Ev>>` of 40-byte events —
//! every push/pop paid an `O(log n)` sift over the whole pending set and
//! moved full event payloads through the heap. Here the payload lives
//! once in an [`EventPool`] (a free-listed slab) and the queue moves only
//! 24-byte `(at, seq, handle)` entries through a classic calendar queue:
//! power-of-two bucket ring indexed by `at / width`, the current bucket
//! kept sorted (descending, so the minimum pops from the back), future
//! buckets left unsorted until their epoch arrives. Pushes into the
//! current epoch binary-insert; everything else is an append. The queue
//! rebuilds itself (bucket count and width re-estimated from the live
//! spread) when occupancy outgrows the ring.
//!
//! Both structures are deterministic: the pop order is *exactly*
//! ascending `(at, seq)` — the same total order the seed heap produced —
//! which the golden-trace fingerprints pin end-to-end and
//! `calendar_queue_matches_reference_heap` pins in isolation.
//!
//! # Invariant
//!
//! Like any calendar queue, pushes must not travel into the past:
//! `push(at, ..)` requires `at` to be no earlier than the last popped
//! timestamp. The engine guarantees this (events are scheduled at
//! `clock + duration`, and `clock` is the last popped instant).

/// A free-listed slab of event payloads addressed by `u32` handles.
///
/// Payloads stay put from [`alloc`](EventPool::alloc) to
/// [`take`](EventPool::take); the queue carries only the handle.
#[derive(Debug)]
pub(crate) struct EventPool<K> {
    slots: Vec<K>,
    free: Vec<u32>,
}

impl<K: Copy> EventPool<K> {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
        }
    }

    /// Stores `kind`, returning its handle.
    pub(crate) fn alloc(&mut self, kind: K) -> u32 {
        match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = kind;
                h
            }
            None => {
                let h = u32::try_from(self.slots.len()).expect("under 2^32 live events");
                self.slots.push(kind);
                h
            }
        }
    }

    /// Returns the payload of `h` and recycles the slot.
    pub(crate) fn take(&mut self, h: u32) -> K {
        let kind = self.slots[h as usize];
        self.free.push(h);
        kind
    }
}

/// Ring geometry floor; rebuilds never shrink below this.
const MIN_BUCKETS: usize = 32;
/// Ring geometry ceiling; beyond this buckets just get denser.
const MAX_BUCKETS: usize = 1 << 16;
/// Initial bucket width in nanoseconds (re-estimated on rebuild).
const INITIAL_WIDTH: u64 = 1 << 12;

/// A calendar queue over `(at, seq, handle)` entries popping in exact
/// ascending `(at, seq)` order. See the module docs for the layout.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<(u64, u64, u32)>>,
    /// Nanoseconds spanned by one bucket.
    width: u64,
    /// Ring slot currently being drained.
    cur: usize,
    /// Timestamp at which `cur`'s current lap begins; eligible entries
    /// satisfy `at < epoch_start + width`.
    epoch_start: u64,
    /// Whether `buckets[cur]` is sorted descending by `(at, seq)`.
    sorted: bool,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width: INITIAL_WIDTH,
            cur: 0,
            epoch_start: 0,
            sorted: true,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn slot(&self, at: u64) -> usize {
        ((at / self.width) as usize) & (self.buckets.len() - 1)
    }

    pub(crate) fn push(&mut self, at: u64, seq: u64, handle: u32) {
        self.len += 1;
        let s = self.slot(at);
        if s == self.cur && self.sorted {
            // Keep the active bucket's descending order so the minimum
            // stays poppable from the back. (A future-lap entry landing
            // in the active slot sorts to the front — still correct.)
            let bucket = &mut self.buckets[s];
            let pos = bucket.partition_point(|&(a, q, _)| (a, q) > (at, seq));
            bucket.insert(pos, (at, seq, handle));
        } else {
            self.buckets[s].push((at, seq, handle));
        }
        if self.len > self.buckets.len() * 4 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// The minimum entry without removing it.
    pub(crate) fn peek_min(&mut self) -> Option<(u64, u64, u32)> {
        if !self.position() {
            return None;
        }
        self.buckets[self.cur].last().copied()
    }

    /// Removes and returns the minimum `(at, seq)` entry.
    pub(crate) fn pop_min(&mut self) -> Option<(u64, u64, u32)> {
        if !self.position() {
            return None;
        }
        self.len -= 1;
        self.buckets[self.cur].pop()
    }

    /// Advances the ring until the active bucket's back entry is eligible
    /// for the current epoch. Returns `false` iff the queue is empty.
    fn position(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        let mut scanned = 0usize;
        loop {
            if !self.sorted {
                self.buckets[self.cur].sort_unstable_by(|a, b| b.cmp(a));
                self.sorted = true;
            }
            if let Some(&(at, _, _)) = self.buckets[self.cur].last() {
                if at < self.epoch_start.saturating_add(self.width) {
                    return true;
                }
            }
            self.cur = (self.cur + 1) & (self.buckets.len() - 1);
            self.epoch_start = self.epoch_start.saturating_add(self.width);
            self.sorted = false;
            scanned += 1;
            if scanned >= self.buckets.len() {
                // A full lap found nothing eligible: the pending set is
                // sparse relative to the ring span. Jump straight to the
                // global minimum instead of walking empty epochs.
                self.fast_forward();
                scanned = 0;
            }
        }
    }

    /// Re-aims the ring at the globally minimal pending timestamp.
    fn fast_forward(&mut self) {
        let min_at = self
            .buckets
            .iter()
            .flatten()
            .map(|&(at, _, _)| at)
            .min()
            .expect("fast_forward on a non-empty queue");
        self.epoch_start = (min_at / self.width) * self.width;
        self.cur = self.slot(min_at);
        self.sorted = false;
    }

    /// Doubles the ring and re-estimates the bucket width from the live
    /// entry spread (mean inter-event gap), then re-buckets everything.
    fn rebuild(&mut self) {
        let entries: Vec<(u64, u64, u32)> =
            self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let min_at = entries.iter().map(|e| e.0).min().unwrap_or(0);
        let max_at = entries.iter().map(|e| e.0).max().unwrap_or(0);
        let n = (self.buckets.len() * 2).clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.width = ((max_at - min_at) / entries.len().max(1) as u64).max(1);
        self.buckets = vec![Vec::new(); n];
        self.epoch_start = (min_at / self.width) * self.width;
        self.cur = ((min_at / self.width) as usize) & (n - 1);
        self.sorted = false;
        for (at, seq, handle) in entries {
            let s = self.slot(at);
            self.buckets[s].push((at, seq, handle));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pool_recycles_slots() {
        let mut pool: EventPool<(u32, u32)> = EventPool::with_capacity(2);
        let a = pool.alloc((1, 2));
        let b = pool.alloc((3, 4));
        assert_ne!(a, b);
        assert_eq!(pool.take(a), (1, 2));
        let c = pool.alloc((5, 6));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(pool.take(b), (3, 4));
        assert_eq!(pool.take(c), (5, 6));
    }

    #[test]
    fn pops_in_at_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(50, 1, 0);
        q.push(10, 2, 1);
        q.push(10, 3, 2);
        q.push(7_000_000, 4, 3); // far future: exercises fast-forward
        q.push(0, 5, 4);
        assert_eq!(q.pop_min(), Some((0, 5, 4)));
        assert_eq!(q.peek_min(), Some((10, 2, 1)));
        assert_eq!(q.pop_min(), Some((10, 2, 1)));
        assert_eq!(q.pop_min(), Some((10, 3, 2)));
        assert_eq!(q.pop_min(), Some((50, 1, 0)));
        assert_eq!(q.pop_min(), Some((7_000_000, 4, 3)));
        assert_eq!(q.pop_min(), None);
        assert_eq!(q.len(), 0);
    }

    /// The engine's access pattern: interleaved pushes (never into the
    /// past) and pops, checked entry-for-entry against a reference heap
    /// across rebuilds and fast-forwards.
    #[test]
    fn calendar_queue_matches_reference_heap() {
        let mut rng = SmallRng::seed_from_u64(0x11C7AC);
        for round in 0..20 {
            let mut q = CalendarQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            let mut clock = 0u64;
            let mut seq = 0u64;
            let mut handle = 0u32;
            for _ in 0..2_000 {
                if !heap.is_empty() && rng.gen_bool(0.5) {
                    let expect = heap.pop().map(|Reverse(e)| e);
                    assert_eq!(q.pop_min(), expect, "round {round}");
                    clock = expect.unwrap().0;
                } else {
                    // Bursty horizon: mostly near-term events, a heavy
                    // tail far out (transfer vs compute durations).
                    let gap = if rng.gen_bool(0.1) {
                        rng.gen_range(0..10_000_000u64)
                    } else {
                        rng.gen_range(0..10_000u64)
                    };
                    seq += 1;
                    handle += 1;
                    q.push(clock + gap, seq, handle);
                    heap.push(Reverse((clock + gap, seq, handle)));
                }
            }
            while let Some(Reverse(e)) = heap.pop() {
                assert_eq!(q.pop_min(), Some(e), "round {round} drain");
            }
            assert_eq!(q.pop_min(), None, "round {round} empty");
        }
    }

    #[test]
    fn identical_timestamps_pop_in_seq_order_at_scale() {
        // Thousands of coincident events (symmetric shard completions at
        // scale) must come back in exact insertion-seq order.
        let mut q = CalendarQueue::new();
        for seq in 0..5_000u64 {
            q.push(42, seq, seq as u32);
        }
        for seq in 0..5_000u64 {
            assert_eq!(q.pop_min(), Some((42, seq, seq as u32)));
        }
    }
}
