//! Simulation configuration.

use serde::{Deserialize, Serialize};
use tictac_faults::FaultSpec;
use tictac_timing::{NoiseModel, Platform};

/// Default base seed (reads roughly as "TICTAC").
pub const DEFAULT_SEED: u64 = 0x11C7AC;

/// Default worker count at which the parallel engine takes over (see
/// [`SimConfig::par_threshold`]).
pub const DEFAULT_PAR_THRESHOLD: usize = 64;

/// Configuration of one simulated deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Hardware constants (envG / envC presets in [`Platform`]).
    pub platform: Platform,
    /// Runtime-variance model.
    pub noise: NoiseModel,
    /// Probability that the network layer processes a hand-off out of
    /// order (the paper measured 0.4–0.5% at the gRPC level, §5.1).
    pub reorder_error: f64,
    /// Base RNG seed; combined with the iteration index so every iteration
    /// draws an independent but reproducible stream.
    pub seed: u64,
    /// Whether the sender-side counter enforcement of §5.1 is active.
    ///
    /// When `false`, prioritized transfers are handed to gRPC as soon as
    /// they are ready (only the channel's rank-aware pop remains) — the
    /// "ordering the activation of ops is not sufficient" ablation the
    /// paper discusses when motivating its enforcement point.
    pub enforcement: bool,
    /// How disordered unprioritized ready-queue pops are: the runtime
    /// picks uniformly among the first `disorder_window` eligible entries
    /// in readiness order (`None` = uniform over the whole queue).
    ///
    /// Measured TensorFlow baselines are *locally* disordered rather than
    /// uniformly random — arrival orders loosely follow graph order with
    /// substantial jitter (which is why VGG-16's 32 parameters produced
    /// repeated orders in 1000 runs, §2.2, while larger models essentially
    /// never repeat). The default window of 32 calibrates baseline
    /// schedule quality to the paper's measured speedup range.
    pub disorder_window: Option<usize>,
    /// Overrides the fair-share factor applied to transfer wire time.
    ///
    /// By default the engine derives it from the topology: `max(W, S)` for
    /// a Parameter-Server deployment (every PS fans out to all `W`
    /// workers), and `1` for pure peer topologies (a ring's directed links
    /// each carry one steady stream).
    pub bandwidth_share_override: Option<f64>,
    /// Fault-injection model. The quiet default ([`FaultSpec::none`])
    /// injects nothing and leaves every trace byte-identical to a run
    /// without the fault subsystem.
    pub faults: FaultSpec,
    /// Worker count at or above which the `simulate*` entry points switch
    /// to the conservatively partitioned parallel engine, provided the
    /// workload is parallel-safe (deterministic timing, quiet faults,
    /// worker↔PS topology — see `selected_engine`). `None` disables the
    /// parallel engine entirely, pinning the sequential oracle.
    pub par_threshold: Option<usize>,
}

impl SimConfig {
    /// envG (cloud GPU) with realistic noise — the paper's primary
    /// environment.
    pub fn cloud_gpu() -> Self {
        Self {
            platform: Platform::cloud_gpu(),
            noise: NoiseModel::realistic(),
            reorder_error: 0.005,
            seed: DEFAULT_SEED,
            enforcement: true,
            disorder_window: Some(32),
            bandwidth_share_override: None,
            faults: FaultSpec::none(),
            par_threshold: Some(DEFAULT_PAR_THRESHOLD),
        }
    }

    /// envC (CPU cluster, 1 GbE) with dedicated-hardware noise.
    pub fn cpu_cluster() -> Self {
        Self {
            platform: Platform::cpu_cluster(),
            noise: NoiseModel::dedicated(),
            reorder_error: 0.005,
            seed: DEFAULT_SEED,
            enforcement: true,
            disorder_window: Some(32),
            bandwidth_share_override: None,
            faults: FaultSpec::none(),
            par_threshold: Some(DEFAULT_PAR_THRESHOLD),
        }
    }

    /// A deterministic configuration (no noise, no reorder errors) for
    /// tests and bound-checking.
    pub fn deterministic(platform: Platform) -> Self {
        Self {
            platform,
            noise: NoiseModel::none(),
            reorder_error: 0.0,
            seed: DEFAULT_SEED,
            enforcement: true,
            disorder_window: Some(32),
            bandwidth_share_override: None,
            faults: FaultSpec::none(),
            par_threshold: Some(DEFAULT_PAR_THRESHOLD),
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Overrides the bandwidth fair-share factor (see
    /// [`SimConfig::bandwidth_share_override`]).
    ///
    /// # Panics
    ///
    /// Panics if `share < 1`.
    pub fn with_bandwidth_share(mut self, share: f64) -> Self {
        assert!(share >= 1.0, "share must be at least 1");
        self.bandwidth_share_override = Some(share);
        self
    }

    /// Overrides the disorder window (see [`SimConfig::disorder_window`]).
    pub fn with_disorder_window(mut self, window: Option<usize>) -> Self {
        self.disorder_window = window;
        self
    }

    /// Disables or enables sender-side enforcement (see
    /// [`SimConfig::enforcement`]).
    pub fn with_enforcement(mut self, enforcement: bool) -> Self {
        self.enforcement = enforcement;
        self
    }

    /// Overrides the fault-injection model.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the parallel-engine worker threshold (see
    /// [`SimConfig::par_threshold`]). `None` pins the sequential oracle.
    pub fn with_par_threshold(mut self, threshold: Option<usize>) -> Self {
        self.par_threshold = threshold;
        self
    }

    /// Overrides the reorder-error probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_reorder_error(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder_error must be in [0,1]");
        self.reorder_error = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_use_expected_platforms() {
        assert_eq!(SimConfig::cloud_gpu().platform.name(), "envG");
        assert_eq!(SimConfig::cpu_cluster().platform.name(), "envC");
    }

    #[test]
    fn builders_override_fields() {
        let c = SimConfig::deterministic(Platform::cloud_gpu())
            .with_seed(42)
            .with_reorder_error(0.25);
        assert_eq!(c.seed, 42);
        assert_eq!(c.reorder_error, 0.25);
    }

    #[test]
    #[should_panic(expected = "reorder_error")]
    fn rejects_invalid_probability() {
        SimConfig::deterministic(Platform::cloud_gpu()).with_reorder_error(2.0);
    }
}
