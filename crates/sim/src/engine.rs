//! The discrete-event execution engine.

use crate::config::SimConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeMap};
use tictac_graph::{Channel, Graph, OpId, OpKind};
use tictac_sched::Schedule;
use tictac_timing::{CostOracle, SimTime, TimeOracle};
use tictac_trace::{ExecutionTrace, TraceBuilder};

/// Simulates one iteration of `graph` under `schedule` and returns its
/// execution trace.
///
/// `iteration` seeds this iteration's random stream (combined with
/// `config.seed`), so repeated calls with the same arguments are exactly
/// reproducible while distinct iterations observe independent noise and
/// ready-queue draws.
///
/// # Panics
///
/// Panics if `schedule` does not cover `graph`, or if the graph deadlocks
/// (impossible for builder-validated DAGs).
pub fn simulate(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
) -> ExecutionTrace {
    assert_eq!(schedule.len(), graph.len(), "schedule does not cover graph");
    Engine::new(graph, schedule, config, iteration).run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    ComputeDone(OpId),
    TransferDone(OpId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Engine<'g> {
    graph: &'g Graph,
    schedule: &'g Schedule,
    oracle: CostOracle,
    noise: tictac_timing::NoiseModel,
    reorder_error: f64,
    enforcement: bool,
    disorder_window: usize,
    rng: SmallRng,

    clock: SimTime,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,

    indegree: Vec<u32>,
    done: Vec<bool>,
    started_at: Vec<SimTime>,
    trace: TraceBuilder,
    remaining: usize,

    /// Per-device compute state.
    compute_ready: Vec<Vec<OpId>>,
    compute_busy: Vec<bool>,
    /// Per-worker slowdown factor for this iteration.
    slowdown: Vec<f64>,

    /// Per-channel gRPC state.
    chan_busy: Vec<bool>,
    /// Enforcement counters: prioritized transfers handed so far.
    counter: Vec<u64>,
    /// Blocked prioritized sends, keyed by rank.
    blocked: Vec<BTreeMap<u64, OpId>>,
    /// Enforcement rank per op (send ops of prioritized transfers).
    rank: Vec<Option<u64>>,
    /// Per-channel queues of handed-off transfers (recv ops).
    chan_queue: Vec<Vec<OpId>>,
    /// Enforcement rank propagated to the recv side (for queue pops).
    recv_rank: Vec<Option<u64>>,
    /// The send op feeding each recv (transfer pairing).
    send_of: Vec<Option<OpId>>,
    /// Fair-share factor applied to wire time (see
    /// [`Platform::transfer_time_shared`]).
    ///
    /// [`Platform::transfer_time_shared`]: tictac_timing::Platform::transfer_time_shared
    bandwidth_share: f64,
}

impl<'g> Engine<'g> {
    fn new(graph: &'g Graph, schedule: &'g Schedule, config: &SimConfig, iteration: u64) -> Self {
        let n = graph.len();
        let mut rng = SmallRng::seed_from_u64(
            config
                .seed
                .wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );

        // Per-iteration worker slowdowns (system-level variance, §6.3).
        let slowdown: Vec<f64> = graph
            .devices()
            .iter()
            .map(|d| {
                if d.is_worker() {
                    config.noise.worker_factor(&mut rng)
                } else {
                    1.0
                }
            })
            .collect();

        // Enforcement ranks: priorities normalized to [0, n) per channel,
        // attached to the PS-side send op of each prioritized transfer
        // (§5.1: enforcement happens at the sender before gRPC hand-off).
        let mut rank = vec![None; n];
        for channel in graph.channels() {
            for (r, recv) in schedule
                .ordered_recvs(graph, channel.id())
                .into_iter()
                .enumerate()
            {
                // Hand-built graphs may model recvs as pure roots (no
                // explicit send op); those transfers skip sender-side
                // counters and are ordered by the channel's rank-aware
                // pop alone.
                let send = graph
                    .preds(recv)
                    .iter()
                    .copied()
                    .find(|&p| graph.op(p).kind().is_send());
                match send {
                    Some(send) => rank[send.index()] = Some(r as u64),
                    None => rank[recv.index()] = Some(r as u64),
                }
            }
        }

        let indegree: Vec<u32> = (0..n)
            .map(|i| graph.preds(OpId::from_index(i)).len() as u32)
            .collect();

        let bandwidth_share = config.bandwidth_share_override.unwrap_or_else(|| {
            // PS deployments fan every server out to all workers; pure
            // peer topologies (rings) keep one steady stream per link.
            if graph.channels().iter().all(Channel::is_peer) {
                1.0
            } else {
                let workers = graph.workers().count();
                let servers = graph.parameter_servers().count();
                workers.max(servers).max(1) as f64
            }
        });

        Self {
            graph,
            schedule,
            oracle: CostOracle::new(config.platform.clone()),
            noise: config.noise,
            reorder_error: config.reorder_error,
            enforcement: config.enforcement,
            disorder_window: config.disorder_window.unwrap_or(usize::MAX).max(1),
            rng,
            clock: SimTime::ZERO,
            events: BinaryHeap::new(),
            seq: 0,
            indegree,
            done: vec![false; n],
            started_at: vec![SimTime::ZERO; n],
            trace: TraceBuilder::new(n),
            remaining: n,
            compute_ready: vec![Vec::new(); graph.devices().len()],
            compute_busy: vec![false; graph.devices().len()],
            slowdown,
            chan_busy: vec![false; graph.channels().len()],
            counter: vec![0; graph.channels().len()],
            blocked: vec![BTreeMap::new(); graph.channels().len()],
            rank,
            chan_queue: vec![Vec::new(); graph.channels().len()],
            recv_rank: vec![None; n],
            send_of: vec![None; n],
            bandwidth_share,
        }
    }

    fn run(mut self) -> ExecutionTrace {
        // Dispatch roots.
        for i in 0..self.graph.len() {
            if self.indegree[i] == 0 {
                self.dispatch(OpId::from_index(i));
            }
        }
        self.pump();

        while let Some(Reverse(ev)) = self.events.pop() {
            self.clock = SimTime::from_nanos(ev.at);
            match ev.kind {
                EventKind::ComputeDone(op) => self.on_compute_done(op),
                EventKind::TransferDone(op) => self.on_transfer_done(op),
            }
            self.pump();
        }

        assert_eq!(self.remaining, 0, "simulation deadlocked");
        self.trace.finish()
    }

    /// Runs all synchronous starts enabled by the current state.
    fn pump(&mut self) {
        loop {
            let mut progressed = false;
            for d in 0..self.compute_busy.len() {
                progressed |= self.try_start_compute(d);
            }
            progressed |= self.try_start_transfers();
            if !progressed {
                break;
            }
        }
    }

    fn schedule_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            at: at.as_nanos(),
            seq: self.seq,
            kind,
        }));
    }

    /// Routes an op whose dependencies are all satisfied.
    fn dispatch(&mut self, op: OpId) {
        match self.graph.op(op).kind() {
            OpKind::Send { .. } => self.try_handoff(op),
            OpKind::Recv { .. } => {
                // Handed to the network (its send completed): queue the
                // transfer on its channel, carrying the sender's rank.
                let ch = self
                    .graph
                    .op(op)
                    .kind()
                    .channel()
                    .expect("recv has a channel")
                    .index();
                let send = self
                    .graph
                    .preds(op)
                    .iter()
                    .copied()
                    .find(|&p| self.graph.op(p).kind().is_send());
                self.send_of[op.index()] = send;
                // Rank lives on the send for PS-built graphs, on the recv
                // itself for sendless (hand-built) ones.
                self.recv_rank[op.index()] = send
                    .and_then(|s| self.rank[s.index()])
                    .or(self.rank[op.index()]);
                self.chan_queue[ch].push(op);
            }
            _ => {
                let dev = self.graph.op(op).device().index();
                self.compute_ready[dev].push(op);
            }
        }
    }

    /// Sender-side enforcement: a ranked transfer is handed to the channel
    /// only when its channel counter reaches its rank (§5.1).
    fn try_handoff(&mut self, send: OpId) {
        let ch = self
            .graph
            .op(send)
            .kind()
            .channel()
            .expect("send has a channel")
            .index();
        match self.rank[send.index()] {
            Some(r) if self.enforcement && self.counter[ch] != r => {
                self.blocked[ch].insert(r, send);
            }
            _ => self.complete_send(send),
        }
    }

    /// Completes a send (instantaneous hand-off), bumps the enforcement
    /// counter and releases any newly-unblocked sends on the same channel.
    ///
    /// The send op is *not* traced here: the trace attributes the transfer
    /// interval to both endpoints once the wire time is known (TF's tracer
    /// likewise reports transfer time at the send op), so recording happens
    /// in [`on_transfer_done`](Self::on_transfer_done).
    fn complete_send(&mut self, send: OpId) {
        let mut stack = vec![send];
        while let Some(s) = stack.pop() {
            self.mark_done(s);
            if let Some(r) = self.rank[s.index()] {
                if self.enforcement {
                    let ch = self
                        .graph
                        .op(s)
                        .kind()
                        .channel()
                        .expect("send has a channel")
                        .index();
                    debug_assert_eq!(self.counter[ch], r);
                    self.counter[ch] += 1;
                    if let Some(next) = self.blocked[ch].remove(&self.counter[ch]) {
                        stack.push(next);
                    }
                }
            }
        }
    }

    /// Starts the next transfer on every idle channel. Channels proceed
    /// concurrently at fair-shared bandwidth.
    ///
    /// Queue discipline per channel: transfers carrying an enforcement
    /// rank go lowest-rank-first (they are handed off in rank order by the
    /// sender-side counters, so this is gRPC's FIFO); unranked transfers —
    /// all of them under the baseline — are picked uniformly at random,
    /// reflecting that TensorFlow transfers are receiver-initiated and
    /// request arrival order at each worker's channel is arbitrary (§2.2).
    /// With probability `reorder_error` the channel instead takes a random
    /// queued transfer, emulating gRPC's occasional out-of-order
    /// processing of enforced hand-offs (§5.1).
    fn try_start_transfers(&mut self) -> bool {
        let mut progressed = false;
        for ch in 0..self.chan_queue.len() {
            if self.chan_busy[ch] || self.chan_queue[ch].is_empty() {
                continue;
            }
            let queue = &self.chan_queue[ch];
            let ranked_min = queue
                .iter()
                .enumerate()
                .filter_map(|(i, &r)| self.recv_rank[r.index()].map(|rank| (rank, i)))
                .min()
                .map(|(_, i)| i);
            let pick = match ranked_min {
                Some(i) if !(queue.len() >= 2 && self.rng.gen::<f64>() < self.reorder_error) => i,
                // Unranked pops are locally disordered: pick among the
                // oldest `disorder_window` queued transfers.
                _ => self.rng.gen_range(0..queue.len().min(self.disorder_window)),
            };
            let recv = self.chan_queue[ch].remove(pick);
            self.start_transfer(ch, recv);
            progressed = true;
        }
        progressed
    }

    fn start_transfer(&mut self, ch: usize, recv: OpId) {
        self.chan_busy[ch] = true;
        let bytes = self.graph.op(recv).cost().bytes;
        let base = self
            .oracle
            .platform()
            .transfer_time_shared(bytes, self.bandwidth_share);
        let dur = self.noise.apply(&mut self.rng, base);
        self.started_at[recv.index()] = self.clock;
        self.schedule_event(self.clock + dur, EventKind::TransferDone(recv));
    }

    /// The ready-queue rule of §3.1: candidates are the ready ops with the
    /// lowest priority number plus all unprioritized ready ops; the pick
    /// among candidates is uniformly random.
    fn try_start_compute(&mut self, dev: usize) -> bool {
        if self.compute_busy[dev] || self.compute_ready[dev].is_empty() {
            return false;
        }
        let ready = &self.compute_ready[dev];
        let min_priority = ready
            .iter()
            .filter_map(|&op| self.schedule.priority(op))
            .min();
        let candidates: Vec<usize> = ready
            .iter()
            .enumerate()
            .filter(|(_, &op)| {
                let p = self.schedule.priority(op);
                p.is_none() || p == min_priority
            })
            .map(|(i, _)| i)
            .collect();
        // Locally disordered pick: uniform over the oldest
        // `disorder_window` candidates (candidates are in readiness order).
        let window = candidates.len().min(self.disorder_window);
        let chosen = candidates[self.rng.gen_range(0..window)];
        let op = self.compute_ready[dev].remove(chosen);

        self.compute_busy[dev] = true;
        let base = self.oracle.duration(self.graph, op);
        let dur = self
            .noise
            .apply(&mut self.rng, base)
            .mul_f64(self.slowdown[dev]);
        self.started_at[op.index()] = self.clock;
        self.schedule_event(self.clock + dur, EventKind::ComputeDone(op));
        true
    }

    fn on_compute_done(&mut self, op: OpId) {
        let dev = self.graph.op(op).device().index();
        self.compute_busy[dev] = false;
        self.trace.record(op, self.started_at[op.index()], self.clock);
        self.mark_done(op);
    }

    fn on_transfer_done(&mut self, recv: OpId) {
        let ch_id = self.graph.op(recv).kind().channel().expect("recv channel");
        self.chan_busy[ch_id.index()] = false;
        let start = self.started_at[recv.index()];
        self.trace.record(recv, start, self.clock);
        // Attribute the same interval to the sending end (already `done`
        // for dependency purposes at hand-off time).
        if let Some(send) = self.send_of[recv.index()] {
            self.trace.record(send, start, self.clock);
        }
        self.mark_done(recv);
    }

    /// Marks an op complete and dispatches newly-ready successors.
    fn mark_done(&mut self, op: OpId) {
        debug_assert!(!self.done[op.index()], "op {op} completed twice");
        self.done[op.index()] = true;
        self.remaining -= 1;
        for i in 0..self.graph.succs(op).len() {
            let succ = self.graph.succs(op)[i];
            self.indegree[succ.index()] -= 1;
            if self.indegree[succ.index()] == 0 {
                self.dispatch(succ);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_graph::{Cost, GraphBuilder};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::no_ordering;
    use tictac_timing::{Platform, SimDuration};

    fn fig1a() -> (Graph, [OpId; 6]) {
        // Full Figure 1a including PS side, sized so the recv order
        // visibly matters: equal transfers, equal computes.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mb = 8 << 20;
        let p1 = b.add_param("p1", mb);
        let p2 = b.add_param("p2", mb);
        let r_read1 = b.add_op("read1", ps, OpKind::Read { param: p1 }, Cost::flops(1.0), &[]);
        let r_read2 = b.add_op("read2", ps, OpKind::Read { param: p2 }, Cost::flops(1.0), &[]);
        let s1 = b.add_op("send1", ps, OpKind::send(p1, ch), Cost::bytes(mb), &[r_read1]);
        let s2 = b.add_op("send2", ps, OpKind::send(p2, ch), Cost::bytes(mb), &[r_read2]);
        let r1 = b.add_op("recv1", w, OpKind::recv(p1, ch), Cost::bytes(mb), &[s1]);
        let r2 = b.add_op("recv2", w, OpKind::recv(p2, ch), Cost::bytes(mb), &[s2]);
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1e10), &[r1]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(1e10), &[op1, r2]);
        (b.build().unwrap(), [s1, s2, r1, r2, op1, op2])
    }

    #[test]
    fn good_order_beats_bad_order_as_in_figure_1() {
        let (g, [_, _, r1, r2, ..]) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());

        let mut good = Schedule::empty(g.len());
        good.set(r1, 0);
        good.set(r2, 1);
        let mut bad = Schedule::empty(g.len());
        bad.set(r1, 1);
        bad.set(r2, 0);

        let t_good = simulate(&g, &good, &cfg, 0);
        let t_bad = simulate(&g, &bad, &cfg, 0);
        assert!(
            t_good.makespan() < t_bad.makespan(),
            "good {} vs bad {}",
            t_good.makespan(),
            t_bad.makespan()
        );
    }

    #[test]
    fn enforced_order_is_respected() {
        let (g, [_, _, r1, r2, ..]) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());
        let mut s = Schedule::empty(g.len());
        s.set(r1, 1);
        s.set(r2, 0); // deliberately reversed
        let trace = simulate(&g, &s, &cfg, 0);
        let w = g.devices()[0].id();
        assert_eq!(trace.recv_completion_order(&g, w), vec![r2, r1]);
    }

    #[test]
    fn all_ops_execute_exactly_once() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(3, 2)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let trace = simulate(d.graph(), &no_ordering(d.graph()), &cfg, 0);
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert!(trace.makespan() > SimDuration::ZERO);
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let s = no_ordering(d.graph());
        let a = simulate(d.graph(), &s, &cfg, 0);
        let b = simulate(d.graph(), &s, &cfg, 0);
        assert_eq!(a, b);
        let c = simulate(d.graph(), &s, &cfg, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn baseline_produces_varying_recv_orders() {
        let model = tictac_models::Model::InceptionV1.build_with_batch(Mode::Inference, 4);
        let d = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let s = no_ordering(d.graph());
        let w = d.workers()[0];
        let o1 = simulate(d.graph(), &s, &cfg, 0).recv_completion_order(d.graph(), w);
        let o2 = simulate(d.graph(), &s, &cfg, 1).recv_completion_order(d.graph(), w);
        assert_ne!(o1, o2, "random schedules should differ across iterations");
    }

    #[test]
    fn tic_schedule_fixes_recv_order_across_iterations() {
        let model = tictac_models::Model::InceptionV1.build_with_batch(Mode::Inference, 4);
        let d = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
        // No reorder errors for exactness.
        let cfg = SimConfig::cloud_gpu().with_reorder_error(0.0);
        let s = d.replicate_schedule(&tictac_sched::tic(d.graph(), d.workers()[0]));
        let w = d.workers()[0];
        let o1 = simulate(d.graph(), &s, &cfg, 0).recv_completion_order(d.graph(), w);
        let o2 = simulate(d.graph(), &s, &cfg, 7).recv_completion_order(d.graph(), w);
        assert_eq!(o1, o2, "enforced schedules must be stable");
    }

    #[test]
    fn prioritized_sendless_recvs_are_still_ordered() {
        // Hand-built graphs may model recvs as pure roots (no PS send op);
        // a schedule over them must neither panic nor be ignored.
        let mut b = tictac_graph::GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mut recvs = Vec::new();
        for i in 0..4 {
            let p = b.add_param(format!("p{i}"), 1 << 20);
            recvs.push(b.add_op(
                format!("recv{i}"),
                w,
                OpKind::recv(p, ch),
                Cost::bytes(1 << 20),
                &[],
            ));
        }
        let g = b.build().unwrap();
        let mut s = Schedule::empty(g.len());
        for (rank, &r) in recvs.iter().rev().enumerate() {
            s.set(r, rank as u64);
        }
        let cfg = SimConfig::deterministic(Platform::cloud_gpu());
        let trace = simulate(&g, &s, &cfg, 0);
        let order = trace.recv_completion_order(&g, w);
        let expected: Vec<OpId> = recvs.into_iter().rev().collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn transfers_on_one_channel_serialize() {
        let (g, [_, _, r1, r2, ..]) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());
        let trace = simulate(&g, &no_ordering(&g), &cfg, 3);
        let a = trace.record(r1).unwrap();
        let b = trace.record(r2).unwrap();
        assert!(
            a.end <= b.start || b.end <= a.start,
            "overlapping transfers on one channel: {a:?} vs {b:?}"
        );
    }
}
